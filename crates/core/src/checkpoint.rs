//! Model and trainer-state checkpointing as compact binary blobs.
//!
//! Two blob versions share one loader:
//!
//! * **v1** (`ALFCKPT1`) — the model's persistent state only: task
//!   parameters, batch-norm running statistics and the ALF autoencoders
//!   (`Wenc`, `Wdec`, `M`). Layout: `magic | u32 tensor count | per tensor
//!   (u32 rank, u32 dims…, f32 data…)`, little-endian.
//! * **v2** (`ALFCKPT2`) — everything a *trainer* needs to resume a run
//!   bitwise-identically: the v1 model section, followed by the SGD
//!   momentum buffers (same per-tensor encoding), the `νprune` schedule,
//!   and the epoch / step / data-seed counters that pin the data order.
//!   Layout: `magic | model section | u32 momentum count | momentum
//!   tensors… | f32 slope | f32 pr_max | u64 epoch | u64 step |
//!   u64 data_seed`.
//!
//! The loader is backward and forward compatible within these versions:
//! [`load`] restores the model from either blob (discarding v2 trainer
//! state — deploying a training checkpoint into a server "just works"),
//! and [`load_trainer`] accepts a v1 blob as "model with fresh optimizer"
//! by returning `None` for the trainer state. Restoring validates the full
//! blob — structure match, momentum-vs-parameter shapes, no trailing
//! bytes — before touching the model, so a failed load leaves it intact.

use alf_nn::layer::Layer;
use alf_tensor::{ShapeError, Tensor};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::model::CnnModel;
use crate::schedule::PruneSchedule;
use crate::Result;

const MAGIC_V1: &[u8; 8] = b"ALFCKPT1";
const MAGIC_V2: &[u8; 8] = b"ALFCKPT2";

/// The non-model half of a v2 trainer checkpoint: optimizer momentum plus
/// the schedule/progress counters that make a resumed run replay the exact
/// trajectory of an uninterrupted one.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerState {
    /// SGD momentum (velocity) buffers in parameter-visit order. Empty
    /// means a fresh optimizer (e.g. checkpointed before the first step).
    pub momentum: Vec<Tensor>,
    /// The `νprune` pruning-pressure schedule in effect.
    pub schedule: PruneSchedule,
    /// Completed-epoch counter (0-based index of the epoch in progress).
    pub epoch: u64,
    /// Step within the current epoch (batches already consumed).
    pub step: u64,
    /// Seed of the deterministic data-order stream (`alf_data::plan`).
    pub data_seed: u64,
}

fn fail(detail: impl Into<String>) -> ShapeError {
    ShapeError::new("checkpoint", detail)
}

fn put_tensor(buf: &mut BytesMut, t: &Tensor) {
    buf.put_u32_le(t.dims().len() as u32);
    for &d in t.dims() {
        buf.put_u32_le(d as u32);
    }
    for &v in t.data() {
        buf.put_f32_le(v);
    }
}

fn get_tensors(bytes: &mut Bytes, count: usize, what: &str) -> Result<Vec<Tensor>> {
    let mut tensors = Vec::with_capacity(count);
    for i in 0..count {
        if bytes.remaining() < 4 {
            return Err(fail(format!("truncated rank of {what} tensor {i}")));
        }
        let rank = bytes.get_u32_le() as usize;
        if bytes.remaining() < 4 * rank {
            return Err(fail(format!("truncated dims of {what} tensor {i}")));
        }
        let dims: Vec<usize> = (0..rank).map(|_| bytes.get_u32_le() as usize).collect();
        let len: usize = dims.iter().product();
        if bytes.remaining() < 4 * len {
            return Err(fail(format!("truncated data of {what} tensor {i}")));
        }
        let data: Vec<f32> = (0..len).map(|_| bytes.get_f32_le()).collect();
        tensors.push(Tensor::from_vec(data, &dims)?);
    }
    Ok(tensors)
}

fn get_u32_count(bytes: &mut Bytes, what: &str) -> Result<usize> {
    if bytes.remaining() < 4 {
        return Err(fail(format!("truncated {what} count")));
    }
    Ok(bytes.get_u32_le() as usize)
}

/// Serialises the model's persistent state as a v1 blob.
///
/// Reads the model through the read-only state visitor
/// ([`Layer::visit_state_ref`]), so a model that is merely borrowed —
/// e.g. one being served by worker threads, snapshotted for a hot swap —
/// can be checkpointed without exclusive access.
///
/// # Example
///
/// ```
/// use alf_core::models::plain20;
/// use alf_core::checkpoint;
///
/// # fn main() -> alf_core::Result<()> {
/// let model = plain20(10, 4)?;
/// let blob = checkpoint::save(&model);
/// let mut clone = plain20(10, 4)?;
/// checkpoint::load(&mut clone, &blob)?;
/// # Ok(())
/// # }
/// ```
pub fn save(model: &CnnModel) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC_V1);
    put_model_section(&mut buf, model);
    buf.freeze()
}

/// Serialises the model plus trainer state as a v2 blob — the full
/// fault-tolerance checkpoint `alf-dp` writes so a killed run resumes
/// bitwise-identically.
pub fn save_trainer(model: &CnnModel, state: &TrainerState) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC_V2);
    put_model_section(&mut buf, model);
    buf.put_u32_le(state.momentum.len() as u32);
    for t in &state.momentum {
        put_tensor(&mut buf, t);
    }
    buf.put_f32_le(state.schedule.slope);
    buf.put_f32_le(state.schedule.pr_max);
    buf.put_u64_le(state.epoch);
    buf.put_u64_le(state.step);
    buf.put_u64_le(state.data_seed);
    buf.freeze()
}

fn put_model_section(buf: &mut BytesMut, model: &CnnModel) {
    let mut count = 0u32;
    model.visit_state_ref(&mut |_| count += 1);
    buf.put_u32_le(count);
    model.visit_state_ref(&mut |t: &Tensor| put_tensor(buf, t));
}

/// A fully parsed and bounds-checked blob, not yet applied to any model.
struct Parsed {
    model: Vec<Tensor>,
    trainer: Option<TrainerState>,
}

fn parse(blob: &[u8]) -> Result<Parsed> {
    let mut bytes = Bytes::copy_from_slice(blob);
    if bytes.remaining() < MAGIC_V1.len() {
        return Err(fail("truncated header"));
    }
    let mut magic = [0u8; 8];
    bytes.copy_to_slice(&mut magic);
    let v2 = match &magic {
        m if m == MAGIC_V1 => false,
        m if m == MAGIC_V2 => true,
        _ => return Err(fail("bad magic")),
    };
    let count = get_u32_count(&mut bytes, "model tensor")?;
    let model = get_tensors(&mut bytes, count, "model")?;
    let trainer = if v2 {
        let mcount = get_u32_count(&mut bytes, "momentum tensor")?;
        let momentum = get_tensors(&mut bytes, mcount, "momentum")?;
        if bytes.remaining() < 2 * 4 + 3 * 8 {
            return Err(fail("truncated trainer trailer"));
        }
        let slope = bytes.get_f32_le();
        let pr_max = bytes.get_f32_le();
        if !(1.0..=10.0).contains(&slope) || !(0.0..=1.0).contains(&pr_max) {
            return Err(fail(format!(
                "schedule out of domain: slope {slope}, pr_max {pr_max}"
            )));
        }
        Some(TrainerState {
            momentum,
            schedule: PruneSchedule { slope, pr_max },
            epoch: bytes.get_u64_le(),
            step: bytes.get_u64_le(),
            data_seed: bytes.get_u64_le(),
        })
    } else {
        None
    };
    // A well-formed blob ends exactly at its last field; trailing bytes
    // mean the blob was produced by something else (or corrupted in a way
    // the per-field checks cannot see), so reject loudly.
    if bytes.remaining() > 0 {
        return Err(fail(format!(
            "{} trailing bytes after the last field",
            bytes.remaining()
        )));
    }
    Ok(Parsed { model, trainer })
}

/// Validates the parsed model section against `model`'s structure and
/// commits it. Does not touch the model on error.
fn apply_model(model: &mut CnnModel, tensors: Vec<Tensor>) -> Result<()> {
    let mut expected: Vec<Vec<usize>> = Vec::new();
    model.visit_state_ref(&mut |t: &Tensor| expected.push(t.dims().to_vec()));
    if expected.len() != tensors.len() {
        return Err(fail(format!(
            "model has {} state tensors, checkpoint has {}",
            expected.len(),
            tensors.len()
        )));
    }
    for (i, (dims, t)) in expected.iter().zip(&tensors).enumerate() {
        if dims.as_slice() != t.dims() {
            return Err(fail(format!(
                "state tensor {i} shape mismatch: model {dims:?} vs checkpoint {:?}",
                t.dims()
            )));
        }
    }
    let mut iter = tensors.into_iter();
    model.visit_state(&mut |t: &mut Tensor| {
        *t = iter.next().expect("validated count");
    });
    Ok(())
}

/// Validates momentum tensors against the model's *parameter* shapes in
/// visit order. An empty momentum set (fresh optimizer) always passes.
fn check_momentum(model: &CnnModel, momentum: &[Tensor]) -> Result<()> {
    if momentum.is_empty() {
        return Ok(());
    }
    let mut params: Vec<Vec<usize>> = Vec::new();
    model.visit_params_ref(&mut |p| params.push(p.value.dims().to_vec()));
    if params.len() != momentum.len() {
        return Err(fail(format!(
            "model has {} parameters, checkpoint has {} momentum tensors",
            params.len(),
            momentum.len()
        )));
    }
    for (i, (dims, t)) in params.iter().zip(momentum).enumerate() {
        if dims.as_slice() != t.dims() {
            return Err(fail(format!(
                "momentum tensor {i} shape mismatch: parameter {dims:?} vs checkpoint {:?}",
                t.dims()
            )));
        }
    }
    Ok(())
}

/// Restores a model's persistent state from a blob produced by [`save`]
/// **or** [`save_trainer`] (whose trainer trailer is validated, then
/// discarded — serving a training checkpoint needs no extra step).
///
/// # Errors
///
/// Returns an error when the blob is malformed, truncated, carries bytes
/// past the last field, or its tensor structure does not exactly match
/// the model's. A failed load leaves the model untouched.
pub fn load(model: &mut CnnModel, blob: &[u8]) -> Result<()> {
    let parsed = parse(blob)?;
    apply_model(model, parsed.model)
}

/// Restores a model *and* its trainer state from a blob.
///
/// Accepts both versions: a v2 blob yields `Some(TrainerState)`; a v1
/// (model-only) blob restores the model and yields `None`, letting a
/// trainer resume from an old checkpoint with a fresh optimizer — the
/// backward-compatibility half of the format contract.
///
/// # Errors
///
/// Everything [`load`] rejects, plus momentum tensors whose count or
/// shapes do not match the model's parameters. A failed load leaves the
/// model untouched.
pub fn load_trainer(model: &mut CnnModel, blob: &[u8]) -> Result<Option<TrainerState>> {
    let parsed = parse(blob)?;
    if let Some(state) = &parsed.trainer {
        check_momentum(model, &state.momentum)?;
    }
    apply_model(model, parsed.model)?;
    Ok(parsed.trainer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::AlfBlockConfig;
    use crate::models::{plain20, plain20_alf, resnet20};
    use alf_nn::RunCtx;
    use alf_tensor::init::Init;
    use alf_tensor::rng::Rng;

    fn probe_output(model: &mut CnnModel) -> Tensor {
        let x = Tensor::randn(&[2, 3, 12, 12], Init::Rand, &mut Rng::new(42));
        model.forward(&x, &mut RunCtx::eval()).expect("forward")
    }

    fn trainer_state_for(model: &CnnModel) -> TrainerState {
        let mut momentum = Vec::new();
        let mut fill = 0.0f32;
        model.visit_params_ref(&mut |p| {
            fill += 0.125;
            momentum.push(Tensor::full(p.value.dims(), fill));
        });
        TrainerState {
            momentum,
            schedule: PruneSchedule::new(6.0, 0.7),
            epoch: 3,
            step: 11,
            data_seed: 0xfeed,
        }
    }

    #[test]
    fn round_trip_restores_outputs_exactly() {
        let mut original = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 1).unwrap();
        let blob = save(&original);
        let before = probe_output(&mut original);
        // A freshly-initialised model with a different seed…
        let mut restored = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 999).unwrap();
        assert!(!probe_output(&mut restored).allclose(&before, 1e-6));
        // …becomes identical after loading the checkpoint.
        load(&mut restored, &blob).unwrap();
        assert_eq!(probe_output(&mut restored), before);
    }

    #[test]
    fn checkpoint_includes_autoencoder_state() {
        let mut a = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 2).unwrap();
        // Mutate one block's mask, checkpoint, restore into a fresh model.
        a.alf_blocks_mut()[0]
            .autoencoder_mut()
            .set_mask_value(0, 0.0);
        let blob = save(&a);
        let mut b = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 3).unwrap();
        load(&mut b, &blob).unwrap();
        assert_eq!(b.alf_blocks_mut()[0].autoencoder().mask().data()[0], 0.0);
        assert_eq!(b.filter_stats()[0].1, 3); // channel 0 clipped
    }

    #[test]
    fn mismatched_architecture_is_rejected() {
        let small = plain20(4, 4).unwrap();
        let blob = save(&small);
        let mut wide = plain20(4, 8).unwrap();
        assert!(load(&mut wide, &blob).is_err());
        // Vanilla vs ALF differ in state structure too.
        let mut alf = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 4).unwrap();
        assert!(load(&mut alf, &blob).is_err());
        // Residual model has the same parameter multiset as plain but
        // batch-norm buffers line up, so this *does* load; architecture
        // sameness up to the state structure is the contract.
        let mut res = resnet20(4, 4).unwrap();
        assert!(load(&mut res, &blob).is_ok());
    }

    #[test]
    fn corrupted_blobs_are_rejected() {
        let mut model = plain20(4, 4).unwrap();
        let blob = save(&model);
        assert!(load(&mut model, b"garbage").is_err());
        assert!(load(&mut model, &blob[..blob.len() / 2]).is_err());
        let mut bad_magic = blob.to_vec();
        bad_magic[0] = b'X';
        assert!(load(&mut model, &bad_magic).is_err());
    }

    #[test]
    fn failed_load_leaves_model_untouched() {
        let mut model = plain20(4, 4).unwrap();
        let before = probe_output(&mut model);
        let other = plain20(4, 8).unwrap();
        let blob = save(&other);
        assert!(load(&mut model, &blob).is_err());
        assert_eq!(probe_output(&mut model), before);
    }

    #[test]
    fn trailing_bytes_are_rejected_for_both_versions() {
        let mut model = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 5).unwrap();
        let state = trainer_state_for(&model);
        for blob in [save(&model), save_trainer(&model, &state)] {
            // A structurally-valid blob followed by garbage must not load,
            // for any amount of garbage (1 byte up to a whole extra tensor).
            for extra in [1usize, 3, 4, 64] {
                let mut padded = blob.to_vec();
                padded.resize(padded.len() + extra, 0xAB);
                let err = load(&mut model, &padded).unwrap_err();
                assert!(
                    err.to_string().contains("trailing bytes"),
                    "unexpected error for {extra} extra bytes: {err}"
                );
            }
            // The untouched blob still loads.
            assert!(load(&mut model, &blob).is_ok());
        }
    }

    #[test]
    fn read_only_save_agrees_with_mut_visitor() {
        // `save` reads through `visit_state_ref`; the load path walks
        // `visit_state`. The two visitor orders are contractually
        // identical — compare them tensor by tensor over a model that
        // exercises every unit kind with state (conv, ALF block, BN,
        // residual, classifier).
        let mut model = resnet20(4, 4).unwrap();
        let mut via_mut: Vec<(Vec<usize>, Vec<f32>)> = Vec::new();
        model.visit_state(&mut |t: &mut Tensor| {
            via_mut.push((t.dims().to_vec(), t.data().to_vec()));
        });
        let mut via_ref: Vec<(Vec<usize>, Vec<f32>)> = Vec::new();
        model.visit_state_ref(&mut |t: &Tensor| {
            via_ref.push((t.dims().to_vec(), t.data().to_vec()));
        });
        assert_eq!(via_mut, via_ref);
        // Same for the parameter visitors (order and identity).
        let mut params_mut = Vec::new();
        model.visit_params(&mut |p| params_mut.push(p.value.data().to_vec()));
        let mut params_ref = Vec::new();
        model.visit_params_ref(&mut |p| params_ref.push(p.value.data().to_vec()));
        assert_eq!(params_mut, params_ref);
    }

    #[test]
    fn trainer_round_trip_restores_everything() {
        let model = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 6).unwrap();
        let state = trainer_state_for(&model);
        let blob = save_trainer(&model, &state);
        let mut restored = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 77).unwrap();
        let got = load_trainer(&mut restored, &blob).unwrap().expect("v2");
        assert_eq!(got, state);
        // Model section restored too.
        let mut a = Vec::new();
        model.visit_state_ref(&mut |t: &Tensor| a.extend_from_slice(t.data()));
        let mut b = Vec::new();
        restored.visit_state_ref(&mut |t: &Tensor| b.extend_from_slice(t.data()));
        assert_eq!(a, b);
    }

    #[test]
    fn v1_blob_loads_as_trainer_with_fresh_state() {
        let model = plain20(4, 4).unwrap();
        let blob = save(&model);
        let mut restored = plain20(4, 4).unwrap();
        assert!(load_trainer(&mut restored, &blob).unwrap().is_none());
    }

    #[test]
    fn v2_blob_loads_as_plain_model_checkpoint() {
        let mut model = plain20(4, 4).unwrap();
        let state = trainer_state_for(&model);
        let blob = save_trainer(&model, &state);
        let before = probe_output(&mut model);
        let mut restored = plain20(4, 4).unwrap();
        load(&mut restored, &blob).unwrap();
        assert_eq!(probe_output(&mut restored), before);
    }

    #[test]
    fn empty_momentum_means_fresh_optimizer() {
        let model = plain20(4, 4).unwrap();
        let state = TrainerState {
            momentum: Vec::new(),
            ..trainer_state_for(&model)
        };
        let blob = save_trainer(&model, &state);
        let mut restored = plain20(4, 4).unwrap();
        let got = load_trainer(&mut restored, &blob).unwrap().expect("v2");
        assert!(got.momentum.is_empty());
        assert_eq!(got.epoch, 3);
    }

    #[test]
    fn mismatched_momentum_shapes_are_rejected() {
        // Regression: a v2 blob whose momentum tensors do not match the
        // model's parameters must be refused, leaving the model untouched.
        let mut model = plain20(4, 4).unwrap();
        let mut state = trainer_state_for(&model);
        // Wrong shape on one tensor.
        state.momentum[0] = Tensor::zeros(&[1, 2, 3]);
        let blob = save_trainer(&model, &state);
        let before = probe_output(&mut model);
        let err = load_trainer(&mut model, &blob).unwrap_err();
        assert!(
            err.to_string().contains("momentum tensor 0 shape mismatch"),
            "{err}"
        );
        assert_eq!(probe_output(&mut model), before);
        // Wrong count.
        let mut short = trainer_state_for(&model);
        short.momentum.pop();
        let blob = save_trainer(&model, &short);
        let err = load_trainer(&mut model, &blob).unwrap_err();
        assert!(err.to_string().contains("momentum tensors"), "{err}");
    }

    #[test]
    fn out_of_domain_schedule_is_rejected() {
        let model = plain20(4, 4).unwrap();
        let mut state = trainer_state_for(&model);
        state.schedule = PruneSchedule {
            slope: 0.0,
            pr_max: 2.0,
        };
        let blob = save_trainer(&model, &state);
        let mut restored = plain20(4, 4).unwrap();
        let err = load_trainer(&mut restored, &blob).unwrap_err();
        assert!(err.to_string().contains("schedule out of domain"), "{err}");
    }
}
