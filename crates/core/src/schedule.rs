//! The pruning-pressure schedule `νprune` (paper §III-B).
//!
//! The mask regulariser `Lprune = 1/Co·Σ|m|` is weighted by
//! `νprune = max(0, 1 − exp(m·(θ − prmax)))` where `θ` is the current zero
//! fraction of the code. Pressure is near 1 while the layer is dense and
//! decays to 0 as `θ` approaches the target `prmax`, slowing pruning near
//! the end of training — the adaptive analogue of Han et al.'s layer
//! sensitivity.

use serde::{Deserialize, Serialize};

/// Parameters of the `νprune` schedule.
///
/// # Example
///
/// ```
/// use alf_core::PruneSchedule;
///
/// let s = PruneSchedule::paper_default(); // m = 8, prmax = 0.85
/// assert!(s.nu(0.0) > 0.99);          // full pressure while dense
/// assert_eq!(s.nu(0.85), 0.0);        // no pressure at the target
/// assert_eq!(s.nu(1.0), 0.0);         // clamped beyond the target
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruneSchedule {
    /// Sensitivity slope `m ∈ [1, 10]`.
    pub slope: f32,
    /// Maximum pruning rate `prmax ∈ [0, 1]`.
    pub pr_max: f32,
}

impl PruneSchedule {
    /// The paper's experimental setting: `m = 8`, `prmax = 0.85` (§IV).
    pub fn paper_default() -> Self {
        Self {
            slope: 8.0,
            pr_max: 0.85,
        }
    }

    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics when `slope` is not in `[1, 10]` or `pr_max` not in `[0, 1]`
    /// (the domains stated in the paper).
    pub fn new(slope: f32, pr_max: f32) -> Self {
        assert!((1.0..=10.0).contains(&slope), "slope {slope} ∉ [1, 10]");
        assert!((0.0..=1.0).contains(&pr_max), "pr_max {pr_max} ∉ [0, 1]");
        Self { slope, pr_max }
    }

    /// Pressure at zero-fraction `θ`: `max(0, 1 − exp(m·(θ − prmax)))`.
    pub fn nu(&self, theta: f32) -> f32 {
        (1.0 - (self.slope * (theta - self.pr_max)).exp()).max(0.0)
    }
}

impl Default for PruneSchedule {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nu_is_monotonically_decreasing_in_theta() {
        let s = PruneSchedule::paper_default();
        let mut prev = f32::INFINITY;
        for i in 0..=20 {
            let theta = i as f32 / 20.0;
            let nu = s.nu(theta);
            assert!(nu <= prev + 1e-7, "not decreasing at θ={theta}");
            assert!((0.0..=1.0).contains(&nu));
            prev = nu;
        }
    }

    #[test]
    fn nu_zero_at_and_beyond_target() {
        let s = PruneSchedule::new(8.0, 0.5);
        assert_eq!(s.nu(0.5), 0.0);
        assert_eq!(s.nu(0.9), 0.0);
    }

    #[test]
    fn steeper_slope_holds_pressure_longer() {
        let shallow = PruneSchedule::new(2.0, 0.85);
        let steep = PruneSchedule::new(10.0, 0.85);
        // Mid-way to the target the steep schedule is still near 1.
        assert!(steep.nu(0.4) > shallow.nu(0.4));
    }

    #[test]
    #[should_panic(expected = "slope")]
    fn rejects_out_of_domain_slope() {
        PruneSchedule::new(0.5, 0.85);
    }

    #[test]
    #[should_panic(expected = "pr_max")]
    fn rejects_out_of_domain_target() {
        PruneSchedule::new(8.0, 1.5);
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(PruneSchedule::default(), PruneSchedule::paper_default());
    }
}
