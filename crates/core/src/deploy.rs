//! Deployment post-processing (paper §III-C).
//!
//! After training, every ALF block's code `Wcode` contains some filters
//! that are exactly zero (their mask entries were clipped). Deployment:
//!
//! 1. materialises the code as constant weights (the autoencoder is
//!    discarded),
//! 2. strips the zero filters from the code convolution, and
//! 3. removes the matching *input channels* of the 1×1 expansion layer
//!    (their contribution was identically zero).
//!
//! The result is a dense model that computes exactly the same function as
//! the training-form network in evaluation mode — verified by this
//! module's test-suite — but with `Ccode < Co` filters per layer.
//!
//! All deployment transforms are driven by [`Pipeline`]:
//!
//! ```text
//! Pipeline::new()                // strip zero filters (always)
//!     .fold_bn(true)             // absorb BN into conv weight/bias
//!     .quantize(QuantSpec::int8(calib))  // lower to fused int8
//!     .run(&model)? -> Deployed
//! ```
//!
//! [`Deployed`] carries the stripped (and possibly folded) f32 model, the
//! optional [`QuantizedModel`] int8 form with its [`QuantReport`], and
//! per-layer [`LayerProvenance`] records of what each transform did. The
//! flat [`compress`] entry point survives as a deprecated wrapper over
//! `Pipeline::new().run(..)`.

use alf_nn::activation::ActivationKind;
use alf_nn::conv::Conv2d;
use alf_tensor::init::Init;
use alf_tensor::rng::Rng;
use alf_tensor::{ShapeError, Tensor};

use crate::block::AlfBlock;
use crate::metrics::{ConvShape, NetworkCost};
use crate::model::{CnnModel, ConvKind, Unit};
use crate::qmodel::QuantizedModel;
use crate::quant::{QuantError, QuantReport};
use crate::Result;

/// Per-convolution deployment record: the layer's geometry plus its
/// retained code size (`None` for standard convolutions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployedConvInfo {
    /// Geometry of the (code) convolution.
    pub shape: ConvShape,
    /// Retained code filters `Ccode`, or `None` for standard convs.
    pub c_code: Option<usize>,
}

impl DeployedConvInfo {
    /// Parameter count of this layer as deployed.
    pub fn params(&self) -> u64 {
        match self.c_code {
            Some(c) => self.shape.alf_params(c),
            None => self.shape.params(),
        }
    }

    /// MAC count of this layer as deployed.
    pub fn macs(&self) -> u64 {
        match self.c_code {
            Some(c) => self.shape.alf_macs(c),
            None => self.shape.macs(),
        }
    }

    /// Whether the retained code is below the paper's efficiency bound
    /// `Ccode,max` (Eq. 2) — i.e. the ALF block is actually cheaper than
    /// the convolution it replaced.
    pub fn is_profitable(&self) -> bool {
        match self.c_code {
            Some(c) => c <= self.shape.c_code_max(),
            None => false,
        }
    }
}

fn strip_block(block: &AlfBlock) -> Result<(Conv2d, Conv2d)> {
    let cfg = block.config();
    if cfg.sigma_inter != ActivationKind::Identity || cfg.inter_bn {
        return Err(ShapeError::new(
            "deploy",
            "only σinter = none and no BNinter can be deployed as a linear conv pair",
        ));
    }
    let code = block.code()?; // [Co, Ci, K, K]
    let (co, ci, k) = (code.dims()[0], code.dims()[1], code.dims()[2]);
    let fan = ci * k * k;
    // Keep filters that are not identically zero; guarantee at least one
    // filter so downstream shapes stay valid even for a fully-pruned layer.
    let mut active: Vec<usize> = (0..co)
        .filter(|&j| {
            code.data()[j * fan..(j + 1) * fan]
                .iter()
                .any(|&v| v != 0.0)
        })
        .collect();
    if active.is_empty() {
        active.push(0);
    }
    let c_code = active.len();
    let mut code_w = Tensor::zeros(&[c_code, ci, k, k]);
    for (row, &j) in active.iter().enumerate() {
        code_w.data_mut()[row * fan..(row + 1) * fan]
            .copy_from_slice(&code.data()[j * fan..(j + 1) * fan]);
    }
    let exp_full = block.expansion_weight(); // [Co, Co, 1, 1]
    let mut exp_w = Tensor::zeros(&[co, c_code, 1, 1]);
    for o in 0..co {
        for (row, &j) in active.iter().enumerate() {
            exp_w.data_mut()[o * c_code + row] = exp_full.data()[o * co + j];
        }
    }
    let spec = block.conv_spec();
    let mut rng = Rng::new(0);
    let mut code_conv = Conv2d::new(
        ci,
        c_code,
        spec.kernel,
        spec.stride,
        spec.pad,
        false,
        Init::Zeros,
        &mut rng,
    );
    code_conv.set_weight(code_w)?;
    let mut expansion = Conv2d::new(c_code, co, 1, 1, 0, false, Init::Zeros, &mut rng);
    expansion.set_weight(exp_w)?;
    Ok((code_conv, expansion))
}

fn deploy_conv(kind: &ConvKind) -> Result<ConvKind> {
    Ok(match kind {
        ConvKind::Alf(block) => {
            let (code, expansion) = strip_block(block)?;
            ConvKind::Deployed { code, expansion }
        }
        other => other.clone(),
    })
}

/// Strips every ALF block of the model copy to its dense `code →
/// expansion` pair (the unconditional first stage of every [`Pipeline`]).
fn strip_model(model: &CnnModel) -> Result<CnnModel> {
    let mut out = model.clone();
    for unit in out.units_mut() {
        match unit {
            Unit::Conv(cu) => {
                *cu.conv_mut() = deploy_conv(cu.conv())?;
            }
            Unit::Residual(r) => {
                *r.a_mut().conv_mut() = deploy_conv(r.a().conv())?;
                *r.b_mut().conv_mut() = deploy_conv(r.b().conv())?;
            }
            Unit::Fire(f) => {
                for cu in f.conv_units_mut() {
                    *cu.conv_mut() = deploy_conv(cu.conv())?;
                }
            }
            _ => {}
        }
    }
    out.set_name(format!("deployed-{}", model.name()));
    Ok(out)
}

/// Folds a unit's batch-norm into one convolution's weight and bias:
/// `W'[o] = g[o]·W[o]`, `b'[o] = β[o] − g[o]·μ[o] + g[o]·b[o]` with
/// `g[o] = γ[o]/√(σ²[o]+ε)` — exactly the eval-path normalisation, so the
/// folded conv reproduces conv→BN to rounding error.
fn fold_into_conv(conv: &mut Conv2d, g: &[f32], beta: &[f32], mean: &[f32]) -> Result<()> {
    let co = conv.c_out();
    let old_bias: Vec<f32> = match conv.bias() {
        Some(b) => b.data().to_vec(),
        None => vec![0.0; co],
    };
    let w = conv.weight_mut();
    let fan = w.len() / co;
    for (row, &scale) in w.data_mut().chunks_exact_mut(fan).zip(g) {
        for v in row {
            *v *= scale;
        }
    }
    let bias: Vec<f32> = (0..co)
        .map(|o| beta[o] - g[o] * mean[o] + g[o] * old_bias[o])
        .collect();
    conv.set_bias(Tensor::from_vec(bias, &[co])?)
}

/// Removes every batch-norm layer of the model, absorbing it into the
/// preceding convolution (the expansion conv for a deployed ALF pair).
fn fold_batchnorm(model: &mut CnnModel) -> Result<()> {
    for cu in model.conv_units_mut() {
        let Some(bn) = cu.take_bn() else { continue };
        let eps = bn.eps();
        let g: Vec<f32> = bn
            .scale()
            .data()
            .iter()
            .zip(bn.running_var().data())
            .map(|(&gamma, &var)| gamma / (var + eps).sqrt())
            .collect();
        let (beta, mean) = (bn.shift().data(), bn.running_mean().data());
        match cu.conv_mut() {
            ConvKind::Standard(c) => fold_into_conv(c, &g, beta, mean)?,
            ConvKind::Deployed { expansion, .. } => fold_into_conv(expansion, &g, beta, mean)?,
            ConvKind::Alf(_) => {
                return Err(ShapeError::new(
                    "fold_bn",
                    "training-form ALF block survived stripping",
                ))
            }
        }
    }
    Ok(())
}

/// Quantization request for [`Pipeline::quantize`].
#[derive(Debug, Clone)]
pub struct QuantSpec {
    bits: u8,
    calib: Tensor,
}

impl QuantSpec {
    /// Symmetric int8 with activation scales calibrated on `calib`, an
    /// `NCHW` batch of representative inputs.
    pub fn int8(calib: Tensor) -> Self {
        Self { bits: 8, calib }
    }

    /// Bit-width of the request (currently always 8).
    pub fn bits(&self) -> u8 {
        self.bits
    }
}

/// What one deployment transform pass did to one conv unit.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerProvenance {
    /// The conv unit's name.
    pub layer: String,
    /// Retained code filters after stripping (`None` for standard convs).
    pub stripped_to: Option<usize>,
    /// Whether a batch-norm layer was folded away.
    pub folded_bn: bool,
    /// Weight scale of the unit's output conv, when quantized.
    pub weight_scale: Option<f32>,
    /// Output activation scale of the unit, when quantized.
    pub act_scale: Option<f32>,
}

/// Everything [`Pipeline::run`] produces.
#[derive(Debug, Clone)]
pub struct Deployed {
    /// The stripped (and, when requested, BN-folded) f32 model.
    pub model: CnnModel,
    /// The fused int8 form, when quantization was requested.
    pub quantized: Option<QuantizedModel>,
    /// Weight-quantization summary, when quantization was requested.
    pub report: Option<QuantReport>,
    /// Per-conv-unit record of what each transform did.
    pub provenance: Vec<LayerProvenance>,
}

/// A deployment failure: either a structural shape problem or a
/// quantization problem.
#[derive(Debug, Clone, PartialEq)]
pub enum DeployError {
    /// Structural failure (non-foldable block form, geometry mismatch).
    Shape(ShapeError),
    /// Quantization failure (bad calibration, unsupported model form).
    Quant(QuantError),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::Shape(e) => write!(f, "deploy: {e}"),
            DeployError::Quant(e) => write!(f, "deploy (quantize): {e}"),
        }
    }
}

impl std::error::Error for DeployError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeployError::Shape(e) => Some(e),
            DeployError::Quant(e) => Some(e),
        }
    }
}

impl From<ShapeError> for DeployError {
    fn from(e: ShapeError) -> Self {
        DeployError::Shape(e)
    }
}

impl From<QuantError> for DeployError {
    fn from(e: QuantError) -> Self {
        DeployError::Quant(e)
    }
}

impl From<DeployError> for ShapeError {
    /// Lets `Pipeline::run(..)?` flow into the crate-wide
    /// [`Result`](crate::Result) at call sites that don't need the typed
    /// split (bench jobs, examples).
    fn from(e: DeployError) -> Self {
        match e {
            DeployError::Shape(s) => s,
            DeployError::Quant(q) => ShapeError::new("deploy/quantize", q.to_string()),
        }
    }
}

/// Builder for the deployment transform sequence. Stripping zero filters
/// always happens; batch-norm folding and int8 quantization are opt-in,
/// and quantization requires folding (the int8 engine runs pure conv
/// stacks only).
///
/// # Example
///
/// ```
/// use alf_core::deploy::{Pipeline, QuantSpec};
/// use alf_core::models::plain20_alf;
/// use alf_core::AlfBlockConfig;
/// use alf_tensor::init::Init;
/// use alf_tensor::rng::Rng;
/// use alf_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = plain20_alf(10, 4, AlfBlockConfig::paper_default(), 1)?;
/// let calib = Tensor::randn(&[2, 3, 16, 16], Init::Rand, &mut Rng::new(0));
/// let deployed = Pipeline::new()
///     .fold_bn(true)
///     .quantize(QuantSpec::int8(calib))
///     .run(&model)?;
/// assert!(deployed.quantized.is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    fold_bn: bool,
    quant: Option<QuantSpec>,
}

impl Pipeline {
    /// A pipeline that only strips zero filters (the classic
    /// deployment form).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables batch-norm folding: every BN layer is absorbed into its
    /// conv's weight/bias and removed, leaving a pure conv stack.
    pub fn fold_bn(mut self, on: bool) -> Self {
        self.fold_bn = on;
        self
    }

    /// Requests post-training quantization of the folded model.
    pub fn quantize(mut self, spec: QuantSpec) -> Self {
        self.quant = Some(spec);
        self
    }

    /// Runs the transform sequence on (a copy of) `model`.
    ///
    /// # Errors
    ///
    /// [`DeployError::Shape`] when a block uses `σinter ≠ none` or
    /// `BNinter` (not foldable into a linear conv pair); when quantizing,
    /// [`DeployError::Quant`] for unsupported model forms, empty
    /// calibration batches, non-finite weights — and for requesting
    /// quantization without `fold_bn(true)`.
    pub fn run(&self, model: &CnnModel) -> std::result::Result<Deployed, DeployError> {
        let mut out = strip_model(model)?;
        if self.fold_bn {
            fold_batchnorm(&mut out)?;
        }
        let mut provenance: Vec<LayerProvenance> = out
            .conv_units()
            .into_iter()
            .map(|cu| LayerProvenance {
                layer: cu.name().to_string(),
                stripped_to: cu.conv().c_code(),
                folded_bn: self.fold_bn,
                weight_scale: None,
                act_scale: None,
            })
            .collect();
        let (quantized, report) = match &self.quant {
            None => (None, None),
            Some(spec) => {
                if !self.fold_bn {
                    return Err(QuantError::Unsupported {
                        what: format!(
                            "int{} quantization without fold_bn(true) — the int8 engine \
                             runs pure conv stacks only",
                            spec.bits
                        ),
                    }
                    .into());
                }
                let (qm, report) = QuantizedModel::from_folded(&out, &spec.calib)?;
                for info in qm.conv_info() {
                    if let Some(p) = provenance.iter_mut().find(|p| p.layer == info.unit) {
                        // A deployed code→expand pair reports the unit's
                        // output stage.
                        p.weight_scale = Some(info.w_scale);
                        p.act_scale = Some(info.out_scale);
                    }
                }
                (Some(qm), Some(report))
            }
        };
        Ok(Deployed {
            model: out,
            quantized,
            report,
            provenance,
        })
    }
}

/// Produces the densely-compressed deployment form of a model: every ALF
/// block is replaced by a stripped `code conv → expansion` pair; standard
/// convolutions (and BN running statistics, classifier, …) are copied
/// unchanged.
///
/// # Errors
///
/// Returns an error when a block uses `σinter ≠ none` or `BNinter`, which
/// cannot be folded into a linear conv pair (the paper's selected
/// configuration uses neither).
#[deprecated(
    note = "use deploy::Pipeline::new().run(model) — it also offers BN folding \
                     and int8 quantization"
)]
pub fn compress(model: &CnnModel) -> Result<CnnModel> {
    strip_model(model)
}

/// Per-layer deployment records for an input of `h × w` pixels, pairing
/// each convolution's geometry with its retained code size.
pub fn conv_report(model: &CnnModel, h: usize, w: usize) -> Vec<DeployedConvInfo> {
    model
        .conv_shapes(h, w)
        .into_iter()
        .zip(model.conv_kinds())
        .map(|(shape, kind)| DeployedConvInfo {
            shape,
            c_code: kind.c_code(),
        })
        .collect()
}

/// Aggregate deployed cost of a model at the given input resolution.
pub fn cost(model: &CnnModel, h: usize, w: usize) -> NetworkCost {
    conv_report(model, h, w)
        .iter()
        .fold(NetworkCost::default(), |acc, info| NetworkCost {
            params: acc.params + info.params(),
            macs: acc.macs + info.macs(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::AlfBlockConfig;
    use crate::models::{plain20, plain20_alf, resnet20_alf};
    use crate::schedule::PruneSchedule;
    use alf_nn::{Layer, RunCtx};

    fn pruned_model(seed: u64) -> CnnModel {
        let mut cfg = AlfBlockConfig::paper_default();
        cfg.threshold = 5e-2; // aggressive so pruning happens fast
        let mut model = plain20_alf(4, 4, cfg, seed).unwrap();
        let schedule = PruneSchedule::new(8.0, 0.9);
        for block in model.alf_blocks_mut() {
            for _ in 0..1500 {
                block.autoencoder_step(5e-3, &schedule).unwrap();
            }
        }
        model
    }

    /// Strip-only deployment via the builder (what `compress` used to do).
    fn strip(model: &CnnModel) -> CnnModel {
        Pipeline::new().run(model).unwrap().model
    }

    #[test]
    fn compress_preserves_function_exactly() {
        let mut model = pruned_model(1);
        let mut deployed = strip(&model);
        let mut rng = Rng::new(2);
        let x = Tensor::randn(&[2, 3, 16, 16], Init::Rand, &mut rng);
        let y_train_form = model.forward(&x, &mut RunCtx::eval()).unwrap();
        let y_deployed = deployed.forward(&x, &mut RunCtx::eval()).unwrap();
        assert!(
            y_deployed.allclose(&y_train_form, 1e-4),
            "deployment changed the function"
        );
    }

    #[test]
    fn compress_actually_strips_filters() {
        let model = pruned_model(3);
        // Ensure at least one block pruned something.
        assert!(model.remaining_filter_fraction() < 1.0);
        let deployed = strip(&model);
        let infos = conv_report(&deployed, 16, 16);
        let total_code: usize = infos.iter().filter_map(|i| i.c_code).sum();
        let total_out: usize = infos.iter().map(|i| i.shape.c_out).sum();
        assert!(total_code < total_out, "{total_code} vs {total_out}");
    }

    #[test]
    fn deployed_cost_below_vanilla_when_pruned_enough() {
        let model = pruned_model(4);
        let deployed = strip(&model);
        let vanilla = plain20(4, 4).unwrap();
        let v_cost = cost(&vanilla, 16, 16);
        let d_cost = cost(&deployed, 16, 16);
        // With heavy pruning the deployed network must be cheaper.
        if model.remaining_filter_fraction() < 0.5 {
            assert!(d_cost.macs < v_cost.macs, "{d_cost:?} vs {v_cost:?}");
        }
    }

    #[test]
    fn conv_report_flags_profitability() {
        let model = pruned_model(5);
        let deployed = strip(&model);
        for info in conv_report(&deployed, 16, 16) {
            let c = info.c_code.unwrap();
            assert_eq!(info.is_profitable(), c <= info.shape.c_code_max());
        }
    }

    #[test]
    fn standard_convs_pass_through_unchanged() {
        let vanilla = plain20(4, 4).unwrap();
        let deployed = strip(&vanilla);
        assert_eq!(cost(&vanilla, 16, 16), cost(&deployed, 16, 16));
        assert!(conv_report(&deployed, 16, 16)
            .iter()
            .all(|i| i.c_code.is_none()));
    }

    #[test]
    fn residual_models_deploy_too() {
        let mut cfg = AlfBlockConfig::paper_default();
        cfg.threshold = 5e-2;
        let mut model = resnet20_alf(4, 4, cfg, 6).unwrap();
        for block in model.alf_blocks_mut() {
            for _ in 0..1500 {
                block
                    .autoencoder_step(5e-3, &PruneSchedule::new(8.0, 0.9))
                    .unwrap();
            }
        }
        let mut deployed = strip(&model);
        let mut rng = Rng::new(7);
        let x = Tensor::randn(&[1, 3, 16, 16], Init::Rand, &mut rng);
        let a = model.forward(&x, &mut RunCtx::eval()).unwrap();
        let b = deployed.forward(&x, &mut RunCtx::eval()).unwrap();
        assert!(a.allclose(&b, 1e-4));
    }

    #[test]
    fn non_identity_sigma_inter_is_rejected() {
        let mut cfg = AlfBlockConfig::paper_default();
        cfg.sigma_inter = ActivationKind::Relu;
        let model = plain20_alf(4, 4, cfg, 8).unwrap();
        assert!(Pipeline::new().run(&model).is_err());
    }

    #[test]
    fn fully_pruned_block_keeps_one_filter() {
        let mut cfg = AlfBlockConfig::paper_default();
        cfg.threshold = 1e9; // everything clips
        let model = plain20_alf(4, 4, cfg, 9).unwrap();
        let deployed = strip(&model);
        for info in conv_report(&deployed, 16, 16) {
            assert!(info.c_code.unwrap() >= 1);
        }
    }

    /// Gives every BN layer non-trivial γ/β and running statistics, so a
    /// folding test cannot pass by accident on the fresh-init identity.
    fn roughen_batchnorm(model: &mut CnnModel, seed: u64) {
        let mut rng = Rng::new(seed);
        for cu in model.conv_units_mut() {
            if let Some(bn) = cu.bn_mut() {
                let c = bn.channels();
                *bn.scale_mut() = Tensor::randn(&[c], Init::Rand, &mut rng).map(|v| 1.0 + 0.3 * v);
                *bn.shift_mut() = Tensor::randn(&[c], Init::Rand, &mut rng).scale(0.2);
            }
        }
        // Train-mode forwards push the running statistics off (0, 1).
        let x = Tensor::randn(&[4, 3, 16, 16], Init::Rand, &mut rng);
        for _ in 0..3 {
            model.forward(&x, &mut RunCtx::train()).unwrap();
        }
    }

    #[test]
    fn bn_folding_preserves_function() {
        let mut model = pruned_model(11);
        roughen_batchnorm(&mut model, 12);
        let mut stripped = strip(&model);
        let mut folded = Pipeline::new().fold_bn(true).run(&model).unwrap().model;
        // Every BN layer is gone...
        assert!(folded.conv_units().iter().all(|cu| cu.bn().is_none()));
        // ...and the function is unchanged.
        let x = Tensor::randn(&[2, 3, 16, 16], Init::Rand, &mut Rng::new(13));
        let a = stripped.forward(&x, &mut RunCtx::eval()).unwrap();
        let b = folded.forward(&x, &mut RunCtx::eval()).unwrap();
        assert!(a.allclose(&b, 1e-4), "BN folding changed the function");
    }

    #[test]
    fn bn_folding_covers_residual_models() {
        let mut model = resnet20_alf(4, 4, AlfBlockConfig::paper_default(), 14).unwrap();
        roughen_batchnorm(&mut model, 15);
        let mut stripped = strip(&model);
        let mut folded = Pipeline::new().fold_bn(true).run(&model).unwrap().model;
        let x = Tensor::randn(&[1, 3, 16, 16], Init::Rand, &mut Rng::new(16));
        let a = stripped.forward(&x, &mut RunCtx::eval()).unwrap();
        let b = folded.forward(&x, &mut RunCtx::eval()).unwrap();
        assert!(a.allclose(&b, 1e-4));
    }

    #[test]
    fn quantize_without_fold_is_a_typed_error() {
        let model = plain20(4, 4).unwrap();
        let calib = Tensor::randn(&[2, 3, 16, 16], Init::Rand, &mut Rng::new(17));
        let err = Pipeline::new()
            .quantize(QuantSpec::int8(calib))
            .run(&model)
            .unwrap_err();
        assert!(matches!(
            err,
            DeployError::Quant(QuantError::Unsupported { .. })
        ));
    }

    #[test]
    fn int8_pipeline_tracks_the_f32_model() {
        let mut model = plain20(4, 4).unwrap();
        roughen_batchnorm(&mut model, 18);
        let mut rng = Rng::new(19);
        let calib = Tensor::randn(&[4, 3, 16, 16], Init::Rand, &mut rng);
        let deployed = Pipeline::new()
            .fold_bn(true)
            .quantize(QuantSpec::int8(calib))
            .run(&model)
            .unwrap();
        let mut qm = deployed.quantized.unwrap();
        let report = deployed.report.unwrap();
        assert_eq!(report.bits, 8);
        assert!(report.tensors > 0 && report.max_abs_error > 0.0);
        // Every conv unit's provenance records folding and scales.
        assert!(!deployed.provenance.is_empty());
        for p in &deployed.provenance {
            assert!(p.folded_bn, "{} not folded", p.layer);
            assert!(p.weight_scale.is_some() && p.act_scale.is_some());
        }
        // The int8 engine's predictions agree with the f32 model on the
        // bulk of a fresh batch.
        let x = Tensor::randn(&[16, 3, 16, 16], Init::Rand, &mut rng);
        let mut f32_model = deployed.model.clone();
        let logits = f32_model.forward(&x, &mut RunCtx::eval()).unwrap();
        let classes = deployed.model.num_classes();
        let f32_top1: Vec<usize> = logits
            .data()
            .chunks_exact(classes)
            .map(|row| {
                (0..classes)
                    .max_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap())
                    .unwrap()
            })
            .collect();
        let q_top1 = qm.predict(&x).unwrap();
        let agree = f32_top1.iter().zip(&q_top1).filter(|(a, b)| a == b).count();
        assert!(
            agree * 10 >= f32_top1.len() * 9,
            "{agree}/{}",
            f32_top1.len()
        );
        // Per-layer timings cover every conv unit exactly once.
        assert_eq!(qm.layer_times_ns().len(), deployed.provenance.len());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_compress_delegates_to_the_pipeline() {
        let model = pruned_model(20);
        let via_wrapper = compress(&model).unwrap();
        let via_pipeline = strip(&model);
        assert_eq!(cost(&via_wrapper, 16, 16), cost(&via_pipeline, 16, 16));
        assert_eq!(via_wrapper.name(), via_pipeline.name());
    }
}
