//! Deployment post-processing (paper §III-C).
//!
//! After training, every ALF block's code `Wcode` contains some filters
//! that are exactly zero (their mask entries were clipped). Deployment:
//!
//! 1. materialises the code as constant weights (the autoencoder is
//!    discarded),
//! 2. strips the zero filters from the code convolution, and
//! 3. removes the matching *input channels* of the 1×1 expansion layer
//!    (their contribution was identically zero).
//!
//! The result is a dense model that computes exactly the same function as
//! the training-form network in evaluation mode — verified by
//! [`compress`]'s test-suite — but with `Ccode < Co` filters per layer.

use alf_nn::activation::ActivationKind;
use alf_nn::conv::Conv2d;
use alf_tensor::init::Init;
use alf_tensor::rng::Rng;
use alf_tensor::{ShapeError, Tensor};

use crate::block::AlfBlock;
use crate::metrics::{ConvShape, NetworkCost};
use crate::model::{CnnModel, ConvKind, Unit};
use crate::Result;

/// Per-convolution deployment record: the layer's geometry plus its
/// retained code size (`None` for standard convolutions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployedConvInfo {
    /// Geometry of the (code) convolution.
    pub shape: ConvShape,
    /// Retained code filters `Ccode`, or `None` for standard convs.
    pub c_code: Option<usize>,
}

impl DeployedConvInfo {
    /// Parameter count of this layer as deployed.
    pub fn params(&self) -> u64 {
        match self.c_code {
            Some(c) => self.shape.alf_params(c),
            None => self.shape.params(),
        }
    }

    /// MAC count of this layer as deployed.
    pub fn macs(&self) -> u64 {
        match self.c_code {
            Some(c) => self.shape.alf_macs(c),
            None => self.shape.macs(),
        }
    }

    /// Whether the retained code is below the paper's efficiency bound
    /// `Ccode,max` (Eq. 2) — i.e. the ALF block is actually cheaper than
    /// the convolution it replaced.
    pub fn is_profitable(&self) -> bool {
        match self.c_code {
            Some(c) => c <= self.shape.c_code_max(),
            None => false,
        }
    }
}

fn strip_block(block: &AlfBlock) -> Result<(Conv2d, Conv2d)> {
    let cfg = block.config();
    if cfg.sigma_inter != ActivationKind::Identity || cfg.inter_bn {
        return Err(ShapeError::new(
            "deploy",
            "only σinter = none and no BNinter can be deployed as a linear conv pair",
        ));
    }
    let code = block.code()?; // [Co, Ci, K, K]
    let (co, ci, k) = (code.dims()[0], code.dims()[1], code.dims()[2]);
    let fan = ci * k * k;
    // Keep filters that are not identically zero; guarantee at least one
    // filter so downstream shapes stay valid even for a fully-pruned layer.
    let mut active: Vec<usize> = (0..co)
        .filter(|&j| {
            code.data()[j * fan..(j + 1) * fan]
                .iter()
                .any(|&v| v != 0.0)
        })
        .collect();
    if active.is_empty() {
        active.push(0);
    }
    let c_code = active.len();
    let mut code_w = Tensor::zeros(&[c_code, ci, k, k]);
    for (row, &j) in active.iter().enumerate() {
        code_w.data_mut()[row * fan..(row + 1) * fan]
            .copy_from_slice(&code.data()[j * fan..(j + 1) * fan]);
    }
    let exp_full = block.expansion_weight(); // [Co, Co, 1, 1]
    let mut exp_w = Tensor::zeros(&[co, c_code, 1, 1]);
    for o in 0..co {
        for (row, &j) in active.iter().enumerate() {
            exp_w.data_mut()[o * c_code + row] = exp_full.data()[o * co + j];
        }
    }
    let spec = block.conv_spec();
    let mut rng = Rng::new(0);
    let mut code_conv = Conv2d::new(
        ci,
        c_code,
        spec.kernel,
        spec.stride,
        spec.pad,
        false,
        Init::Zeros,
        &mut rng,
    );
    code_conv.set_weight(code_w)?;
    let mut expansion = Conv2d::new(c_code, co, 1, 1, 0, false, Init::Zeros, &mut rng);
    expansion.set_weight(exp_w)?;
    Ok((code_conv, expansion))
}

fn deploy_conv(kind: &ConvKind) -> Result<ConvKind> {
    Ok(match kind {
        ConvKind::Alf(block) => {
            let (code, expansion) = strip_block(block)?;
            ConvKind::Deployed { code, expansion }
        }
        other => other.clone(),
    })
}

/// Produces the densely-compressed deployment form of a model: every ALF
/// block is replaced by a stripped `code conv → expansion` pair; standard
/// convolutions (and BN running statistics, classifier, …) are copied
/// unchanged.
///
/// # Errors
///
/// Returns an error when a block uses `σinter ≠ none` or `BNinter`, which
/// cannot be folded into a linear conv pair (the paper's selected
/// configuration uses neither).
///
/// # Example
///
/// ```
/// use alf_core::models::plain20_alf;
/// use alf_core::{deploy, AlfBlockConfig};
///
/// # fn main() -> alf_core::Result<()> {
/// let model = plain20_alf(10, 4, AlfBlockConfig::paper_default(), 1)?;
/// let deployed = deploy::compress(&model)?;
/// assert!(deployed.name().starts_with("deployed-"));
/// # Ok(())
/// # }
/// ```
pub fn compress(model: &CnnModel) -> Result<CnnModel> {
    let mut out = model.clone();
    for unit in out.units_mut() {
        match unit {
            Unit::Conv(cu) => {
                *cu.conv_mut() = deploy_conv(cu.conv())?;
            }
            Unit::Residual(r) => {
                *r.a_mut().conv_mut() = deploy_conv(r.a().conv())?;
                *r.b_mut().conv_mut() = deploy_conv(r.b().conv())?;
            }
            Unit::Fire(f) => {
                for cu in f.conv_units_mut() {
                    *cu.conv_mut() = deploy_conv(cu.conv())?;
                }
            }
            _ => {}
        }
    }
    out.set_name(format!("deployed-{}", model.name()));
    Ok(out)
}

/// Per-layer deployment records for an input of `h × w` pixels, pairing
/// each convolution's geometry with its retained code size.
pub fn conv_report(model: &CnnModel, h: usize, w: usize) -> Vec<DeployedConvInfo> {
    model
        .conv_shapes(h, w)
        .into_iter()
        .zip(model.conv_kinds())
        .map(|(shape, kind)| DeployedConvInfo {
            shape,
            c_code: kind.c_code(),
        })
        .collect()
}

/// Aggregate deployed cost of a model at the given input resolution.
pub fn cost(model: &CnnModel, h: usize, w: usize) -> NetworkCost {
    conv_report(model, h, w)
        .iter()
        .fold(NetworkCost::default(), |acc, info| NetworkCost {
            params: acc.params + info.params(),
            macs: acc.macs + info.macs(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::AlfBlockConfig;
    use crate::models::{plain20, plain20_alf, resnet20_alf};
    use crate::schedule::PruneSchedule;
    use alf_nn::{Layer, RunCtx};

    fn pruned_model(seed: u64) -> CnnModel {
        let mut cfg = AlfBlockConfig::paper_default();
        cfg.threshold = 5e-2; // aggressive so pruning happens fast
        let mut model = plain20_alf(4, 4, cfg, seed).unwrap();
        let schedule = PruneSchedule::new(8.0, 0.9);
        for block in model.alf_blocks_mut() {
            for _ in 0..1500 {
                block.autoencoder_step(5e-3, &schedule).unwrap();
            }
        }
        model
    }

    #[test]
    fn compress_preserves_function_exactly() {
        let mut model = pruned_model(1);
        let mut deployed = compress(&model).unwrap();
        let mut rng = Rng::new(2);
        let x = Tensor::randn(&[2, 3, 16, 16], Init::Rand, &mut rng);
        let y_train_form = model.forward(&x, &mut RunCtx::eval()).unwrap();
        let y_deployed = deployed.forward(&x, &mut RunCtx::eval()).unwrap();
        assert!(
            y_deployed.allclose(&y_train_form, 1e-4),
            "deployment changed the function"
        );
    }

    #[test]
    fn compress_actually_strips_filters() {
        let model = pruned_model(3);
        // Ensure at least one block pruned something.
        assert!(model.remaining_filter_fraction() < 1.0);
        let deployed = compress(&model).unwrap();
        let infos = conv_report(&deployed, 16, 16);
        let total_code: usize = infos.iter().filter_map(|i| i.c_code).sum();
        let total_out: usize = infos.iter().map(|i| i.shape.c_out).sum();
        assert!(total_code < total_out, "{total_code} vs {total_out}");
    }

    #[test]
    fn deployed_cost_below_vanilla_when_pruned_enough() {
        let model = pruned_model(4);
        let deployed = compress(&model).unwrap();
        let vanilla = plain20(4, 4).unwrap();
        let v_cost = cost(&vanilla, 16, 16);
        let d_cost = cost(&deployed, 16, 16);
        // With heavy pruning the deployed network must be cheaper.
        if model.remaining_filter_fraction() < 0.5 {
            assert!(d_cost.macs < v_cost.macs, "{d_cost:?} vs {v_cost:?}");
        }
    }

    #[test]
    fn conv_report_flags_profitability() {
        let model = pruned_model(5);
        let deployed = compress(&model).unwrap();
        for info in conv_report(&deployed, 16, 16) {
            let c = info.c_code.unwrap();
            assert_eq!(info.is_profitable(), c <= info.shape.c_code_max());
        }
    }

    #[test]
    fn standard_convs_pass_through_unchanged() {
        let vanilla = plain20(4, 4).unwrap();
        let deployed = compress(&vanilla).unwrap();
        assert_eq!(cost(&vanilla, 16, 16), cost(&deployed, 16, 16));
        assert!(conv_report(&deployed, 16, 16)
            .iter()
            .all(|i| i.c_code.is_none()));
    }

    #[test]
    fn residual_models_deploy_too() {
        let mut cfg = AlfBlockConfig::paper_default();
        cfg.threshold = 5e-2;
        let mut model = resnet20_alf(4, 4, cfg, 6).unwrap();
        for block in model.alf_blocks_mut() {
            for _ in 0..1500 {
                block
                    .autoencoder_step(5e-3, &PruneSchedule::new(8.0, 0.9))
                    .unwrap();
            }
        }
        let mut deployed = compress(&model).unwrap();
        let mut rng = Rng::new(7);
        let x = Tensor::randn(&[1, 3, 16, 16], Init::Rand, &mut rng);
        let a = model.forward(&x, &mut RunCtx::eval()).unwrap();
        let b = deployed.forward(&x, &mut RunCtx::eval()).unwrap();
        assert!(a.allclose(&b, 1e-4));
    }

    #[test]
    fn non_identity_sigma_inter_is_rejected() {
        let mut cfg = AlfBlockConfig::paper_default();
        cfg.sigma_inter = ActivationKind::Relu;
        let model = plain20_alf(4, 4, cfg, 8).unwrap();
        assert!(compress(&model).is_err());
    }

    #[test]
    fn fully_pruned_block_keeps_one_filter() {
        let mut cfg = AlfBlockConfig::paper_default();
        cfg.threshold = 1e9; // everything clips
        let model = plain20_alf(4, 4, cfg, 9).unwrap();
        let deployed = compress(&model).unwrap();
        for info in conv_report(&deployed, 16, 16) {
            assert!(info.c_code.unwrap() >= 1);
        }
    }
}
