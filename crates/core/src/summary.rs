//! Human-readable model summaries.

use alf_nn::layer::Layer;

use crate::deploy;
use crate::model::CnnModel;
use crate::NetworkCost;

/// One row of a [`summarize`] table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSummary {
    /// Layer name.
    pub name: String,
    /// `CixHxW → CoxHxW` shape transition.
    pub shape: String,
    /// Parameters of this convolution as currently deployed.
    pub params: u64,
    /// MACs of this convolution as currently deployed.
    pub macs: u64,
    /// `Some(kept/total)` for ALF-style convolutions.
    pub alf: Option<(usize, usize)>,
}

/// Per-layer summary of a model's convolutions at the given input size,
/// plus aggregate totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSummary {
    /// Model name.
    pub model: String,
    /// Per-convolution rows in execution order.
    pub layers: Vec<LayerSummary>,
    /// Aggregate convolution cost (ALF-aware).
    pub conv_cost: NetworkCost,
    /// Total trainable parameters (all layers, task-player view).
    pub trainable_params: u64,
}

impl ModelSummary {
    /// Renders the summary as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = format!("model: {}\n", self.model);
        out.push_str(&format!(
            "{:<12} {:<22} {:>10} {:>12} {:>9}\n",
            "layer", "shape", "params", "MACs", "ALF"
        ));
        for l in &self.layers {
            let alf = match l.alf {
                Some((kept, total)) => format!("{kept}/{total}"),
                None => "—".into(),
            };
            out.push_str(&format!(
                "{:<12} {:<22} {:>10} {:>12} {:>9}\n",
                l.name, l.shape, l.params, l.macs, alf
            ));
        }
        out.push_str(&format!(
            "conv totals: {} params, {} MACs; trainable params {}\n",
            self.conv_cost.params, self.conv_cost.macs, self.trainable_params
        ));
        out
    }
}

/// Summarises a model's convolutions at `h × w` input resolution.
///
/// # Example
///
/// ```
/// use alf_core::models::plain20;
/// use alf_core::summary;
///
/// # fn main() -> alf_core::Result<()> {
/// let mut model = plain20(10, 16)?;
/// let s = summary::summarize(&mut model, 32, 32);
/// assert_eq!(s.layers.len(), 19);
/// println!("{}", s.to_text());
/// # Ok(())
/// # }
/// ```
pub fn summarize(model: &mut CnnModel, h: usize, w: usize) -> ModelSummary {
    let infos = deploy::conv_report(model, h, w);
    let layers = infos
        .iter()
        .map(|info| LayerSummary {
            name: info.shape.name.clone(),
            shape: format!(
                "{}x{}x{} → {}x{}x{}",
                info.shape.c_in,
                info.shape.h_in(),
                info.shape.w_in(),
                info.shape.c_out,
                info.shape.h_out,
                info.shape.w_out
            ),
            params: info.params(),
            macs: info.macs(),
            alf: info.c_code.map(|c| (c, info.shape.c_out)),
        })
        .collect();
    ModelSummary {
        model: model.name().to_string(),
        layers,
        conv_cost: deploy::cost(model, h, w),
        trainable_params: model.param_count() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::AlfBlockConfig;
    use crate::models::{plain20, plain20_alf};

    #[test]
    fn vanilla_summary_matches_metrics() {
        let mut model = plain20(10, 16).unwrap();
        let s = summarize(&mut model, 32, 32);
        assert_eq!(s.layers.len(), 19);
        assert_eq!(s.conv_cost.params, 267_696);
        assert!(s.layers.iter().all(|l| l.alf.is_none()));
        assert_eq!(s.layers[0].shape, "3x32x32 → 16x32x32");
        let text = s.to_text();
        assert!(text.contains("conv1"));
        assert!(text.contains("conv totals"));
    }

    #[test]
    fn alf_summary_reports_keep_counts() {
        let mut model = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 1).unwrap();
        let s = summarize(&mut model, 16, 16);
        assert!(s.layers.iter().all(|l| l.alf.is_some()));
        // Dense at init: kept == total.
        assert!(s.layers.iter().all(|l| {
            let (kept, total) = l.alf.unwrap();
            kept == total
        }));
        // Trainable params include the expansion layers, so exceed the
        // vanilla conv count scaled to this width.
        assert!(s.trainable_params > 0);
    }
}
