//! Configuration-space exploration (paper §IV-A, Fig. 2a/2b).
//!
//! Setup 1 varies the expansion layer: `[Wexp,init | σinter | BNinter]`.
//! Setup 2 varies the autoencoder: `[Wae,init | σae]` for each `σinter`.
//! In both setups the pruning mask is disabled (the paper disables it
//! explicitly in Setup 2 and tunes it only afterwards in Setup 3), so the
//! measured accuracy isolates the configuration under study.

use alf_nn::activation::ActivationKind;
use alf_tensor::init::Init;
use serde::{Deserialize, Serialize};

use crate::block::AlfBlockConfig;
use crate::models::plain20_alf;
use crate::train::{AlfHyper, AlfTrainer};
use crate::Result;

/// Shared experimental setup for the exploration runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploreSetup {
    /// Dataset seed.
    pub data_seed: u64,
    /// Square image side.
    pub image_size: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Training samples.
    pub train_size: usize,
    /// Test samples.
    pub test_size: usize,
    /// Epochs per run.
    pub epochs: usize,
    /// Independent repeats per configuration (paper: "at least twice").
    pub repeats: usize,
    /// Stem width of the Plain-20 model.
    pub width: usize,
    /// Task/AE hyper-parameters.
    pub hyper: AlfHyper,
}

impl ExploreSetup {
    /// A fast smoke-scale setup (a few seconds per configuration).
    pub fn smoke() -> Self {
        Self {
            data_seed: 11,
            image_size: 12,
            num_classes: 4,
            train_size: 128,
            test_size: 48,
            epochs: 10,
            repeats: 2,
            width: 6,
            hyper: AlfHyper {
                task_lr: 0.05,
                batch_size: 16,
                lr_schedule: alf_nn::LrSchedule::Constant,
                ..AlfHyper::default()
            },
        }
    }

    /// A paper-scale setup (minutes per configuration on a laptop): full
    /// 32×32 ten-class data and a width-16 Plain-20.
    pub fn paper() -> Self {
        Self {
            data_seed: 11,
            image_size: 32,
            num_classes: 10,
            train_size: 2000,
            test_size: 500,
            epochs: 12,
            repeats: 2,
            width: 16,
            hyper: AlfHyper::default(),
        }
    }

    fn dataset(&self) -> Result<alf_data::Dataset> {
        alf_data::SynthVision::cifar_like(self.data_seed)
            .with_image_size(self.image_size)
            .with_max_shift(if self.image_size >= 16 { 2 } else { 1 })
            .with_num_classes(self.num_classes)
            .with_train_size(self.train_size)
            .with_test_size(self.test_size)
            .build()
    }

    fn run_config(&self, label: &str, config: AlfBlockConfig) -> Result<ConfigResult> {
        let data = self.dataset()?;
        let mut accuracies = Vec::with_capacity(self.repeats);
        for rep in 0..self.repeats {
            let seed = 1000 + rep as u64 * 31;
            let model = plain20_alf(self.num_classes, self.width, config, seed)?;
            let mut trainer = AlfTrainer::new(model, self.hyper.clone(), seed)?;
            let report = trainer.run(&data, self.epochs)?;
            accuracies.push(report.final_accuracy());
        }
        Ok(ConfigResult::new(label, accuracies))
    }

    /// Runs a batch of labelled configurations, fanning them out across
    /// `crossbeam` scoped threads (each configuration trains
    /// independently). Results come back in input order.
    fn run_configs(&self, configs: Vec<(String, AlfBlockConfig)>) -> Result<Vec<ConfigResult>> {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(configs.len())
            .max(1);
        let chunk = configs.len().div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for group in configs.chunks(chunk) {
                handles.push(scope.spawn(move |_| -> Result<Vec<ConfigResult>> {
                    group
                        .iter()
                        .map(|(label, config)| self.run_config(label, *config))
                        .collect()
                }));
            }
            let mut out = Vec::with_capacity(configs.len());
            for h in handles {
                out.extend(h.join().expect("exploration thread panicked")?);
            }
            Ok(out)
        })
        .expect("exploration scope panicked")
    }
}

/// Accuracy of one explored configuration across repeats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigResult {
    /// Configuration label in the paper's bar notation, e.g.
    /// `xavier|relu|bn`.
    pub label: String,
    /// Final test accuracy of each repeat.
    pub accuracies: Vec<f32>,
}

impl ConfigResult {
    /// Creates a result.
    pub fn new(label: impl Into<String>, accuracies: Vec<f32>) -> Self {
        Self {
            label: label.into(),
            accuracies,
        }
    }

    /// Mean accuracy across repeats.
    pub fn mean(&self) -> f32 {
        if self.accuracies.is_empty() {
            return 0.0;
        }
        self.accuracies.iter().sum::<f32>() / self.accuracies.len() as f32
    }

    /// Min–max spread across repeats (the paper's bar stretching).
    pub fn spread(&self) -> (f32, f32) {
        let lo = self
            .accuracies
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min);
        let hi = self
            .accuracies
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        (lo, hi)
    }
}

/// One variant of the Setup 3 sweep (Fig. 2c): an autoencoder learning
/// rate / clip threshold pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruneVariant {
    /// Display label (e.g. `lr=1e-3,t=1e-4`).
    pub label: String,
    /// Autoencoder learning rate `lrae`.
    pub ae_lr: f32,
    /// Mask clip threshold `t`.
    pub threshold: f32,
}

impl PruneVariant {
    /// Creates a variant with the conventional label.
    pub fn new(ae_lr: f32, threshold: f32) -> Self {
        Self {
            label: format!("lr={ae_lr:.0e},t={threshold:.0e}"),
            ae_lr,
            threshold,
        }
    }
}

/// Per-variant outcome of the Setup 3 sweep: the full per-epoch series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruneSweepResult {
    /// Variant label.
    pub label: String,
    /// Per-epoch statistics (remaining filters, accuracy, losses).
    pub epochs: Vec<crate::train::EpochStats>,
}

impl PruneSweepResult {
    /// Final remaining-filter fraction.
    pub fn final_remaining(&self) -> f32 {
        self.epochs.last().map_or(1.0, |e| e.remaining_filters)
    }

    /// Final test accuracy.
    pub fn final_accuracy(&self) -> f32 {
        self.epochs.last().map_or(0.0, |e| e.test_accuracy)
    }
}

/// Setup 3 (Fig. 2c): trains one ALF Plain-20 per `(lrae, t)` variant with
/// the pruning mask *enabled* and records the remaining-filters/accuracy
/// trajectory over epochs.
///
/// # Errors
///
/// Propagates model/training shape errors.
pub fn prune_sweep(
    setup: &ExploreSetup,
    variants: &[PruneVariant],
) -> Result<Vec<PruneSweepResult>> {
    let data = setup.dataset()?;
    let mut out = Vec::with_capacity(variants.len());
    for variant in variants {
        let config = AlfBlockConfig {
            threshold: variant.threshold,
            ..AlfBlockConfig::paper_default()
        };
        let mut hyper = setup.hyper.clone();
        hyper.ae_lr = variant.ae_lr;
        let model = plain20_alf(setup.num_classes, setup.width, config, 1000)?;
        let mut trainer = crate::train::AlfTrainer::new(model, hyper, 1000)?;
        let report = trainer.run(&data, setup.epochs)?;
        out.push(PruneSweepResult {
            label: variant.label.clone(),
            epochs: report.epochs,
        });
    }
    Ok(out)
}

/// Setup 1 (Fig. 2a): explores `[Wexp,init | σinter | BNinter]` over the
/// paper's six configurations.
///
/// # Errors
///
/// Propagates model/training shape errors.
pub fn explore_expansion(setup: &ExploreSetup) -> Result<Vec<ConfigResult>> {
    let combos: [(Init, ActivationKind, bool); 6] = [
        (Init::He, ActivationKind::Identity, false),
        (Init::Xavier, ActivationKind::Identity, false),
        (Init::He, ActivationKind::Relu, false),
        (Init::Xavier, ActivationKind::Relu, false),
        (Init::He, ActivationKind::Relu, true),
        (Init::Xavier, ActivationKind::Relu, true),
    ];
    let configs: Vec<(String, AlfBlockConfig)> = combos
        .into_iter()
        .map(|(exp_init, sigma_inter, inter_bn)| {
            let config = AlfBlockConfig {
                exp_init,
                sigma_inter,
                inter_bn,
                mask_enabled: false,
                ..AlfBlockConfig::paper_default()
            };
            let label = format!(
                "{}|{}|{}",
                exp_init.label(),
                if sigma_inter == ActivationKind::Identity {
                    "nc"
                } else {
                    sigma_inter.label()
                },
                if inter_bn { "bn" } else { "nc" }
            );
            (label, config)
        })
        .collect();
    setup.run_configs(configs)
}

/// Setup 2 (Fig. 2b): explores `[Wae,init | σae]` for a given `σinter`
/// (the paper plots both `σinter = none` and `σinter = ReLU` series).
///
/// # Errors
///
/// Propagates model/training shape errors.
pub fn explore_autoencoder(
    setup: &ExploreSetup,
    sigma_inter: ActivationKind,
) -> Result<Vec<ConfigResult>> {
    let mut configs = Vec::new();
    for sigma_ae in [
        ActivationKind::Tanh,
        ActivationKind::Sigmoid,
        ActivationKind::Relu,
    ] {
        for ae_init in [Init::Rand, Init::He, Init::Xavier] {
            let config = AlfBlockConfig {
                ae_init,
                sigma_ae,
                sigma_inter,
                mask_enabled: false,
                ..AlfBlockConfig::paper_default()
            };
            configs.push((format!("{}|{}", ae_init.label(), sigma_ae.label()), config));
        }
    }
    setup.run_configs(configs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_result_statistics() {
        let r = ConfigResult::new("x", vec![0.8, 0.9]);
        assert!((r.mean() - 0.85).abs() < 1e-6);
        assert_eq!(r.spread(), (0.8, 0.9));
        assert_eq!(ConfigResult::new("e", vec![]).mean(), 0.0);
    }

    #[test]
    fn expansion_exploration_produces_six_labeled_configs() {
        let mut setup = ExploreSetup::smoke();
        setup.epochs = 1;
        setup.repeats = 1;
        setup.train_size = 32;
        setup.test_size = 16;
        let results = explore_expansion(&setup).unwrap();
        assert_eq!(results.len(), 6);
        assert_eq!(results[0].label, "he|nc|nc");
        assert_eq!(results[5].label, "xavier|relu|bn");
        for r in &results {
            assert_eq!(r.accuracies.len(), 1);
            assert!((0.0..=1.0).contains(&r.accuracies[0]));
        }
    }

    #[test]
    fn prune_sweep_records_full_series() {
        let mut setup = ExploreSetup::smoke();
        setup.epochs = 2;
        setup.train_size = 32;
        setup.test_size = 16;
        setup.hyper.ae_steps_per_batch = 4;
        let variants = [PruneVariant::new(5e-2, 2e-2), PruneVariant::new(1e-3, 2e-2)];
        let results = prune_sweep(&setup, &variants).unwrap();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.epochs.len(), 2);
            assert!((0.0..=1.0).contains(&r.final_remaining()));
            assert!((0.0..=1.0).contains(&r.final_accuracy()));
        }
        assert_eq!(results[0].label, "lr=5e-2,t=2e-2");
    }

    #[test]
    fn autoencoder_exploration_produces_nine_configs() {
        let mut setup = ExploreSetup::smoke();
        setup.epochs = 1;
        setup.repeats = 1;
        setup.train_size = 32;
        setup.test_size = 16;
        let results = explore_autoencoder(&setup, ActivationKind::Identity).unwrap();
        assert_eq!(results.len(), 9);
        assert_eq!(results[0].label, "rand|tanh");
        assert_eq!(results[8].label, "xavier|relu");
    }
}
