//! Fused int8 inference form of a deployed model.
//!
//! A [`QuantizedModel`] is built from a *folded* deployment model — one
//! whose batch-norm layers have already been absorbed into conv weights
//! and biases by `deploy::Pipeline` — plus a small calibration batch.
//! Weights are symmetric per-tensor int8 (via [`Quantizer`]), activations
//! are symmetric int8 with scales fitted to the calibration activations,
//! and every convolution runs as an `i8×i8→i32` blocked GEMM
//! (`alf_tensor::ops::gemm_i8_into`) with exact i32 accumulation.
//!
//! Requantization happens on store: the i32 accumulator is mapped back to
//! real units with `acc · s_in · s_w`, the (f32) bias is added, the ReLU
//! applied, and the result is rounded into the next layer's i8 grid at
//! `s_out`. Max-pooling commutes with any monotonic quantizer, so it runs
//! directly on the i8 feature maps. The network tail (global average pool
//! and classifier) stays in f32 — it is a vanishing fraction of the MACs
//! and quantizing the logits would only cost accuracy.

use std::time::Instant;

use alf_nn::activation::ActivationKind;
use alf_nn::conv::Conv2d;
use alf_nn::linear::Linear;
use alf_nn::pool::GlobalAvgPool;
use alf_nn::{Layer, RunCtx};
use alf_tensor::ops::{gemm_i8_into, im2col_i8_into, Conv2dSpec, Workspace};
use alf_tensor::{ShapeError, Tensor};

use crate::model::{CnnModel, ConvKind, Unit};
use crate::quant::{QuantError, QuantReport, Quantizer};

/// One int8 convolution stage: quantized weights plus the scales that tie
/// its integer arithmetic back to real units.
#[derive(Debug, Clone)]
struct QConv {
    /// Stage name (`convXYZ`, or `convXYZ/code` / `convXYZ/expand` for a
    /// deployed ALF pair).
    name: String,
    /// Owning `ConvUnit` name — the key per-layer timings aggregate under.
    unit: String,
    /// Row-major `[c_out, c_in·k·k]` int8 weights.
    weight: Vec<i8>,
    /// Weight scale `s_w`.
    w_scale: f32,
    /// Full-precision bias, one per output channel (zeros when absent).
    bias: Vec<f32>,
    spec: Conv2dSpec,
    c_in: usize,
    c_out: usize,
    /// Apply ReLU before requantizing the output.
    relu: bool,
    /// Input activation scale `s_in`.
    in_scale: f32,
    /// Output activation scale `s_out`.
    out_scale: f32,
}

/// One stage of the int8 pipeline.
#[derive(Debug, Clone)]
enum QStage {
    Conv(QConv),
    MaxPool { window: usize },
}

/// Public per-conv summary (scales and geometry) for provenance reports.
#[derive(Debug, Clone, PartialEq)]
pub struct QConvInfo {
    /// Stage name (unit name, with `/code` / `/expand` for ALF pairs).
    pub name: String,
    /// Owning `ConvUnit` name.
    pub unit: String,
    /// Weight scale `s_w`.
    pub w_scale: f32,
    /// Input activation scale `s_in`.
    pub in_scale: f32,
    /// Output activation scale `s_out`.
    pub out_scale: f32,
    /// Output channels.
    pub c_out: usize,
}

/// A deployed model lowered to fused int8 execution.
///
/// Construct via [`QuantizedModel::from_folded`] (normally through
/// `deploy::Pipeline::quantize`). `forward` takes ordinary f32 `NCHW`
/// input, quantizes it once at the calibrated input scale, runs the conv
/// stack entirely in int8, and returns f32 logits from the f32 tail.
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    name: String,
    stages: Vec<QStage>,
    /// Network input activation scale.
    in_scale: f32,
    global_pool: GlobalAvgPool,
    classifier: Linear,
    num_classes: usize,
    ws: Workspace,
    /// Ping-pong i8 activation buffers (kept across calls so the steady
    /// state is allocation-free).
    act_a: Vec<i8>,
    act_b: Vec<i8>,
    /// Wall-clock nanoseconds per `ConvUnit` for the most recent forward,
    /// in network order (deployed code/expand pairs are merged).
    layer_times_ns: Vec<(String, u64)>,
}

fn fit_scale(t: &Tensor) -> Result<f32, QuantError> {
    Ok(Quantizer::fit(t, 8)?.scale)
}

/// Maps one i32 accumulator back to the next layer's i8 grid: dequantize
/// (`acc · s_in · s_w`), add bias, optional ReLU, then round into `s_out`
/// steps. The rounding is the branch-predictable `+±0.5`-then-truncate
/// form of round-half-away-from-zero — identical to `f32::round` on every
/// input, but vectorizable (no libm call in the hot store loop).
#[inline(always)]
fn requantize(acc: i32, deq: f32, bias: f32, relu: bool, inv_out: f32) -> i8 {
    let mut v = acc as f32 * deq + bias;
    if relu {
        v = v.max(0.0);
    }
    let r = v * inv_out;
    let half = if r >= 0.0 { 0.5 } else { -0.5 };
    (r + half).clamp(-127.0, 127.0) as i8
}

fn relu_inplace(t: &mut Tensor) {
    for v in t.data_mut() {
        *v = v.max(0.0);
    }
}

/// Quantizes a conv weight `[co, ci, k, k]` to int8 rows, returning the
/// i8 buffer, the scale, and the worst round-trip error.
fn quantize_weight(w: &Tensor) -> Result<(Vec<i8>, f32, f32), QuantError> {
    let q = Quantizer::fit(w, 8)?;
    let mut out = Vec::with_capacity(w.len());
    let mut err = 0.0f32;
    for &v in w.data() {
        let qv = q.quantize(v);
        err = err.max((q.dequantize(qv) - v).abs());
        out.push(qv as i8);
    }
    Ok((out, q.scale, err))
}

struct Builder {
    stages: Vec<QStage>,
    report: QuantReport,
    /// f32 activation flowing through the calibration simulation.
    act: Tensor,
}

impl Builder {
    /// Lowers one (conv, bias, relu) triple: quantizes the weight, runs
    /// the f32 calibration step, and fits the output activation scale.
    fn push_conv(
        &mut self,
        name: String,
        unit: &str,
        conv: &Conv2d,
        relu: bool,
        in_scale: f32,
    ) -> Result<f32, QuantError> {
        let (weight, w_scale, err) = quantize_weight(conv.weight())?;
        self.report.tensors += 1;
        self.report.scalars += conv.weight().len() as u64;
        self.report.max_abs_error = self.report.max_abs_error.max(err);
        let bias = match conv.bias() {
            Some(b) => b.data().to_vec(),
            None => vec![0.0; conv.c_out()],
        };
        let mut sim = conv.clone();
        let mut h =
            sim.forward(&self.act, &mut RunCtx::eval())
                .map_err(|e| QuantError::Unsupported {
                    what: format!("calibration forward of '{name}' failed: {e}"),
                })?;
        if relu {
            relu_inplace(&mut h);
        }
        let out_scale = fit_scale(&h)?;
        self.stages.push(QStage::Conv(QConv {
            name,
            unit: unit.to_string(),
            weight,
            w_scale,
            bias,
            spec: conv.spec(),
            c_in: conv.c_in(),
            c_out: conv.c_out(),
            relu,
            in_scale,
            out_scale,
        }));
        self.act = h;
        Ok(out_scale)
    }
}

impl QuantizedModel {
    /// Lowers a folded deployment model to int8, calibrating activation
    /// scales on `calib` (an `NCHW` batch of representative inputs).
    ///
    /// # Errors
    ///
    /// [`QuantError::EmptyCalibration`] for an empty calibration batch;
    /// [`QuantError::Unsupported`] for model forms outside the int8
    /// engine's reach — a remaining batch-norm layer (fold first), a
    /// training-form ALF block (deploy first), residual or fire units,
    /// or a non-ReLU activation; [`QuantError::NonFinite`] when a weight
    /// or calibration activation holds a NaN or infinity.
    ///
    /// Returns the model together with the weight-quantization report.
    pub fn from_folded(
        model: &CnnModel,
        calib: &Tensor,
    ) -> Result<(Self, QuantReport), QuantError> {
        if calib.shape().rank() != 4 || calib.dims()[0] == 0 {
            return Err(QuantError::EmptyCalibration {
                layer: "input".into(),
            });
        }
        let in_scale = fit_scale(calib)?;
        let mut b = Builder {
            stages: Vec::new(),
            report: QuantReport {
                bits: 8,
                tensors: 0,
                scalars: 0,
                max_abs_error: 0.0,
            },
            act: calib.clone(),
        };
        let mut scale = in_scale;
        let mut global_pool: Option<GlobalAvgPool> = None;
        let mut classifier: Option<Linear> = None;
        for unit in model.units() {
            if classifier.is_some()
                || (global_pool.is_some() && !matches!(unit, Unit::Classifier(_)))
            {
                return Err(QuantError::Unsupported {
                    what: "units after the global-pool/classifier tail".into(),
                });
            }
            match unit {
                Unit::Conv(cu) => {
                    if cu.bn().is_some() {
                        return Err(QuantError::Unsupported {
                            what: format!("un-folded batch-norm in '{}' (fold first)", cu.name()),
                        });
                    }
                    let relu = match cu.activation() {
                        None => false,
                        Some(ActivationKind::Relu) => true,
                        Some(other) => {
                            return Err(QuantError::Unsupported {
                                what: format!("activation {other:?} in '{}'", cu.name()),
                            })
                        }
                    };
                    match cu.conv() {
                        ConvKind::Standard(c) => {
                            scale = b.push_conv(cu.name().into(), cu.name(), c, relu, scale)?;
                        }
                        ConvKind::Deployed { code, expansion } => {
                            scale = b.push_conv(
                                format!("{}/code", cu.name()),
                                cu.name(),
                                code,
                                false,
                                scale,
                            )?;
                            scale = b.push_conv(
                                format!("{}/expand", cu.name()),
                                cu.name(),
                                expansion,
                                relu,
                                scale,
                            )?;
                        }
                        ConvKind::Alf(_) => {
                            return Err(QuantError::Unsupported {
                                what: format!(
                                    "training-form ALF block in '{}' (deploy first)",
                                    cu.name()
                                ),
                            })
                        }
                    }
                }
                Unit::MaxPool(mp) => {
                    b.stages.push(QStage::MaxPool {
                        window: mp.window(),
                    });
                    let mut sim = mp.clone();
                    b.act = sim.forward(&b.act, &mut RunCtx::eval()).map_err(|e| {
                        QuantError::Unsupported {
                            what: format!("calibration forward of maxpool failed: {e}"),
                        }
                    })?;
                    // Max-pool is monotonic: the input grid is the output
                    // grid, so `scale` carries through unchanged.
                }
                Unit::GlobalPool(gp) => global_pool = Some(gp.clone()),
                Unit::Classifier(fc) => classifier = Some(fc.clone()),
                Unit::Residual(_) => {
                    return Err(QuantError::Unsupported {
                        what: "residual units (int8 engine covers plain conv stacks)".into(),
                    })
                }
                Unit::Fire(_) => {
                    return Err(QuantError::Unsupported {
                        what: "fire units (int8 engine covers plain conv stacks)".into(),
                    })
                }
            }
        }
        let (Some(global_pool), Some(classifier)) = (global_pool, classifier) else {
            return Err(QuantError::Unsupported {
                what: "model without a global-pool → classifier tail".into(),
            });
        };
        let report = b.report.clone();
        Ok((
            Self {
                name: format!("int8-{}", model.name()),
                stages: b.stages,
                in_scale,
                global_pool,
                classifier,
                num_classes: model.num_classes(),
                ws: Workspace::new(),
                act_a: Vec::new(),
                act_b: Vec::new(),
                layer_times_ns: Vec::new(),
            },
            report,
        ))
    }

    /// Model name (`int8-<deployed name>`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Network input activation scale.
    pub fn input_scale(&self) -> f32 {
        self.in_scale
    }

    /// Per-conv scales and geometry, in execution order.
    pub fn conv_info(&self) -> Vec<QConvInfo> {
        self.stages
            .iter()
            .filter_map(|s| match s {
                QStage::Conv(c) => Some(QConvInfo {
                    name: c.name.clone(),
                    unit: c.unit.clone(),
                    w_scale: c.w_scale,
                    in_scale: c.in_scale,
                    out_scale: c.out_scale,
                    c_out: c.c_out,
                }),
                QStage::MaxPool { .. } => None,
            })
            .collect()
    }

    /// Wall-clock nanoseconds per `ConvUnit` for the most recent
    /// [`forward`](Self::forward), in network order. A deployed code →
    /// expansion pair reports as one entry under the unit's name.
    pub fn layer_times_ns(&self) -> &[(String, u64)] {
        &self.layer_times_ns
    }

    /// Runs the int8 pipeline on an f32 `NCHW` batch, returning f32
    /// logits `[n, classes]`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the input is not an `NCHW` batch
    /// matching the first conv's input channels, or when the spatial
    /// geometry collapses below a stage's window.
    pub fn forward(&mut self, x: &Tensor) -> crate::Result<Tensor> {
        let dims = x.dims();
        if dims.len() != 4 {
            return Err(ShapeError::new(
                "qmodel",
                format!("expected NCHW input, got {}", x.shape()),
            ));
        }
        let (n, mut c, mut h, mut w) = (dims[0], dims[1], dims[2], dims[3]);
        self.layer_times_ns.clear();
        // Quantize the input once at the calibrated scale.
        let q_in = Quantizer {
            bits: 8,
            scale: self.in_scale,
        };
        let mut cur = std::mem::take(&mut self.act_a);
        cur.clear();
        cur.extend(x.data().iter().map(|&v| q_in.quantize(v) as i8));
        let mut nxt = std::mem::take(&mut self.act_b);

        let mut stages = std::mem::take(&mut self.stages);
        let mut result = Ok(());
        for stage in &stages {
            let t0 = Instant::now();
            match stage {
                QStage::Conv(conv) => {
                    if conv.c_in != c {
                        result = Err(ShapeError::new(
                            "qmodel",
                            format!(
                                "stage '{}' expects {} channels, got {c}",
                                conv.name, conv.c_in
                            ),
                        ));
                        break;
                    }
                    let (ho, wo) = conv.spec.output_hw(h, w);
                    let deq = conv.in_scale * conv.w_scale;
                    let inv_out = 1.0 / conv.out_scale;
                    let plane = ho * wo;
                    nxt.resize(n * conv.c_out * plane, 0);
                    if conv.spec.kernel == 1 && conv.spec.stride == 1 && conv.spec.pad == 0 {
                        // 1×1 fast path (every deployed expansion conv):
                        // each image's NCHW slab already *is* the `[ci,
                        // h·w]` B matrix, so the per-image GEMM needs no
                        // im2col, and its `[co, h·w]` product is the
                        // image's NCHW output — requantize writes
                        // straight through.
                        let mut acc = self.ws.take_i32("qm_acc1", conv.c_out * plane);
                        for b in 0..n {
                            let src = &cur[b * c * plane..(b + 1) * c * plane];
                            gemm_i8_into(
                                &mut acc,
                                &conv.weight,
                                src,
                                conv.c_out,
                                c,
                                plane,
                                &mut self.ws,
                            );
                            let dst =
                                &mut nxt[b * conv.c_out * plane..(b + 1) * conv.c_out * plane];
                            for (co, (arow, drow)) in acc
                                .chunks_exact(plane)
                                .zip(dst.chunks_exact_mut(plane))
                                .enumerate()
                            {
                                let bias = conv.bias[co];
                                for (o, &a) in drow.iter_mut().zip(arow) {
                                    *o = requantize(a, deq, bias, conv.relu, inv_out);
                                }
                            }
                        }
                        self.ws.give_i32("qm_acc1", acc);
                    } else {
                        let kk = conv.spec.kernel * conv.spec.kernel;
                        let (rows, cols) = (c * kk, n * ho * wo);
                        let mut colbuf = self.ws.take_i8("qm_cols", rows * cols);
                        im2col_i8_into(&mut colbuf, &cur, n, c, h, w, conv.spec);
                        let mut acc = self.ws.take_i32("qm_acc", conv.c_out * cols);
                        gemm_i8_into(
                            &mut acc,
                            &conv.weight,
                            &colbuf,
                            conv.c_out,
                            rows,
                            cols,
                            &mut self.ws,
                        );
                        self.ws.give_i8("qm_cols", colbuf);
                        // Requantize on store, rearranging [co, n·ho·wo]
                        // into NCHW as we go.
                        for co in 0..conv.c_out {
                            let row = &acc[co * cols..(co + 1) * cols];
                            let bias = conv.bias[co];
                            for b in 0..n {
                                let src = &row[b * plane..(b + 1) * plane];
                                let dst = &mut nxt[(b * conv.c_out + co) * plane
                                    ..(b * conv.c_out + co + 1) * plane];
                                for (o, &a) in dst.iter_mut().zip(src) {
                                    *o = requantize(a, deq, bias, conv.relu, inv_out);
                                }
                            }
                        }
                        self.ws.give_i32("qm_acc", acc);
                    }
                    std::mem::swap(&mut cur, &mut nxt);
                    (c, h, w) = (conv.c_out, ho, wo);
                    match self.layer_times_ns.last_mut() {
                        Some((unit, ns)) if *unit == conv.unit => {
                            *ns += t0.elapsed().as_nanos() as u64;
                        }
                        _ => self
                            .layer_times_ns
                            .push((conv.unit.clone(), t0.elapsed().as_nanos() as u64)),
                    }
                }
                QStage::MaxPool { window } => {
                    let k = *window;
                    if h < k || w < k {
                        result = Err(ShapeError::new(
                            "qmodel",
                            format!("input {h}x{w} smaller than pool window {k}"),
                        ));
                        break;
                    }
                    let (ho, wo) = (h / k, w / k);
                    nxt.resize(n * c * ho * wo, 0);
                    for bc in 0..n * c {
                        let src = &cur[bc * h * w..(bc + 1) * h * w];
                        let dst = &mut nxt[bc * ho * wo..(bc + 1) * ho * wo];
                        for oy in 0..ho {
                            for ox in 0..wo {
                                let mut best = i8::MIN;
                                for dy in 0..k {
                                    for dx in 0..k {
                                        best = best.max(src[(oy * k + dy) * w + ox * k + dx]);
                                    }
                                }
                                dst[oy * wo + ox] = best;
                            }
                        }
                    }
                    std::mem::swap(&mut cur, &mut nxt);
                    (h, w) = (ho, wo);
                }
            }
        }
        self.stages = std::mem::take(&mut stages);
        let last_scale = self
            .stages
            .iter()
            .rev()
            .find_map(|s| match s {
                QStage::Conv(cv) => Some(cv.out_scale),
                QStage::MaxPool { .. } => None,
            })
            .unwrap_or(self.in_scale);
        self.act_a = cur;
        self.act_b = nxt;
        result?;
        // Dequantize once for the f32 tail.
        let feat = Tensor::from_vec(
            self.act_a.iter().map(|&q| q as f32 * last_scale).collect(),
            &[n, c, h, w],
        )?;
        let mut ctx = RunCtx::eval();
        let pooled = self.global_pool.forward(&feat, &mut ctx)?;
        self.classifier.forward(&pooled, &mut ctx)
    }

    /// Top-1 class predictions for a batch (convenience over `forward`).
    ///
    /// # Errors
    ///
    /// Propagates [`forward`](Self::forward) errors.
    pub fn predict(&mut self, x: &Tensor) -> crate::Result<Vec<usize>> {
        let logits = self.forward(x)?;
        let classes = self.num_classes;
        Ok(logits
            .data()
            .chunks_exact(classes)
            .map(|row| {
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect())
    }

    /// Deployed int8 weight bytes (scales stored as one f32 per tensor).
    pub fn weight_bytes(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| match s {
                QStage::Conv(c) => c.weight.len() as u64 + 4,
                QStage::MaxPool { .. } => 0,
            })
            .sum()
    }
}
