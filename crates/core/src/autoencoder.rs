//! The sparse weight autoencoder of the ALF block (paper §III-A).
//!
//! For a convolution with weights `W ∈ R^{Co×Ci×K×K}` (flattened per filter
//! to a matrix `Wmat ∈ R^{Co×F}`, `F = Ci·K²`) the autoencoder computes
//!
//! ```text
//! W̃code = Wencᵀ · Wmat              (encoder mixes the Co filters)
//! Wcode  = σae(W̃code ⊙ Mprune)      (mask gates code filters, Eq. 3)
//! Wrec   = σae(Wdecᵀ · Wcode)       (decoder reconstructs, Eq. 4)
//! ```
//!
//! with `Mprune = Clip(M, t) = 1{|m| > t}·m` applied row-wise. Training
//! minimises `Lae = Lrec + νprune·Lprune` where `Lrec = MSE(Wmat, Wrec)`
//! and `Lprune = 1/Co·Σ|m|`; the clip is bypassed with the straight-through
//! estimator when differentiating w.r.t. `M` (Eq. 6).
//!
//! `Ccode` starts at `Co`; compression materialises at deployment when the
//! zero code filters are stripped (see [`crate::deploy`]), or mid-training
//! through [`WeightAutoencoder::compact`], which physically drops code
//! channels whose mask entries are clipped so `Ccode < Co` for the rest of
//! the run. [`WeightAutoencoder::kept_channels`] records which of the
//! original `Co` code channels each current row corresponds to.
//!
//! # Sparsity-aware step
//!
//! Once the mask prunes channels, the corresponding rows of `Wcode` are
//! exactly zero whenever `σae(0) == 0` (tanh / ReLU / identity — not
//! sigmoid). [`WeightAutoencoder::step_in`] then skips those rows in the
//! two reconstruction GEMMs: the decode `Wdecᵀ·Wcode` elides the dead `k`
//! slices and the decoder gradient `Wcode·gYᵀ` elides the dead rows. Both
//! elisions are bitwise-invisible (see `alf_tensor::ops::gemm`), so the
//! sparse and dense paths produce identical parameters. The encoder-side
//! GEMMs are *not* skipped: the mask gradient (Eq. 6's STE) needs `Z` and
//! `g_code` on clipped rows so those channels can recover.

use alf_nn::activation::ActivationKind;
use alf_nn::ste;
use alf_tensor::init::Init;
use alf_tensor::ops::{
    auto_threads, gemm_active_k_into, gemm_active_rows_into, matmul, matmul_at, matmul_at_ws,
    matmul_bt_ws, matmul_ws, with_thread_workspace, ActiveRows, Workspace,
};
use alf_tensor::rng::Rng;
use alf_tensor::{ShapeError, Tensor};

use crate::Result;

/// Statistics of one autoencoder optimisation step.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AeStats {
    /// Reconstruction loss `Lrec = MSE(W, Wrec)`.
    pub l_rec: f32,
    /// Mask regulariser `Lprune = 1/Co·Σ|m|`.
    pub l_prune: f32,
    /// Pressure weight `νprune` used for this step.
    pub nu_prune: f32,
    /// Zero fraction `θ` of the mask *after* the step.
    pub zero_fraction: f32,
}

/// Sparse autoencoder over a convolution's filter bank.
///
/// # Example
///
/// ```
/// use alf_core::WeightAutoencoder;
/// use alf_nn::activation::ActivationKind;
/// use alf_tensor::{init::Init, rng::Rng, Tensor};
///
/// # fn main() -> alf_core::Result<()> {
/// let mut rng = Rng::new(0);
/// let ae = WeightAutoencoder::new(3, 8, 3, Init::Xavier, ActivationKind::Tanh, 1e-4, &mut rng);
/// let w = Tensor::randn(&[8, 3, 3, 3], Init::He, &mut rng);
/// let code = ae.code(&w)?;
/// assert_eq!(code.dims(), w.dims()); // Ccode = Co during training
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WeightAutoencoder {
    enc: Tensor,  // [Co, Ccode]
    dec: Tensor,  // [Ccode, Co]
    mask: Tensor, // [Ccode]
    threshold: f32,
    sigma: ActivationKind,
    mask_enabled: bool,
    c_out: usize,
    c_code: usize,
    // kept[i] = index in the ORIGINAL Co-channel code space of current code
    // row i. Identity until `compact` removes channels; the block's STE uses
    // it to keep routing each code row's gradient onto the same raw filter
    // it mapped to before compaction.
    kept: Vec<usize>,
    // Opt-out for the sparse GEMM paths in `step_in` (A/B comparisons and
    // the dense reference in benches). Never affects results — only whether
    // zero rows are elided or multiplied.
    sparse_exec: bool,
    fan: usize, // F = Ci·K²
}

impl WeightAutoencoder {
    /// Creates an autoencoder for a `[c_out, c_in, kernel, kernel]` weight.
    ///
    /// `Ccode` starts equal to `c_out` (paper §III-C); the mask `M` is
    /// initialised to ones so every filter is initially active.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero or `threshold` is negative.
    pub fn new(
        c_in: usize,
        c_out: usize,
        kernel: usize,
        init: Init,
        sigma: ActivationKind,
        threshold: f32,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            c_in > 0 && c_out > 0 && kernel > 0,
            "zero-sized autoencoder"
        );
        assert!(threshold >= 0.0, "negative clip threshold");
        Self {
            enc: Tensor::randn(&[c_out, c_out], init, rng),
            dec: Tensor::randn(&[c_out, c_out], init, rng),
            mask: Tensor::ones(&[c_out]),
            threshold,
            sigma,
            mask_enabled: true,
            c_out,
            c_code: c_out,
            kept: (0..c_out).collect(),
            sparse_exec: true,
            fan: c_in * kernel * kernel,
        }
    }

    /// Disables the pruning mask (the paper's Setup 2, Fig. 2b): the code
    /// is `σae(Wencᵀ·W)` with no gating, so no filters are ever pruned.
    pub fn without_mask(mut self) -> Self {
        self.mask_enabled = false;
        self
    }

    /// The clip threshold `t`.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The autoencoder activation `σae`.
    pub fn sigma(&self) -> ActivationKind {
        self.sigma
    }

    /// Whether the pruning mask is active.
    pub fn mask_enabled(&self) -> bool {
        self.mask_enabled
    }

    /// Current code channel count `Ccode` (equals `Co` until
    /// [`WeightAutoencoder::compact`] removes channels).
    pub fn c_code(&self) -> usize {
        self.c_code
    }

    /// Output channel count `Co` of the wrapped convolution.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// For each current code row, the index of the original code channel it
    /// corresponds to (identity before any compaction).
    pub fn kept_channels(&self) -> &[usize] {
        &self.kept
    }

    /// Enables or disables the zero-row elision in [`Self::step_in`].
    /// Purely a performance switch — results are bitwise identical either
    /// way.
    pub fn set_sparse_exec(&mut self, on: bool) {
        self.sparse_exec = on;
    }

    /// Whether the sparse step paths may legally engage: requires the mask
    /// (clipped entries are what zeroes code rows) and `σae(0) == 0`, since
    /// a pruned channel's code row is `σae(z·0)` elementwise — exactly zero
    /// for tanh/ReLU/identity but `0.5` for sigmoid, where eliding it would
    /// change results.
    pub fn sparse_eligible(&self) -> bool {
        self.sparse_exec && self.mask_enabled && self.sigma.apply(0.0) == 0.0
    }

    /// Raw mask values `M`.
    pub fn mask(&self) -> &Tensor {
        &self.mask
    }

    /// Overwrites one mask entry — useful for experiments that force a
    /// channel into (or out of) the clip dead-zone.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn set_mask_value(&mut self, channel: usize, value: f32) {
        self.mask.data_mut()[channel] = value;
    }

    /// Visits the autoencoder's persistent state (`Wenc`, `Wdec`, `M`) in
    /// a stable order — the checkpointing hook.
    pub fn visit_state(&mut self, visitor: &mut dyn FnMut(&mut Tensor)) {
        visitor(&mut self.enc);
        visitor(&mut self.dec);
        visitor(&mut self.mask);
    }

    /// Read-only counterpart of [`WeightAutoencoder::visit_state`] — same
    /// tensors, same order, through `&self`.
    pub fn visit_state_ref(&self, visitor: &mut dyn FnMut(&Tensor)) {
        visitor(&self.enc);
        visitor(&self.dec);
        visitor(&self.mask);
    }

    /// Clipped mask `Mprune = 1{|m| > t}·m` (all-ones when the mask is
    /// disabled). Length `Ccode`.
    pub fn pruned_mask(&self) -> Tensor {
        if self.mask_enabled {
            ste::clip_tensor(&self.mask, self.threshold)
        } else {
            Tensor::ones(&[self.c_code])
        }
    }

    /// Zero fraction `θ = Ccode,zero / Co` of the clipped mask, counted
    /// against the *original* channel budget: channels physically removed
    /// by [`Self::compact`] stay in the numerator, so θ is continuous
    /// across a compaction and the prune schedule sees the same pressure
    /// signal either way.
    pub fn zero_fraction(&self) -> f32 {
        let removed = self.c_out - self.c_code;
        if self.mask_enabled {
            let clipped = self
                .mask
                .data()
                .iter()
                .filter(|m| m.abs() <= self.threshold)
                .count();
            (removed + clipped) as f32 / self.c_out as f32
        } else {
            removed as f32 / self.c_out as f32
        }
    }

    /// Indices of code filters that survive the clip (the channels kept at
    /// deployment), relative to the *current* `Ccode` rows.
    pub fn active_channels(&self) -> Vec<usize> {
        let pm = self.pruned_mask();
        pm.data()
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| (m != 0.0).then_some(i))
            .collect()
    }

    /// [`ActiveRows`] descriptor over the current `Ccode` code rows — the
    /// object the block caches and the GEMM entry points consume. All-rows
    /// when the mask is disabled.
    pub fn active_rows(&self) -> ActiveRows {
        if self.mask_enabled {
            ActiveRows::from_clipped_mask(self.mask.data(), self.threshold)
        } else {
            ActiveRows::full(self.c_code)
        }
    }

    fn check_weight(&self, w: &Tensor) -> Result<()> {
        if w.shape().rank() != 4 || w.dims()[0] != self.c_out || w.len() != self.c_out * self.fan {
            return Err(ShapeError::new(
                "weight autoencoder",
                format!(
                    "weight {} incompatible with Co={} F={}",
                    w.shape(),
                    self.c_out,
                    self.fan
                ),
            ));
        }
        Ok(())
    }

    fn check_code(&self, code: &Tensor) -> Result<()> {
        if code.shape().rank() != 4
            || code.dims()[0] != self.c_code
            || code.len() != self.c_code * self.fan
        {
            return Err(ShapeError::new(
                "weight autoencoder",
                format!(
                    "code {} incompatible with Ccode={} F={}",
                    code.shape(),
                    self.c_code,
                    self.fan
                ),
            ));
        }
        Ok(())
    }

    /// Computes the code `Wcode = σae((Wencᵀ·W) ⊙ Mprune)` in convolution
    /// layout `[Ccode, Ci, K, K]` (Eq. 3).
    ///
    /// # Errors
    ///
    /// Returns an error when `w` does not match the configured geometry.
    pub fn code(&self, w: &Tensor) -> Result<Tensor> {
        self.check_weight(w)?;
        let wmat = w.reshape(&[self.c_out, self.fan])?;
        let mut z = matmul_at(&self.enc, &wmat)?; // [Ccode, F]
        let pm = self.pruned_mask();
        for j in 0..self.c_code {
            let m = pm.data()[j];
            for v in &mut z.data_mut()[j * self.fan..(j + 1) * self.fan] {
                *v = self.sigma.apply(*v * m);
            }
        }
        z.reshape(&[self.c_code, w.dims()[1], w.dims()[2], w.dims()[3]])
    }

    /// Reconstructs `Wrec = σae(Wdecᵀ·Wcode)` in convolution layout
    /// (Eq. 4).
    ///
    /// # Errors
    ///
    /// Returns an error when `code` does not match the configured geometry.
    pub fn reconstruct(&self, code: &Tensor) -> Result<Tensor> {
        self.check_code(code)?;
        let cmat = code.reshape(&[self.c_code, self.fan])?;
        let y = matmul_at(&self.dec, &cmat)?; // [Co, F]
        self.sigma.apply_tensor(&y).reshape(&[
            self.c_out,
            code.dims()[1],
            code.dims()[2],
            code.dims()[3],
        ])
    }

    /// Back-projects a task gradient on the code through the *true* chain
    /// (no straight-through estimator): `gW = Wenc · (g ⊙ σae′(code) ⊙
    /// Mprune)` — the gradient Eq. 5 deliberately avoids. Used by the STE
    /// ablation to demonstrate why the paper substitutes it.
    ///
    /// `w` is in convolution layout `[Co, Ci, K, K]`; `g_code` in code
    /// layout `[Ccode, Ci, K, K]`.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes mismatch the configured geometry.
    pub fn backproject_task_grad(&self, w: &Tensor, g_code: &Tensor) -> Result<Tensor> {
        self.check_weight(w)?;
        self.check_code(g_code)?;
        let cc = self.c_code;
        let fan = self.fan;
        let wmat = w.reshape(&[self.c_out, fan])?;
        let z = matmul_at(&self.enc, &wmat)?;
        let pm = self.pruned_mask();
        // g_z = g_code ⊙ σ′(σ(z·m)) ⊙ m, row-wise.
        let gmat = g_code.reshape(&[cc, fan])?;
        let mut g_z = gmat.clone();
        for j in 0..cc {
            let m = pm.data()[j];
            for (v, &zv) in g_z.data_mut()[j * fan..(j + 1) * fan]
                .iter_mut()
                .zip(&z.data()[j * fan..(j + 1) * fan])
            {
                let code = self.sigma.apply(zv * m);
                *v *= self.sigma.derivative_from_output(code) * m;
            }
        }
        // gW = Wenc · g_z : [Co, Ccode]·[Ccode, F] → [Co, F].
        let gw = matmul(&self.enc, &g_z)?;
        gw.reshape(w.dims())
    }

    /// One SGD step of the autoencoder player: minimises
    /// `Lae = Lrec + νprune·Lprune` w.r.t. `Wenc`, `Wdec` and `M`
    /// (the clip handled by the straight-through estimator, Eq. 6).
    ///
    /// `w` — the *current* raw filters of the convolution (not updated
    /// here; that is the task player's job). Returns the step statistics.
    ///
    /// # Errors
    ///
    /// Returns an error when `w` does not match the configured geometry.
    pub fn step(&mut self, w: &Tensor, lr: f32, nu_prune: f32) -> Result<AeStats> {
        with_thread_workspace(|ws| self.step_in(w, lr, nu_prune, ws))
    }

    /// [`Self::step`] with GEMM packing scratch drawn from a caller-supplied
    /// arena — the path [`crate::AlfBlock`] uses so the autoencoder player
    /// shares the training run's single [`Workspace`].
    ///
    /// # Errors
    ///
    /// Returns an error when `w` does not match the configured geometry.
    #[allow(clippy::needless_range_loop)] // `j` addresses several row-parallel buffers
    pub fn step_in(
        &mut self,
        w: &Tensor,
        lr: f32,
        nu_prune: f32,
        ws: &mut Workspace,
    ) -> Result<AeStats> {
        self.check_weight(w)?;
        let co = self.c_out;
        let cc = self.c_code;
        let fan = self.fan;
        let wmat = w.reshape(&[co, fan])?;

        // Channels the clip currently keeps. When the sparse path is
        // eligible (mask on, σae(0) == 0, not opted out) the pruned rows of
        // `code` are exactly zero, so the two reconstruction GEMMs below
        // elide them — bitwise-invisibly (see `alf_tensor::ops::gemm`).
        let live = self.sparse_eligible().then(|| self.active_rows());

        // ---- forward --------------------------------------------------
        let z = matmul_at_ws(&self.enc, &wmat, ws)?; // [Ccode, F]
        let pm = self.pruned_mask();
        // Zm = Z ⊙ mprune (row-wise), Wcode = σae(Zm)
        let mut code = z.clone();
        for j in 0..cc {
            let m = pm.data()[j];
            for v in &mut code.data_mut()[j * fan..(j + 1) * fan] {
                *v = self.sigma.apply(*v * m);
            }
        }
        // Y = Wdecᵀ·Wcode : pruned code rows are dead k-slices of this
        // product — skip packing them instead of multiplying zeros.
        let y = match &live {
            Some(rows) if !rows.is_all() => {
                let mut y = Tensor::zeros(&[co, fan]);
                gemm_active_k_into(
                    y.data_mut(),
                    self.dec.data(),
                    true,
                    code.data(),
                    co,
                    cc,
                    fan,
                    rows,
                    ws,
                    auto_threads(co, rows.len(), fan),
                );
                y
            }
            _ => matmul_at_ws(&self.dec, &code, ws)?,
        };
        let rec = self.sigma.apply_tensor(&y);

        let (l_rec, g_rec) = alf_nn::loss::mse_loss(&rec, &wmat)?;
        let l_prune = if cc == co {
            self.mask.mean_abs()
        } else {
            // Channels removed by compaction sit at exactly zero in the
            // conceptual length-Co mask, so Lprune keeps its 1/Co scale.
            self.mask.data().iter().map(|v| v.abs()).sum::<f32>() / co as f32
        };

        // ---- backward -------------------------------------------------
        // dL/dY = g_rec ⊙ σae'(rec)
        let g_y = g_rec.zip_map(&rec, |g, r| g * self.sigma.derivative_from_output(r))?;
        // Y = Wdecᵀ·Wcode ⇒ dL/dWdec = Wcode·g_yᵀ : [Ccode, Co]. Pruned
        // code rows are zero rows of the A operand, so their g_dec rows
        // come out exactly zero — declared sparsity, no scan needed.
        let g_dec = match &live {
            Some(rows) if !rows.is_all() => {
                let mut g = Tensor::zeros(&[cc, co]);
                gemm_active_rows_into(
                    g.data_mut(),
                    code.data(),
                    g_y.data(),
                    true,
                    cc,
                    fan,
                    co,
                    rows,
                    ws,
                    auto_threads(rows.len(), fan, co),
                );
                g
            }
            _ => matmul_bt_ws(&code, &g_y, ws)?,
        };
        // dL/dWcode = Wdec·g_y : [Ccode, F]. Deliberately NOT skipped:
        // clipped rows feed the mask gradient below, which is how pruned
        // channels recover (Eq. 6's STE).
        let g_code = matmul_ws(&self.dec, &g_y, ws)?;
        // dL/dZm = g_code ⊙ σae'(code)
        let g_zm = g_code.zip_map(&code, |g, c| g * self.sigma.derivative_from_output(c))?;
        // dL/dZ (for the encoder path) = g_zm ⊙ mprune, row-wise;
        // dL/dmprune[j] = Σ_f g_zm[j,f]·Z[j,f].
        let mut g_z = g_zm.clone();
        let mut g_mask = vec![0.0f32; cc];
        for j in 0..cc {
            let m = pm.data()[j];
            let row_zm = &g_zm.data()[j * fan..(j + 1) * fan];
            let row_z = &z.data()[j * fan..(j + 1) * fan];
            g_mask[j] = row_zm.iter().zip(row_z).map(|(&a, &b)| a * b).sum();
            for v in &mut g_z.data_mut()[j * fan..(j + 1) * fan] {
                *v *= m;
            }
        }
        // Z = Wencᵀ·Wmat ⇒ dL/dWenc = Wmat·g_zᵀ : [Co, Ccode]
        let g_enc = matmul_bt_ws(&wmat, &g_z, ws)?;

        // ---- update ---------------------------------------------------
        self.enc.axpy(-lr, &g_enc)?;
        self.dec.axpy(-lr, &g_dec)?;
        if self.mask_enabled {
            // STE through the clip (Eq. 6) + L1 pressure (νprune·sign/Co).
            // `l1_subgradient` divides by the current mask length Ccode;
            // rescale to the paper's 1/Co so compaction does not change the
            // per-entry pressure (the factor is exactly 1.0 before any
            // compaction, which multiplies bitwise-invisibly).
            let l1 = ste::l1_subgradient(&self.mask);
            let rescale = cc as f32 / co as f32;
            for j in 0..cc {
                let g = g_mask[j] + nu_prune * rescale * l1.data()[j];
                self.mask.data_mut()[j] -= lr * g;
            }
        }

        Ok(AeStats {
            l_rec,
            l_prune,
            nu_prune,
            zero_fraction: self.zero_fraction(),
        })
    }

    /// Physically removes code channels, keeping exactly the rows of
    /// `keep`: gathers the encoder's columns, the decoder's rows and the
    /// mask entries, shrinking `Ccode` to `keep.len()` and composing
    /// [`Self::kept_channels`]. Surviving channels' parameters are moved,
    /// not recomputed, so the code rows they produce — and the
    /// reconstruction, whose dropped `k` terms were exact-zero products —
    /// stay bitwise identical to before the compaction.
    ///
    /// # Errors
    ///
    /// Returns an error when `keep` does not span the current `Ccode` rows
    /// or is empty (a block must keep at least one filter).
    pub fn compact(&mut self, keep: &ActiveRows) -> Result<()> {
        if keep.total() != self.c_code {
            return Err(ShapeError::new(
                "autoencoder compact",
                format!(
                    "descriptor covers {} rows but Ccode={}",
                    keep.total(),
                    self.c_code
                ),
            ));
        }
        if keep.is_empty() {
            return Err(ShapeError::new(
                "autoencoder compact",
                "refusing to compact to zero code channels".to_string(),
            ));
        }
        let idx = keep.indices();
        let live = idx.len();
        let co = self.c_out;
        let cc = self.c_code;
        // Encoder columns: enc'[r, i] = enc[r, idx[i]].
        let mut enc = vec![0.0f32; co * live];
        for r in 0..co {
            for (i, &s) in idx.iter().enumerate() {
                enc[r * live + i] = self.enc.data()[r * cc + s];
            }
        }
        // Decoder rows: dec'[i, ·] = dec[idx[i], ·].
        let mut dec = vec![0.0f32; live * co];
        for (i, &s) in idx.iter().enumerate() {
            dec[i * co..(i + 1) * co].copy_from_slice(&self.dec.data()[s * co..(s + 1) * co]);
        }
        let mask: Vec<f32> = idx.iter().map(|&s| self.mask.data()[s]).collect();
        self.enc = Tensor::from_vec(enc, &[co, live])?;
        self.dec = Tensor::from_vec(dec, &[live, co])?;
        self.mask = Tensor::from_vec(mask, &[live])?;
        self.kept = idx.iter().map(|&s| self.kept[s]).collect();
        self.c_code = live;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alf_nn::gradcheck;

    fn ae(seed: u64, sigma: ActivationKind) -> WeightAutoencoder {
        WeightAutoencoder::new(2, 4, 3, Init::Xavier, sigma, 1e-4, &mut Rng::new(seed))
    }

    fn weight(seed: u64) -> Tensor {
        Tensor::randn(&[4, 2, 3, 3], Init::He, &mut Rng::new(seed))
    }

    #[test]
    fn code_has_weight_shape_during_training() {
        let a = ae(0, ActivationKind::Tanh);
        let w = weight(1);
        let code = a.code(&w).unwrap();
        assert_eq!(code.dims(), w.dims());
    }

    #[test]
    fn masked_channels_are_zero_in_code() {
        let mut a = ae(2, ActivationKind::Tanh);
        a.mask.data_mut()[1] = 0.0; // below threshold ⇒ clipped
        a.mask.data_mut()[3] = 5e-5;
        let code = a.code(&weight(3)).unwrap();
        let fan = 18;
        assert!(code.data()[fan..2 * fan].iter().all(|&v| v == 0.0));
        assert!(code.data()[3 * fan..4 * fan].iter().all(|&v| v == 0.0));
        assert!(code.data()[..fan].iter().any(|&v| v != 0.0));
    }

    #[test]
    fn zero_fraction_and_active_channels_agree() {
        let mut a = ae(4, ActivationKind::Tanh);
        a.mask.data_mut()[0] = 0.0;
        assert_eq!(a.zero_fraction(), 0.25);
        assert_eq!(a.active_channels(), vec![1, 2, 3]);
    }

    #[test]
    fn without_mask_disables_gating() {
        let mut a = ae(5, ActivationKind::Tanh).without_mask();
        a.mask.data_mut()[0] = 0.0;
        assert_eq!(a.zero_fraction(), 0.0);
        assert_eq!(a.active_channels().len(), 4);
        let code = a.code(&weight(6)).unwrap();
        assert!(code.data()[..18].iter().any(|&v| v != 0.0));
    }

    #[test]
    fn rejects_mismatched_weight() {
        let a = ae(7, ActivationKind::Tanh);
        assert!(a.code(&Tensor::zeros(&[4, 2, 5, 5])).is_err());
        assert!(a.code(&Tensor::zeros(&[3, 2, 3, 3])).is_err());
        assert!(a.reconstruct(&Tensor::zeros(&[8])).is_err());
    }

    #[test]
    fn reconstruction_loss_decreases_under_training() {
        // With νprune = 0 the autoencoder is a plain reconstruction problem;
        // Lrec must drop substantially.
        let mut a = ae(8, ActivationKind::Tanh);
        let w = weight(9).scale(0.5); // keep inside tanh's invertible range
        let first = a.step(&w, 0.0, 0.0).unwrap().l_rec;
        let mut last = first;
        for _ in 0..1500 {
            last = a.step(&w, 0.05, 0.0).unwrap().l_rec;
        }
        assert!(
            last < 0.35 * first,
            "Lrec should shrink: first {first}, last {last}"
        );
    }

    #[test]
    fn prune_pressure_drives_mask_to_zero() {
        // The SGD step on |m| oscillates around zero with amplitude
        // lr·ν/Co, so the clip threshold must exceed that amplitude for the
        // channel to stay in the dead zone — the same lr/t interplay the
        // paper's Setup 3 explores.
        let mut a = WeightAutoencoder::new(
            2,
            4,
            3,
            Init::Xavier,
            ActivationKind::Tanh,
            0.05,
            &mut Rng::new(10),
        );
        let w = weight(11);
        for _ in 0..3000 {
            a.step(&w, 3e-3, 1.0).unwrap();
        }
        assert!(
            a.zero_fraction() > 0.0,
            "sustained pressure should clip some channels (mask: {:?})",
            a.mask.data()
        );
    }

    #[test]
    fn no_pressure_keeps_all_channels() {
        let mut a = ae(12, ActivationKind::Tanh);
        let w = weight(13);
        for _ in 0..200 {
            a.step(&w, 0.01, 0.0).unwrap();
        }
        // Reconstruction alone has no reason to kill channels outright.
        assert_eq!(a.zero_fraction(), 0.0);
    }

    /// Flattens (enc, dec, mask) into one vector so a single gradcheck can
    /// cover all three parameter groups.
    fn gradcheck_packed(sigma: ActivationKind) {
        let base = ae(14, sigma);
        let w = weight(15);
        let nu = 0.3;
        let co = 4;
        let pack = |a: &WeightAutoencoder| {
            let mut v = a.enc.data().to_vec();
            v.extend_from_slice(a.dec.data());
            v.extend_from_slice(a.mask.data());
            Tensor::from_vec(v, &[co * co * 2 + co]).unwrap()
        };
        let unpack = |t: &Tensor| {
            let mut a = base.clone();
            let d = t.data();
            a.enc = Tensor::from_vec(d[..co * co].to_vec(), &[co, co]).unwrap();
            a.dec = Tensor::from_vec(d[co * co..2 * co * co].to_vec(), &[co, co]).unwrap();
            a.mask = Tensor::from_vec(d[2 * co * co..].to_vec(), &[co]).unwrap();
            a
        };
        let packed = pack(&base);
        let (analytic, numeric) = gradcheck::input_gradients(
            &packed,
            |p| {
                let a = unpack(p);
                let code = a.code(&w)?;
                let rec = a.reconstruct(&code)?;
                let wmat = w.reshape(&[co, 18])?;
                let rmat = rec.reshape(&[co, 18])?;
                let (l_rec, _) = alf_nn::loss::mse_loss(&rmat, &wmat)?;
                Ok(l_rec + nu * a.mask.mean_abs())
            },
            |p| {
                let mut a = unpack(p);
                // Recover the gradient from the SGD update at lr = 1.
                let before = pack(&a);
                a.step(&w, 1.0, nu)?;
                let after = pack(&a);
                before.sub(&after)
            },
        )
        .unwrap();
        gradcheck::assert_close(&analytic, &numeric, 3e-2);
    }

    #[test]
    fn gradients_match_finite_differences_tanh() {
        gradcheck_packed(ActivationKind::Tanh);
    }

    #[test]
    fn gradients_match_finite_differences_sigmoid() {
        gradcheck_packed(ActivationKind::Sigmoid);
    }

    #[test]
    fn clipped_channel_still_receives_gradient_via_ste() {
        // A mask entry inside the dead zone would get zero gradient from the
        // true derivative of the clip; the STE lets it keep learning so the
        // channel can recover (paper §III-A).
        let mut a = ae(16, ActivationKind::Tanh);
        a.mask.data_mut()[2] = 1e-5; // clipped (t = 1e-4)
        let before = a.mask.data()[2];
        a.step(&weight(17), 0.1, 0.0).unwrap();
        assert_ne!(a.mask.data()[2], before, "STE must update clipped entries");
    }

    #[test]
    fn backproject_matches_finite_differences() {
        // The no-STE chain gradient must be the true derivative of
        // 0.5·‖code(W)‖² w.r.t. W (for that loss, g_code = code).
        let base = ae(20, ActivationKind::Tanh);
        let w0 = weight(21).scale(0.5);
        let (analytic, numeric) = gradcheck::input_gradients(
            &w0,
            |w| Ok(0.5 * base.code(w)?.sq_norm()),
            |w| {
                let code = base.code(w)?;
                base.backproject_task_grad(w, &code)
            },
        )
        .unwrap();
        gradcheck::assert_close(&analytic, &numeric, 3e-2);
    }

    #[test]
    fn sparse_step_is_bitwise_identical_to_dense() {
        // The ISSUE's core guarantee: eliding pruned code rows from the
        // reconstruction GEMMs must not change a single bit of the updated
        // parameters.
        let mut sparse = ae(30, ActivationKind::Tanh);
        sparse.set_mask_value(1, 0.0);
        sparse.set_mask_value(3, 5e-5); // inside the dead zone (t = 1e-4)
        let mut dense = sparse.clone();
        dense.set_sparse_exec(false);
        assert!(sparse.sparse_eligible());
        assert!(!dense.sparse_eligible());
        let w = weight(31);
        for _ in 0..5 {
            sparse.step(&w, 0.05, 0.5).unwrap();
            dense.step(&w, 0.05, 0.5).unwrap();
        }
        assert_eq!(sparse.enc.data(), dense.enc.data());
        assert_eq!(sparse.dec.data(), dense.dec.data());
        assert_eq!(sparse.mask.data(), dense.mask.data());
    }

    #[test]
    fn sigmoid_activation_disables_sparse_path() {
        // σae(0) = 0.5 for sigmoid: pruned code rows are NOT zero, so the
        // elision must refuse to engage.
        let a = ae(32, ActivationKind::Sigmoid);
        assert!(!a.sparse_eligible());
        assert!(ae(33, ActivationKind::Tanh).sparse_eligible());
        assert!(!ae(34, ActivationKind::Tanh)
            .without_mask()
            .sparse_eligible());
    }

    #[test]
    fn compact_preserves_surviving_code_and_reconstruction() {
        let mut a = ae(35, ActivationKind::Tanh);
        a.set_mask_value(0, 0.0);
        a.set_mask_value(2, -3e-5);
        let w = weight(36);
        let code_full = a.code(&w).unwrap();
        let rec_full = a.reconstruct(&code_full).unwrap();

        let keep = a.active_rows();
        assert_eq!(keep.indices(), &[1, 3]);
        a.compact(&keep).unwrap();
        assert_eq!(a.c_code(), 2);
        assert_eq!(a.kept_channels(), &[1, 3]);

        let code = a.code(&w).unwrap();
        assert_eq!(code.dims(), &[2, 2, 3, 3]);
        let fan = 18;
        for (i, &s) in [1usize, 3].iter().enumerate() {
            assert_eq!(
                &code.data()[i * fan..(i + 1) * fan],
                &code_full.data()[s * fan..(s + 1) * fan],
                "compacted code row {i} must be original row {s} bitwise"
            );
        }
        // The dropped reconstruction terms were exact-zero products, so the
        // reconstruction is bitwise unchanged too.
        let rec = a.reconstruct(&code).unwrap();
        assert_eq!(rec.data(), rec_full.data());
        // Removed channels stay in the zero-fraction numerator.
        assert_eq!(a.zero_fraction(), 0.5);
        assert_eq!(a.active_channels(), vec![0, 1]);
    }

    #[test]
    fn compact_composes_kept_map_across_rounds() {
        let mut a = ae(37, ActivationKind::Tanh);
        a.set_mask_value(0, 0.0);
        a.compact(&a.active_rows()).unwrap();
        assert_eq!(a.kept_channels(), &[1, 2, 3]);
        a.set_mask_value(1, 0.0); // current row 1 = original channel 2
        a.compact(&a.active_rows()).unwrap();
        assert_eq!(a.kept_channels(), &[1, 3]);
        assert_eq!(a.zero_fraction(), 0.5);
    }

    #[test]
    fn compact_rejects_empty_or_mismatched_descriptor() {
        let mut a = ae(38, ActivationKind::Tanh);
        let empty = ActiveRows::from_mask(&[0.0; 4]);
        assert!(a.compact(&empty).is_err());
        let wrong = ActiveRows::full(3);
        assert!(a.compact(&wrong).is_err());
        // Still intact after the rejected calls.
        assert_eq!(a.c_code(), 4);
        assert!(a.code(&weight(39)).is_ok());
    }

    #[test]
    fn compacted_autoencoder_still_trains() {
        let mut a = ae(40, ActivationKind::Tanh);
        a.set_mask_value(2, 0.0);
        a.compact(&a.active_rows()).unwrap();
        let w = weight(41).scale(0.5);
        let first = a.step(&w, 0.0, 0.0).unwrap().l_rec;
        let mut last = first;
        for _ in 0..1500 {
            last = a.step(&w, 0.05, 0.0).unwrap().l_rec;
        }
        // A 3-channel code reconstructing 4 filters is rank-limited, so the
        // loss has a floor — but training must still make clear progress.
        assert!(
            last < 0.75 * first,
            "compacted Lrec should shrink: first {first}, last {last}"
        );
    }

    #[test]
    fn backproject_zeroes_gradient_of_clipped_channels() {
        // §III-B's argument: without the STE, clipped mask entries zeroise
        // the gradient flowing back to W through those code channels.
        let mut a = ae(22, ActivationKind::Tanh);
        for j in 0..4 {
            a.set_mask_value(j, 0.0); // everything clipped
        }
        let w = weight(23);
        let g_code = Tensor::ones(w.dims());
        let g_w = a.backproject_task_grad(&w, &g_code).unwrap();
        assert_eq!(
            g_w.sq_norm(),
            0.0,
            "fully-clipped mask must kill the chain gradient"
        );
    }
}
