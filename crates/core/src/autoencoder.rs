//! The sparse weight autoencoder of the ALF block (paper §III-A).
//!
//! For a convolution with weights `W ∈ R^{Co×Ci×K×K}` (flattened per filter
//! to a matrix `Wmat ∈ R^{Co×F}`, `F = Ci·K²`) the autoencoder computes
//!
//! ```text
//! W̃code = Wencᵀ · Wmat              (encoder mixes the Co filters)
//! Wcode  = σae(W̃code ⊙ Mprune)      (mask gates code filters, Eq. 3)
//! Wrec   = σae(Wdecᵀ · Wcode)       (decoder reconstructs, Eq. 4)
//! ```
//!
//! with `Mprune = Clip(M, t) = 1{|m| > t}·m` applied row-wise. Training
//! minimises `Lae = Lrec + νprune·Lprune` where `Lrec = MSE(Wmat, Wrec)`
//! and `Lprune = 1/Co·Σ|m|`; the clip is bypassed with the straight-through
//! estimator when differentiating w.r.t. `M` (Eq. 6).
//!
//! During training `Ccode = Co` — compression materialises at deployment
//! when the zero code filters are stripped (see [`crate::deploy`]).

use alf_nn::activation::ActivationKind;
use alf_nn::ste;
use alf_tensor::init::Init;
use alf_tensor::ops::{
    matmul, matmul_at, matmul_at_ws, matmul_bt_ws, matmul_ws, with_thread_workspace, Workspace,
};
use alf_tensor::rng::Rng;
use alf_tensor::{ShapeError, Tensor};

use crate::Result;

/// Statistics of one autoencoder optimisation step.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AeStats {
    /// Reconstruction loss `Lrec = MSE(W, Wrec)`.
    pub l_rec: f32,
    /// Mask regulariser `Lprune = 1/Co·Σ|m|`.
    pub l_prune: f32,
    /// Pressure weight `νprune` used for this step.
    pub nu_prune: f32,
    /// Zero fraction `θ` of the mask *after* the step.
    pub zero_fraction: f32,
}

/// Sparse autoencoder over a convolution's filter bank.
///
/// # Example
///
/// ```
/// use alf_core::WeightAutoencoder;
/// use alf_nn::activation::ActivationKind;
/// use alf_tensor::{init::Init, rng::Rng, Tensor};
///
/// # fn main() -> alf_core::Result<()> {
/// let mut rng = Rng::new(0);
/// let ae = WeightAutoencoder::new(3, 8, 3, Init::Xavier, ActivationKind::Tanh, 1e-4, &mut rng);
/// let w = Tensor::randn(&[8, 3, 3, 3], Init::He, &mut rng);
/// let code = ae.code(&w)?;
/// assert_eq!(code.dims(), w.dims()); // Ccode = Co during training
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WeightAutoencoder {
    enc: Tensor,  // [Co, Ccode]
    dec: Tensor,  // [Ccode, Co]
    mask: Tensor, // [Ccode]
    threshold: f32,
    sigma: ActivationKind,
    mask_enabled: bool,
    c_out: usize,
    fan: usize, // F = Ci·K²
}

impl WeightAutoencoder {
    /// Creates an autoencoder for a `[c_out, c_in, kernel, kernel]` weight.
    ///
    /// `Ccode` starts equal to `c_out` (paper §III-C); the mask `M` is
    /// initialised to ones so every filter is initially active.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero or `threshold` is negative.
    pub fn new(
        c_in: usize,
        c_out: usize,
        kernel: usize,
        init: Init,
        sigma: ActivationKind,
        threshold: f32,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            c_in > 0 && c_out > 0 && kernel > 0,
            "zero-sized autoencoder"
        );
        assert!(threshold >= 0.0, "negative clip threshold");
        Self {
            enc: Tensor::randn(&[c_out, c_out], init, rng),
            dec: Tensor::randn(&[c_out, c_out], init, rng),
            mask: Tensor::ones(&[c_out]),
            threshold,
            sigma,
            mask_enabled: true,
            c_out,
            fan: c_in * kernel * kernel,
        }
    }

    /// Disables the pruning mask (the paper's Setup 2, Fig. 2b): the code
    /// is `σae(Wencᵀ·W)` with no gating, so no filters are ever pruned.
    pub fn without_mask(mut self) -> Self {
        self.mask_enabled = false;
        self
    }

    /// The clip threshold `t`.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The autoencoder activation `σae`.
    pub fn sigma(&self) -> ActivationKind {
        self.sigma
    }

    /// Whether the pruning mask is active.
    pub fn mask_enabled(&self) -> bool {
        self.mask_enabled
    }

    /// Raw mask values `M`.
    pub fn mask(&self) -> &Tensor {
        &self.mask
    }

    /// Overwrites one mask entry — useful for experiments that force a
    /// channel into (or out of) the clip dead-zone.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn set_mask_value(&mut self, channel: usize, value: f32) {
        self.mask.data_mut()[channel] = value;
    }

    /// Visits the autoencoder's persistent state (`Wenc`, `Wdec`, `M`) in
    /// a stable order — the checkpointing hook.
    pub fn visit_state(&mut self, visitor: &mut dyn FnMut(&mut Tensor)) {
        visitor(&mut self.enc);
        visitor(&mut self.dec);
        visitor(&mut self.mask);
    }

    /// Read-only counterpart of [`WeightAutoencoder::visit_state`] — same
    /// tensors, same order, through `&self`.
    pub fn visit_state_ref(&self, visitor: &mut dyn FnMut(&Tensor)) {
        visitor(&self.enc);
        visitor(&self.dec);
        visitor(&self.mask);
    }

    /// Clipped mask `Mprune = 1{|m| > t}·m` (all-ones when the mask is
    /// disabled).
    pub fn pruned_mask(&self) -> Tensor {
        if self.mask_enabled {
            ste::clip_tensor(&self.mask, self.threshold)
        } else {
            Tensor::ones(&[self.c_out])
        }
    }

    /// Zero fraction `θ = Ccode,zero / Ccode` of the clipped mask.
    pub fn zero_fraction(&self) -> f32 {
        if self.mask_enabled {
            ste::zero_fraction(&self.mask, self.threshold)
        } else {
            0.0
        }
    }

    /// Indices of code filters that survive the clip (the channels kept at
    /// deployment).
    pub fn active_channels(&self) -> Vec<usize> {
        let pm = self.pruned_mask();
        pm.data()
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| (m != 0.0).then_some(i))
            .collect()
    }

    fn check_weight(&self, w: &Tensor) -> Result<()> {
        if w.shape().rank() != 4 || w.dims()[0] != self.c_out || w.len() != self.c_out * self.fan {
            return Err(ShapeError::new(
                "weight autoencoder",
                format!(
                    "weight {} incompatible with Co={} F={}",
                    w.shape(),
                    self.c_out,
                    self.fan
                ),
            ));
        }
        Ok(())
    }

    /// Computes the code `Wcode = σae((Wencᵀ·W) ⊙ Mprune)` in convolution
    /// layout `[Ccode, Ci, K, K]` (Eq. 3).
    ///
    /// # Errors
    ///
    /// Returns an error when `w` does not match the configured geometry.
    pub fn code(&self, w: &Tensor) -> Result<Tensor> {
        self.check_weight(w)?;
        let wmat = w.reshape(&[self.c_out, self.fan])?;
        let mut z = matmul_at(&self.enc, &wmat)?; // [Ccode, F]
        let pm = self.pruned_mask();
        for j in 0..self.c_out {
            let m = pm.data()[j];
            for v in &mut z.data_mut()[j * self.fan..(j + 1) * self.fan] {
                *v = self.sigma.apply(*v * m);
            }
        }
        z.reshape(w.dims())
    }

    /// Reconstructs `Wrec = σae(Wdecᵀ·Wcode)` in convolution layout
    /// (Eq. 4).
    ///
    /// # Errors
    ///
    /// Returns an error when `code` does not match the configured geometry.
    pub fn reconstruct(&self, code: &Tensor) -> Result<Tensor> {
        self.check_weight(code)?;
        let cmat = code.reshape(&[self.c_out, self.fan])?;
        let y = matmul_at(&self.dec, &cmat)?; // [Co, F]
        self.sigma.apply_tensor(&y).reshape(code.dims())
    }

    /// Back-projects a task gradient on the code through the *true* chain
    /// (no straight-through estimator): `gW = Wenc · (g ⊙ σae′(code) ⊙
    /// Mprune)` — the gradient Eq. 5 deliberately avoids. Used by the STE
    /// ablation to demonstrate why the paper substitutes it.
    ///
    /// Both `w` and `g_code` are in convolution layout `[Co, Ci, K, K]`.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes mismatch the configured geometry.
    pub fn backproject_task_grad(&self, w: &Tensor, g_code: &Tensor) -> Result<Tensor> {
        self.check_weight(w)?;
        self.check_weight(g_code)?;
        let co = self.c_out;
        let fan = self.fan;
        let wmat = w.reshape(&[co, fan])?;
        let z = matmul_at(&self.enc, &wmat)?;
        let pm = self.pruned_mask();
        // g_z = g_code ⊙ σ′(σ(z·m)) ⊙ m, row-wise.
        let gmat = g_code.reshape(&[co, fan])?;
        let mut g_z = gmat.clone();
        for j in 0..co {
            let m = pm.data()[j];
            for (v, &zv) in g_z.data_mut()[j * fan..(j + 1) * fan]
                .iter_mut()
                .zip(&z.data()[j * fan..(j + 1) * fan])
            {
                let code = self.sigma.apply(zv * m);
                *v *= self.sigma.derivative_from_output(code) * m;
            }
        }
        // gW = Wenc · g_z : [Co, Ccode]·[Ccode, F] → [Co, F].
        let gw = matmul(&self.enc, &g_z)?;
        gw.reshape(w.dims())
    }

    /// One SGD step of the autoencoder player: minimises
    /// `Lae = Lrec + νprune·Lprune` w.r.t. `Wenc`, `Wdec` and `M`
    /// (the clip handled by the straight-through estimator, Eq. 6).
    ///
    /// `w` — the *current* raw filters of the convolution (not updated
    /// here; that is the task player's job). Returns the step statistics.
    ///
    /// # Errors
    ///
    /// Returns an error when `w` does not match the configured geometry.
    pub fn step(&mut self, w: &Tensor, lr: f32, nu_prune: f32) -> Result<AeStats> {
        with_thread_workspace(|ws| self.step_in(w, lr, nu_prune, ws))
    }

    /// [`Self::step`] with GEMM packing scratch drawn from a caller-supplied
    /// arena — the path [`crate::AlfBlock`] uses so the autoencoder player
    /// shares the training run's single [`Workspace`].
    ///
    /// # Errors
    ///
    /// Returns an error when `w` does not match the configured geometry.
    #[allow(clippy::needless_range_loop)] // `j` addresses several row-parallel buffers
    pub fn step_in(
        &mut self,
        w: &Tensor,
        lr: f32,
        nu_prune: f32,
        ws: &mut Workspace,
    ) -> Result<AeStats> {
        self.check_weight(w)?;
        let co = self.c_out;
        let fan = self.fan;
        let wmat = w.reshape(&[co, fan])?;

        // ---- forward --------------------------------------------------
        let z = matmul_at_ws(&self.enc, &wmat, ws)?; // [Ccode, F]
        let pm = self.pruned_mask();
        // Zm = Z ⊙ mprune (row-wise), Wcode = σae(Zm)
        let mut code = z.clone();
        for j in 0..co {
            let m = pm.data()[j];
            for v in &mut code.data_mut()[j * fan..(j + 1) * fan] {
                *v = self.sigma.apply(*v * m);
            }
        }
        let y = matmul_at_ws(&self.dec, &code, ws)?; // [Co, F]
        let rec = self.sigma.apply_tensor(&y);

        let (l_rec, g_rec) = alf_nn::loss::mse_loss(&rec, &wmat)?;
        let l_prune = self.mask.mean_abs();

        // ---- backward -------------------------------------------------
        // dL/dY = g_rec ⊙ σae'(rec)
        let g_y = g_rec.zip_map(&rec, |g, r| g * self.sigma.derivative_from_output(r))?;
        // Y = Wdecᵀ·Wcode ⇒ dL/dWdec = Wcode·g_yᵀ : [Ccode, Co]
        let g_dec = matmul_bt_ws(&code, &g_y, ws)?;
        // dL/dWcode = Wdec·g_y : [Ccode, F]
        let g_code = matmul_ws(&self.dec, &g_y, ws)?;
        // dL/dZm = g_code ⊙ σae'(code)
        let g_zm = g_code.zip_map(&code, |g, c| g * self.sigma.derivative_from_output(c))?;
        // dL/dZ (for the encoder path) = g_zm ⊙ mprune, row-wise;
        // dL/dmprune[j] = Σ_f g_zm[j,f]·Z[j,f].
        let mut g_z = g_zm.clone();
        let mut g_mask = vec![0.0f32; co];
        for j in 0..co {
            let m = pm.data()[j];
            let row_zm = &g_zm.data()[j * fan..(j + 1) * fan];
            let row_z = &z.data()[j * fan..(j + 1) * fan];
            g_mask[j] = row_zm.iter().zip(row_z).map(|(&a, &b)| a * b).sum();
            for v in &mut g_z.data_mut()[j * fan..(j + 1) * fan] {
                *v *= m;
            }
        }
        // Z = Wencᵀ·Wmat ⇒ dL/dWenc = Wmat·g_zᵀ : [Co, Ccode]
        let g_enc = matmul_bt_ws(&wmat, &g_z, ws)?;

        // ---- update ---------------------------------------------------
        self.enc.axpy(-lr, &g_enc)?;
        self.dec.axpy(-lr, &g_dec)?;
        if self.mask_enabled {
            // STE through the clip (Eq. 6) + L1 pressure (νprune·sign/Co).
            let l1 = ste::l1_subgradient(&self.mask);
            for j in 0..co {
                let g = g_mask[j] + nu_prune * l1.data()[j];
                self.mask.data_mut()[j] -= lr * g;
            }
        }

        Ok(AeStats {
            l_rec,
            l_prune,
            nu_prune,
            zero_fraction: self.zero_fraction(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alf_nn::gradcheck;

    fn ae(seed: u64, sigma: ActivationKind) -> WeightAutoencoder {
        WeightAutoencoder::new(2, 4, 3, Init::Xavier, sigma, 1e-4, &mut Rng::new(seed))
    }

    fn weight(seed: u64) -> Tensor {
        Tensor::randn(&[4, 2, 3, 3], Init::He, &mut Rng::new(seed))
    }

    #[test]
    fn code_has_weight_shape_during_training() {
        let a = ae(0, ActivationKind::Tanh);
        let w = weight(1);
        let code = a.code(&w).unwrap();
        assert_eq!(code.dims(), w.dims());
    }

    #[test]
    fn masked_channels_are_zero_in_code() {
        let mut a = ae(2, ActivationKind::Tanh);
        a.mask.data_mut()[1] = 0.0; // below threshold ⇒ clipped
        a.mask.data_mut()[3] = 5e-5;
        let code = a.code(&weight(3)).unwrap();
        let fan = 18;
        assert!(code.data()[fan..2 * fan].iter().all(|&v| v == 0.0));
        assert!(code.data()[3 * fan..4 * fan].iter().all(|&v| v == 0.0));
        assert!(code.data()[..fan].iter().any(|&v| v != 0.0));
    }

    #[test]
    fn zero_fraction_and_active_channels_agree() {
        let mut a = ae(4, ActivationKind::Tanh);
        a.mask.data_mut()[0] = 0.0;
        assert_eq!(a.zero_fraction(), 0.25);
        assert_eq!(a.active_channels(), vec![1, 2, 3]);
    }

    #[test]
    fn without_mask_disables_gating() {
        let mut a = ae(5, ActivationKind::Tanh).without_mask();
        a.mask.data_mut()[0] = 0.0;
        assert_eq!(a.zero_fraction(), 0.0);
        assert_eq!(a.active_channels().len(), 4);
        let code = a.code(&weight(6)).unwrap();
        assert!(code.data()[..18].iter().any(|&v| v != 0.0));
    }

    #[test]
    fn rejects_mismatched_weight() {
        let a = ae(7, ActivationKind::Tanh);
        assert!(a.code(&Tensor::zeros(&[4, 2, 5, 5])).is_err());
        assert!(a.code(&Tensor::zeros(&[3, 2, 3, 3])).is_err());
        assert!(a.reconstruct(&Tensor::zeros(&[8])).is_err());
    }

    #[test]
    fn reconstruction_loss_decreases_under_training() {
        // With νprune = 0 the autoencoder is a plain reconstruction problem;
        // Lrec must drop substantially.
        let mut a = ae(8, ActivationKind::Tanh);
        let w = weight(9).scale(0.5); // keep inside tanh's invertible range
        let first = a.step(&w, 0.0, 0.0).unwrap().l_rec;
        let mut last = first;
        for _ in 0..1500 {
            last = a.step(&w, 0.05, 0.0).unwrap().l_rec;
        }
        assert!(
            last < 0.35 * first,
            "Lrec should shrink: first {first}, last {last}"
        );
    }

    #[test]
    fn prune_pressure_drives_mask_to_zero() {
        // The SGD step on |m| oscillates around zero with amplitude
        // lr·ν/Co, so the clip threshold must exceed that amplitude for the
        // channel to stay in the dead zone — the same lr/t interplay the
        // paper's Setup 3 explores.
        let mut a = WeightAutoencoder::new(
            2,
            4,
            3,
            Init::Xavier,
            ActivationKind::Tanh,
            0.05,
            &mut Rng::new(10),
        );
        let w = weight(11);
        for _ in 0..3000 {
            a.step(&w, 3e-3, 1.0).unwrap();
        }
        assert!(
            a.zero_fraction() > 0.0,
            "sustained pressure should clip some channels (mask: {:?})",
            a.mask.data()
        );
    }

    #[test]
    fn no_pressure_keeps_all_channels() {
        let mut a = ae(12, ActivationKind::Tanh);
        let w = weight(13);
        for _ in 0..200 {
            a.step(&w, 0.01, 0.0).unwrap();
        }
        // Reconstruction alone has no reason to kill channels outright.
        assert_eq!(a.zero_fraction(), 0.0);
    }

    /// Flattens (enc, dec, mask) into one vector so a single gradcheck can
    /// cover all three parameter groups.
    fn gradcheck_packed(sigma: ActivationKind) {
        let base = ae(14, sigma);
        let w = weight(15);
        let nu = 0.3;
        let co = 4;
        let pack = |a: &WeightAutoencoder| {
            let mut v = a.enc.data().to_vec();
            v.extend_from_slice(a.dec.data());
            v.extend_from_slice(a.mask.data());
            Tensor::from_vec(v, &[co * co * 2 + co]).unwrap()
        };
        let unpack = |t: &Tensor| {
            let mut a = base.clone();
            let d = t.data();
            a.enc = Tensor::from_vec(d[..co * co].to_vec(), &[co, co]).unwrap();
            a.dec = Tensor::from_vec(d[co * co..2 * co * co].to_vec(), &[co, co]).unwrap();
            a.mask = Tensor::from_vec(d[2 * co * co..].to_vec(), &[co]).unwrap();
            a
        };
        let packed = pack(&base);
        let (analytic, numeric) = gradcheck::input_gradients(
            &packed,
            |p| {
                let a = unpack(p);
                let code = a.code(&w)?;
                let rec = a.reconstruct(&code)?;
                let wmat = w.reshape(&[co, 18])?;
                let rmat = rec.reshape(&[co, 18])?;
                let (l_rec, _) = alf_nn::loss::mse_loss(&rmat, &wmat)?;
                Ok(l_rec + nu * a.mask.mean_abs())
            },
            |p| {
                let mut a = unpack(p);
                // Recover the gradient from the SGD update at lr = 1.
                let before = pack(&a);
                a.step(&w, 1.0, nu)?;
                let after = pack(&a);
                before.sub(&after)
            },
        )
        .unwrap();
        gradcheck::assert_close(&analytic, &numeric, 3e-2);
    }

    #[test]
    fn gradients_match_finite_differences_tanh() {
        gradcheck_packed(ActivationKind::Tanh);
    }

    #[test]
    fn gradients_match_finite_differences_sigmoid() {
        gradcheck_packed(ActivationKind::Sigmoid);
    }

    #[test]
    fn clipped_channel_still_receives_gradient_via_ste() {
        // A mask entry inside the dead zone would get zero gradient from the
        // true derivative of the clip; the STE lets it keep learning so the
        // channel can recover (paper §III-A).
        let mut a = ae(16, ActivationKind::Tanh);
        a.mask.data_mut()[2] = 1e-5; // clipped (t = 1e-4)
        let before = a.mask.data()[2];
        a.step(&weight(17), 0.1, 0.0).unwrap();
        assert_ne!(a.mask.data()[2], before, "STE must update clipped entries");
    }

    #[test]
    fn backproject_matches_finite_differences() {
        // The no-STE chain gradient must be the true derivative of
        // 0.5·‖code(W)‖² w.r.t. W (for that loss, g_code = code).
        let base = ae(20, ActivationKind::Tanh);
        let w0 = weight(21).scale(0.5);
        let (analytic, numeric) = gradcheck::input_gradients(
            &w0,
            |w| Ok(0.5 * base.code(w)?.sq_norm()),
            |w| {
                let code = base.code(w)?;
                base.backproject_task_grad(w, &code)
            },
        )
        .unwrap();
        gradcheck::assert_close(&analytic, &numeric, 3e-2);
    }

    #[test]
    fn backproject_zeroes_gradient_of_clipped_channels() {
        // §III-B's argument: without the STE, clipped mask entries zeroise
        // the gradient flowing back to W through those code channels.
        let mut a = ae(22, ActivationKind::Tanh);
        for j in 0..4 {
            a.set_mask_value(j, 0.0); // everything clipped
        }
        let w = weight(23);
        let g_code = Tensor::ones(w.dims());
        let g_w = a.backproject_task_grad(&w, &g_code).unwrap();
        assert_eq!(
            g_w.sq_norm(),
            0.0,
            "fully-clipped mask must kill the chain gradient"
        );
    }
}
