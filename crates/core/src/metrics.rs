//! Parameter and operation accounting.
//!
//! The paper reports `Params` (trainable convolution weights) and `OPs`
//! (multiply *and* accumulate counted separately, i.e. `OPs = 2·MACs`) "for
//! Conv layers only" (Table II). This module reproduces that accounting
//! exactly; the unit tests check the paper's own numbers (Plain-20 /
//! ResNet-20: 0.27 M params, 81.1 M OPs at 32×32).

use serde::{Deserialize, Serialize};

/// Geometry of one executed convolution layer.
///
/// Everything the cost model (and the accelerator model in `alf-hwmodel`)
/// needs to know about a layer: channel counts, kernel, stride and the
/// *output* spatial size.
///
/// # Example
///
/// ```
/// use alf_core::ConvShape;
///
/// // Plain-20's first layer: 3→16, 3×3, on 32×32 CIFAR images.
/// let conv1 = ConvShape::new("conv1", 3, 16, 3, 1, 32, 32);
/// assert_eq!(conv1.params(), 432);
/// assert_eq!(conv1.macs(), 432 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvShape {
    /// Layer name (e.g. `conv311` in the paper's Fig. 3 notation).
    pub name: String,
    /// Input channels `Ci`.
    pub c_in: usize,
    /// Output channels `Co`.
    pub c_out: usize,
    /// Square kernel size `K`.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Output height `Ho`.
    pub h_out: usize,
    /// Output width `Wo`.
    pub w_out: usize,
}

impl ConvShape {
    /// Creates a layer geometry record.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        h_out: usize,
        w_out: usize,
    ) -> Self {
        Self {
            name: name.into(),
            c_in,
            c_out,
            kernel,
            stride,
            h_out,
            w_out,
        }
    }

    /// Trainable weight count `Ci·Co·K²` (biases excluded, matching the
    /// paper's conv-only accounting).
    pub fn params(&self) -> u64 {
        (self.c_in * self.c_out * self.kernel * self.kernel) as u64
    }

    /// Multiply–accumulate count for one inference:
    /// `Ci·Co·K²·Ho·Wo`.
    pub fn macs(&self) -> u64 {
        self.params() * (self.h_out * self.w_out) as u64
    }

    /// Operations, counting multiply and add separately (`2·MACs`) — the
    /// paper's `OPs` metric.
    pub fn ops(&self) -> u64 {
        2 * self.macs()
    }

    /// Input spatial height implied by the output size and stride (the
    /// `floor` inverse used by the accelerator model).
    pub fn h_in(&self) -> usize {
        self.h_out * self.stride
    }

    /// Input spatial width implied by the output size and stride.
    pub fn w_in(&self) -> usize {
        self.w_out * self.stride
    }

    /// The paper's `Ccode,max` bound (Eq. 2): the largest code size for
    /// which an ALF block (code conv + 1×1 expansion) is cheaper than the
    /// standard convolution it replaces.
    ///
    /// `Ccode,max = ⌊ Ci·Co·K² / (Ci·K² + Co) ⌋`
    pub fn c_code_max(&self) -> usize {
        let k2 = self.kernel * self.kernel;
        (self.c_in * self.c_out * k2) / (self.c_in * k2 + self.c_out)
    }

    /// Params of the ALF-block replacement with `c_code` retained filters:
    /// code conv `Ci·K²·Ccode` plus expansion `Ccode·Co`.
    pub fn alf_params(&self, c_code: usize) -> u64 {
        (self.c_in * self.kernel * self.kernel * c_code + c_code * self.c_out) as u64
    }

    /// MACs of the ALF-block replacement with `c_code` retained filters.
    pub fn alf_macs(&self, c_code: usize) -> u64 {
        let hw = (self.h_out * self.w_out) as u64;
        (self.c_in * self.kernel * self.kernel * c_code) as u64 * hw
            + (c_code * self.c_out) as u64 * hw
    }

    /// OPs of the ALF-block replacement (`2·MACs`).
    pub fn alf_ops(&self, c_code: usize) -> u64 {
        2 * self.alf_macs(c_code)
    }
}

/// Aggregate cost of a network: totals of [`ConvShape`] layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NetworkCost {
    /// Total trainable parameters.
    pub params: u64,
    /// Total MACs for one inference.
    pub macs: u64,
}

impl NetworkCost {
    /// Sums the standard-convolution cost of a layer list.
    pub fn of_layers<'a>(layers: impl IntoIterator<Item = &'a ConvShape>) -> Self {
        layers.into_iter().fold(Self::default(), |acc, l| Self {
            params: acc.params + l.params(),
            macs: acc.macs + l.macs(),
        })
    }

    /// Sums the ALF-compressed cost of `(layer, c_code)` pairs.
    pub fn of_alf_layers<'a>(layers: impl IntoIterator<Item = (&'a ConvShape, usize)>) -> Self {
        layers
            .into_iter()
            .fold(Self::default(), |acc, (l, c)| Self {
                params: acc.params + l.alf_params(c),
                macs: acc.macs + l.alf_macs(c),
            })
    }

    /// OPs (`2·MACs`).
    pub fn ops(&self) -> u64 {
        2 * self.macs
    }

    /// Relative reduction of `self` w.r.t. a baseline, in percent
    /// (positive = smaller than baseline).
    pub fn reduction_vs(&self, baseline: &NetworkCost) -> (f64, f64) {
        let pct = |ours: u64, base: u64| {
            if base == 0 {
                0.0
            } else {
                100.0 * (1.0 - ours as f64 / base as f64)
            }
        };
        (
            pct(self.params, baseline.params),
            pct(self.macs, baseline.macs),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::geometry;

    #[test]
    fn conv_shape_arithmetic() {
        let l = ConvShape::new("l", 16, 32, 3, 2, 16, 16);
        assert_eq!(l.params(), 16 * 32 * 9);
        assert_eq!(l.macs(), 16 * 32 * 9 * 256);
        assert_eq!(l.ops(), 2 * l.macs());
        assert_eq!(l.h_in(), 32);
    }

    #[test]
    fn c_code_max_matches_eq2() {
        // Eq. 2 with Ci=Co=16, K=3: 16·16·9 / (16·9 + 16) = 2304/160 = 14.4 → 14.
        let l = ConvShape::new("l", 16, 16, 3, 1, 32, 32);
        assert_eq!(l.c_code_max(), 14);
        // 1×1 conv: Ci·Co / (Ci + Co).
        let pw = ConvShape::new("pw", 64, 256, 1, 1, 8, 8);
        assert_eq!(pw.c_code_max(), 64 * 256 / (64 + 256));
    }

    #[test]
    fn alf_block_cheaper_iff_code_below_bound() {
        let l = ConvShape::new("l", 16, 16, 3, 1, 32, 32);
        let bound = l.c_code_max();
        assert!(l.alf_ops(bound) <= l.ops());
        assert!(l.alf_ops(bound + 1) > l.ops());
        assert!(l.alf_params(bound) <= l.params());
    }

    #[test]
    fn paper_plain20_totals() {
        // Table II: Plain-20 / ResNet-20 → 0.27 M params, 81.1 M OPs
        // (conv layers only).
        let layers = geometry::plain20_layers(32, 3);
        let cost = NetworkCost::of_layers(&layers);
        assert_eq!(layers.len(), 19);
        assert!(
            (cost.params as f64 / 1e6 - 0.27).abs() < 0.01,
            "{}",
            cost.params
        );
        assert!(
            (cost.ops() as f64 / 1e6 - 81.1).abs() < 1.0,
            "{} MOPs",
            cost.ops() as f64 / 1e6
        );
    }

    #[test]
    fn reduction_percentages() {
        let base = NetworkCost {
            params: 1000,
            macs: 2000,
        };
        let ours = NetworkCost {
            params: 300,
            macs: 780,
        };
        let (dp, dm) = ours.reduction_vs(&base);
        assert!((dp - 70.0).abs() < 1e-9);
        assert!((dm - 61.0).abs() < 1e-9);
    }

    #[test]
    fn of_alf_layers_sums_pairs() {
        let l = ConvShape::new("l", 8, 8, 3, 1, 4, 4);
        let cost = NetworkCost::of_alf_layers([(&l, 4)]);
        assert_eq!(cost.params, l.alf_params(4));
        assert_eq!(cost.macs, l.alf_macs(4));
    }
}
