//! ALF: autoencoder-based low-rank filter-sharing (the paper's primary
//! contribution), reproduced in Rust.
//!
//! The crate is organised around the paper's §III:
//!
//! * [`autoencoder`] — the sparse weight autoencoder (`Wenc`, `Wdec`,
//!   trainable mask `M`, clipping, `σae`) with hand-derived gradients
//!   (paper Eq. 3/4/6).
//! * [`block`] — the ALF block: code convolution + optional `σinter` /
//!   `BNinter` + 1×1 expansion layer (paper Eq. 1/2), with the
//!   straight-through estimator routing the task gradient onto `W`
//!   (paper Eq. 5).
//! * [`schedule`] — the pruning-pressure schedule
//!   `νprune = max(0, 1 − exp(m·(θ − prmax)))`.
//! * [`model`] — CNN models whose convolutions are either standard layers
//!   or ALF blocks (Plain-20, ResNet-20, ResNet-18 in [`models`]).
//! * [`train`] — the two-player training loop: task optimizer vs. per-block
//!   autoencoder optimizers.
//! * [`deploy`] — post-training stripping of zero filters and the matching
//!   expansion-layer channels, producing a dense compressed model.
//! * [`metrics`] — Params/OPs accounting (the quantities in Tables II/III)
//!   plus the exact layer geometries of the comparison architectures.
//! * [`explore`] — the configuration-space exploration harness behind
//!   Fig. 2a/2b.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autoencoder;
pub mod block;
pub mod checkpoint;
pub mod deploy;
pub mod explore;
pub mod metrics;
pub mod model;
pub mod models;
pub mod qmodel;
pub mod quant;
pub mod schedule;
pub mod summary;
pub mod train;

pub use autoencoder::{AeStats, WeightAutoencoder};
pub use block::{AlfBlock, AlfBlockConfig};
pub use metrics::{ConvShape, NetworkCost};
pub use model::{CnnModel, ConvKind};
pub use qmodel::QuantizedModel;
pub use quant::{QuantError, QuantReport};
pub use schedule::PruneSchedule;
pub use train::{AlfHyper, AlfTrainer, EpochStats, Evaluator, StateSnapshot, TrainReport};

/// Crate-wide result alias.
pub type Result<T> = alf_tensor::Result<T>;
