//! CNN models whose convolutions are either standard layers or ALF blocks.
//!
//! The paper trains Plain-20/ResNet-20/ResNet-18 where every convolution is
//! replaced by an ALF block. [`CnnModel`] is a small structured container
//! (not a general graph) supporting exactly the topologies in the model
//! zoo: conv units, residual basic-blocks with parameter-free padded
//! shortcuts (He et al.'s option A, so Params match the paper's 0.27 M),
//! pooling and a linear classifier.

use alf_nn::activation::{Activation, ActivationKind};
use alf_nn::conv::Conv2d;
use alf_nn::layer::{Layer, Mode, Param};
use alf_nn::linear::Linear;
use alf_nn::norm::BatchNorm2d;
use alf_nn::pool::{GlobalAvgPool, MaxPool2d};
use alf_nn::{Pass, RunCtx};
use alf_tensor::{ShapeError, Tensor};

use crate::block::AlfBlock;
use crate::metrics::ConvShape;
use crate::Result;

/// A convolution that is either a standard layer, an ALF block, or a
/// deployed (stripped) ALF pair.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // models hold few of these; boxing would obscure the API
pub enum ConvKind {
    /// Plain convolution (vanilla baseline models).
    Standard(Conv2d),
    /// ALF block (code conv + expansion) in training form.
    Alf(AlfBlock),
    /// Deployed ALF block: the zero code filters and the matching
    /// expansion input channels have been stripped (paper §III-C).
    Deployed {
        /// Code convolution with only the surviving `Ccode` filters.
        code: Conv2d,
        /// 1×1 expansion back to the original channel count.
        expansion: Conv2d,
    },
}

impl ConvKind {
    /// Input channels.
    pub fn c_in(&self) -> usize {
        match self {
            ConvKind::Standard(c) => c.c_in(),
            ConvKind::Alf(b) => b.c_in(),
            ConvKind::Deployed { code, .. } => code.c_in(),
        }
    }

    /// Output channels (after expansion for ALF blocks).
    pub fn c_out(&self) -> usize {
        match self {
            ConvKind::Standard(c) => c.c_out(),
            ConvKind::Alf(b) => b.c_out(),
            ConvKind::Deployed { expansion, .. } => expansion.c_out(),
        }
    }

    /// Retained code filters, if this is an ALF-style convolution.
    pub fn c_code(&self) -> Option<usize> {
        match self {
            ConvKind::Standard(_) => None,
            ConvKind::Alf(b) => Some(b.active_filters()),
            ConvKind::Deployed { code, .. } => Some(code.c_out()),
        }
    }

    /// Convolution geometry (of the main/code conv).
    pub fn spec(&self) -> alf_tensor::ops::Conv2dSpec {
        match self {
            ConvKind::Standard(c) => c.spec(),
            ConvKind::Alf(b) => b.conv_spec(),
            ConvKind::Deployed { code, .. } => code.spec(),
        }
    }
}

impl Layer for ConvKind {
    fn forward(&mut self, x: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        match self {
            ConvKind::Standard(c) => c.forward(x, ctx),
            ConvKind::Alf(b) => b.forward(x, ctx),
            ConvKind::Deployed { code, expansion } => {
                let h = code.forward(x, ctx)?;
                expansion.forward(&h, ctx)
            }
        }
    }

    fn backward(&mut self, g: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        match self {
            ConvKind::Standard(c) => c.backward(g, ctx),
            ConvKind::Alf(b) => b.backward(g, ctx),
            ConvKind::Deployed { code, expansion } => {
                let g = expansion.backward(g, ctx)?;
                code.backward(&g, ctx)
            }
        }
    }

    fn visit_params(&mut self, v: &mut dyn FnMut(&mut Param)) {
        match self {
            ConvKind::Standard(c) => c.visit_params(v),
            ConvKind::Alf(b) => b.visit_params(v),
            ConvKind::Deployed { code, expansion } => {
                code.visit_params(v);
                expansion.visit_params(v);
            }
        }
    }

    fn visit_params_ref(&self, v: &mut dyn FnMut(&Param)) {
        match self {
            ConvKind::Standard(c) => c.visit_params_ref(v),
            ConvKind::Alf(b) => b.visit_params_ref(v),
            ConvKind::Deployed { code, expansion } => {
                code.visit_params_ref(v);
                expansion.visit_params_ref(v);
            }
        }
    }

    fn visit_state(&mut self, v: &mut dyn FnMut(&mut Tensor)) {
        match self {
            ConvKind::Standard(c) => c.visit_state(v),
            ConvKind::Alf(b) => b.visit_state(v),
            ConvKind::Deployed { code, expansion } => {
                code.visit_state(v);
                expansion.visit_state(v);
            }
        }
    }

    fn visit_state_ref(&self, v: &mut dyn FnMut(&Tensor)) {
        match self {
            ConvKind::Standard(c) => c.visit_state_ref(v),
            ConvKind::Alf(b) => b.visit_state_ref(v),
            ConvKind::Deployed { code, expansion } => {
                code.visit_state_ref(v);
                expansion.visit_state_ref(v);
            }
        }
    }
}

/// Named conv → BN → (optional) activation unit.
///
/// The batch-norm layer is optional: training-form units always carry
/// one, but BN folding at deploy time (`deploy::Pipeline`) pushes the
/// normalisation into the conv's weight and bias and removes the layer,
/// leaving a pure conv(→act) unit.
#[derive(Debug, Clone)]
pub struct ConvUnit {
    name: String,
    conv: ConvKind,
    bn: Option<BatchNorm2d>,
    act: Option<Activation>,
}

impl ConvUnit {
    /// Creates a unit; `act = None` omits the trailing activation (used by
    /// the second conv of a residual block, which activates after the add).
    pub fn new(name: impl Into<String>, conv: ConvKind, act: Option<ActivationKind>) -> Self {
        let bn = BatchNorm2d::new(conv.c_out());
        Self {
            name: name.into(),
            conv,
            bn: Some(bn),
            act: act.map(Activation::new),
        }
    }

    /// Unit name (the paper's `convXYZ` notation).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The wrapped convolution.
    pub fn conv(&self) -> &ConvKind {
        &self.conv
    }

    /// Mutable access to the wrapped convolution.
    pub fn conv_mut(&mut self) -> &mut ConvKind {
        &mut self.conv
    }

    /// The unit's batch-norm layer; `None` once folded away at deploy.
    pub fn bn(&self) -> Option<&BatchNorm2d> {
        self.bn.as_ref()
    }

    /// Mutable access to the unit's batch-norm layer, when present.
    pub fn bn_mut(&mut self) -> Option<&mut BatchNorm2d> {
        self.bn.as_mut()
    }

    /// Removes and returns the batch-norm layer. The unit then runs
    /// conv(→act) only; the caller (BN folding in `deploy`) is
    /// responsible for having absorbed γ/β/μ/σ² into the conv first.
    pub fn take_bn(&mut self) -> Option<BatchNorm2d> {
        self.bn.take()
    }

    /// The trailing activation kind, if the unit has one.
    pub fn activation(&self) -> Option<ActivationKind> {
        self.act.as_ref().map(Activation::kind)
    }

    /// Silences a set of output channels: zeroes the convolution filters
    /// (standard convs only) and the BN scale/shift, making the channel
    /// output exactly zero — functionally equivalent to removing the
    /// filter while keeping tensor shapes intact. Used by the structured
    /// pruning baselines.
    ///
    /// # Panics
    ///
    /// Panics if any channel index is out of range.
    pub fn zero_output_channels(&mut self, channels: &[usize]) {
        let c_out = self.conv.c_out();
        for &ch in channels {
            assert!(ch < c_out, "channel {ch} out of range ({c_out})");
            if let ConvKind::Standard(conv) = &mut self.conv {
                let w = conv.weight_mut();
                let fan = w.len() / c_out;
                for v in &mut w.data_mut()[ch * fan..(ch + 1) * fan] {
                    *v = 0.0;
                }
            }
            if let Some(bn) = &mut self.bn {
                bn.scale_mut().data_mut()[ch] = 0.0;
                bn.shift_mut().data_mut()[ch] = 0.0;
            }
        }
    }
}

impl Layer for ConvUnit {
    fn forward(&mut self, x: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        // The unit scopes itself so profiles report the paper's `convXYZ`
        // names rather than anonymous conv/BN/act fragments.
        let token = ctx.scope_start();
        let run = |this: &mut Self, ctx: &mut RunCtx| -> Result<Tensor> {
            let mut h = this.conv.forward(x, ctx)?;
            if let Some(bn) = &mut this.bn {
                h = bn.forward(&h, ctx)?;
            }
            if let Some(act) = &mut this.act {
                h = act.forward(&h, ctx)?;
            }
            Ok(h)
        };
        let out = run(self, ctx);
        ctx.scope_end(token, &self.name, Pass::Forward);
        out
    }

    fn backward(&mut self, g: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let token = ctx.scope_start();
        let run = |this: &mut Self, ctx: &mut RunCtx| -> Result<Tensor> {
            let mut g = g.clone();
            if let Some(act) = &mut this.act {
                g = act.backward(&g, ctx)?;
            }
            if let Some(bn) = &mut this.bn {
                g = bn.backward(&g, ctx)?;
            }
            this.conv.backward(&g, ctx)
        };
        let out = run(self, ctx);
        ctx.scope_end(token, &self.name, Pass::Backward);
        out
    }

    fn visit_params(&mut self, v: &mut dyn FnMut(&mut Param)) {
        self.conv.visit_params(v);
        if let Some(bn) = &mut self.bn {
            bn.visit_params(v);
        }
    }

    fn visit_params_ref(&self, v: &mut dyn FnMut(&Param)) {
        self.conv.visit_params_ref(v);
        if let Some(bn) = &self.bn {
            bn.visit_params_ref(v);
        }
    }

    fn visit_state(&mut self, v: &mut dyn FnMut(&mut Tensor)) {
        self.conv.visit_state(v);
        if let Some(bn) = &mut self.bn {
            bn.visit_state(v);
        }
    }

    fn visit_state_ref(&self, v: &mut dyn FnMut(&Tensor)) {
        self.conv.visit_state_ref(v);
        if let Some(bn) = &self.bn {
            bn.visit_state_ref(v);
        }
    }
}

/// Parameter-free shortcut for strided residual stages: subsample spatially
/// by the stride and zero-pad the channel dimension (He et al. option A).
#[derive(Debug, Clone)]
pub struct PadShortcut {
    stride: usize,
    c_out: usize,
    input_dims: Option<[usize; 4]>,
}

impl PadShortcut {
    /// Creates a shortcut producing `c_out` channels at `1/stride` spatial
    /// resolution.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn new(stride: usize, c_out: usize) -> Self {
        assert!(stride > 0);
        Self {
            stride,
            c_out,
            input_dims: None,
        }
    }
}

impl Layer for PadShortcut {
    fn forward(&mut self, x: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let (n, c, h, w) = match x.dims() {
            &[n, c, h, w] => (n, c, h, w),
            _ => {
                return Err(ShapeError::new(
                    "pad_shortcut",
                    format!("expected rank 4, got {}", x.shape()),
                ))
            }
        };
        if c > self.c_out {
            return Err(ShapeError::new(
                "pad_shortcut",
                format!("cannot shrink channels {c} → {}", self.c_out),
            ));
        }
        let (ho, wo) = (h.div_ceil(self.stride), w.div_ceil(self.stride));
        let mut out = Tensor::zeros(&[n, self.c_out, ho, wo]);
        for b in 0..n {
            for ch in 0..c {
                for y in 0..ho {
                    for xw in 0..wo {
                        *out.at_mut(&[b, ch, y, xw]) =
                            x.at(&[b, ch, y * self.stride, xw * self.stride]);
                    }
                }
            }
        }
        ctx.count_bytes(4 * (x.len() + out.len()) as u64);
        self.input_dims = (ctx.mode() == Mode::Train).then_some([n, c, h, w]);
        Ok(out)
    }

    fn backward(&mut self, g: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let [n, c, h, w] = self
            .input_dims
            .ok_or_else(|| ShapeError::new("pad_shortcut", "backward called before forward"))?;
        let mut out = Tensor::zeros(&[n, c, h, w]);
        let (ho, wo) = (h.div_ceil(self.stride), w.div_ceil(self.stride));
        for b in 0..n {
            for ch in 0..c {
                for y in 0..ho {
                    for xw in 0..wo {
                        *out.at_mut(&[b, ch, y * self.stride, xw * self.stride]) =
                            g.at(&[b, ch, y, xw]);
                    }
                }
            }
        }
        ctx.count_bytes(4 * (g.len() + out.len()) as u64);
        Ok(out)
    }
}

/// Residual basic block: `relu(bn2(conv2(relu(bn1(conv1 x)))) + shortcut)`.
#[derive(Debug, Clone)]
pub struct ResidualUnit {
    a: ConvUnit,
    b: ConvUnit,
    shortcut: Option<PadShortcut>,
    final_act: Activation,
    cached_skip: Option<Tensor>,
}

impl ResidualUnit {
    /// First conv unit (conv → BN → ReLU).
    pub fn a(&self) -> &ConvUnit {
        &self.a
    }

    /// Mutable access to the first conv unit.
    pub fn a_mut(&mut self) -> &mut ConvUnit {
        &mut self.a
    }

    /// Second conv unit (conv → BN, activation after the add).
    pub fn b(&self) -> &ConvUnit {
        &self.b
    }

    /// Mutable access to the second conv unit.
    pub fn b_mut(&mut self) -> &mut ConvUnit {
        &mut self.b
    }

    /// Mutable access to both conv units at once.
    pub fn units_mut(&mut self) -> (&mut ConvUnit, &mut ConvUnit) {
        (&mut self.a, &mut self.b)
    }

    /// Creates a basic block from its two conv units; `shortcut` is `None`
    /// for identity skips.
    pub fn new(a: ConvUnit, b: ConvUnit, shortcut: Option<PadShortcut>) -> Self {
        Self {
            a,
            b,
            shortcut,
            final_act: Activation::new(ActivationKind::Relu),
            cached_skip: None,
        }
    }
}

impl Layer for ResidualUnit {
    fn forward(&mut self, x: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let skip = match &mut self.shortcut {
            Some(s) => s.forward(x, ctx)?,
            None => x.clone(),
        };
        let h = self.a.forward(x, ctx)?;
        let h = self.b.forward(&h, ctx)?;
        let sum = h.add(&skip)?;
        self.cached_skip = (ctx.mode() == Mode::Train).then_some(skip);
        self.final_act.forward(&sum, ctx)
    }

    fn backward(&mut self, g: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let g = self.final_act.backward(g, ctx)?;
        // The add fans the gradient out to both branches.
        let g_skip = match &mut self.shortcut {
            Some(s) => s.backward(&g, ctx)?,
            None => g.clone(),
        };
        let g_main = self.b.backward(&g, ctx)?;
        let g_main = self.a.backward(&g_main, ctx)?;
        g_main.add(&g_skip)
    }

    fn visit_params(&mut self, v: &mut dyn FnMut(&mut Param)) {
        self.a.visit_params(v);
        self.b.visit_params(v);
    }

    fn visit_params_ref(&self, v: &mut dyn FnMut(&Param)) {
        self.a.visit_params_ref(v);
        self.b.visit_params_ref(v);
    }

    fn visit_state(&mut self, v: &mut dyn FnMut(&mut Tensor)) {
        self.a.visit_state(v);
        self.b.visit_state(v);
    }

    fn visit_state_ref(&self, v: &mut dyn FnMut(&Tensor)) {
        self.a.visit_state_ref(v);
        self.b.visit_state_ref(v);
    }
}

/// SqueezeNet-style fire module: a 1×1 squeeze conv feeding two parallel
/// expand convs (1×1 and 3×3) whose outputs concatenate along channels.
#[derive(Debug, Clone)]
pub struct FireUnit {
    squeeze: ConvUnit,
    expand1: ConvUnit,
    expand3: ConvUnit,
}

impl FireUnit {
    /// Creates a fire module from its three conv units. The expand units
    /// must take the squeeze unit's output channels as input and produce
    /// equal spatial sizes (1×1 and 3×3-pad-1 convs at stride 1 do).
    pub fn new(squeeze: ConvUnit, expand1: ConvUnit, expand3: ConvUnit) -> Self {
        Self {
            squeeze,
            expand1,
            expand3,
        }
    }

    /// Total output channels (both expand branches concatenated).
    pub fn c_out(&self) -> usize {
        self.expand1.conv().c_out() + self.expand3.conv().c_out()
    }

    pub(crate) fn conv_units(&self) -> [&ConvUnit; 3] {
        [&self.squeeze, &self.expand1, &self.expand3]
    }

    pub(crate) fn conv_units_mut(&mut self) -> [&mut ConvUnit; 3] {
        [&mut self.squeeze, &mut self.expand1, &mut self.expand3]
    }
}

impl Layer for FireUnit {
    fn forward(&mut self, x: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let s = self.squeeze.forward(x, ctx)?;
        let a = self.expand1.forward(&s, ctx)?;
        let b = self.expand3.forward(&s, ctx)?;
        alf_tensor::ops::concat_channels(&a, &b)
    }

    fn backward(&mut self, g: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let c1 = self.expand1.conv().c_out();
        let (ga, gb) = alf_tensor::ops::split_channels(g, c1)?;
        let gs_a = self.expand1.backward(&ga, ctx)?;
        let gs_b = self.expand3.backward(&gb, ctx)?;
        let gs = gs_a.add(&gs_b)?;
        self.squeeze.backward(&gs, ctx)
    }

    fn visit_params(&mut self, v: &mut dyn FnMut(&mut Param)) {
        self.squeeze.visit_params(v);
        self.expand1.visit_params(v);
        self.expand3.visit_params(v);
    }

    fn visit_params_ref(&self, v: &mut dyn FnMut(&Param)) {
        self.squeeze.visit_params_ref(v);
        self.expand1.visit_params_ref(v);
        self.expand3.visit_params_ref(v);
    }

    fn visit_state(&mut self, v: &mut dyn FnMut(&mut Tensor)) {
        self.squeeze.visit_state(v);
        self.expand1.visit_state(v);
        self.expand3.visit_state(v);
    }

    fn visit_state_ref(&self, v: &mut dyn FnMut(&Tensor)) {
        self.squeeze.visit_state_ref(v);
        self.expand1.visit_state_ref(v);
        self.expand3.visit_state_ref(v);
    }
}

/// One structural element of a [`CnnModel`].
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // models hold few of these; boxing would obscure the API
pub enum Unit {
    /// conv → BN → activation.
    Conv(ConvUnit),
    /// Residual basic block.
    Residual(ResidualUnit),
    /// SqueezeNet fire module.
    Fire(FireUnit),
    /// Max pooling (ImageNet-geometry stems).
    MaxPool(MaxPool2d),
    /// Global average pooling (`[n,c,h,w] → [n,c]`).
    GlobalPool(GlobalAvgPool),
    /// Final linear classifier.
    Classifier(Linear),
}

impl Unit {
    /// The single place that maps a `Unit` variant to its inner [`Layer`],
    /// plus a profiling label for the anonymous (un-named) units. Named
    /// units — everything built from [`ConvUnit`]s — scope themselves, so
    /// they return `None` here.
    fn inner_mut(&mut self) -> (&mut dyn Layer, Option<&'static str>) {
        match self {
            Unit::Conv(cu) => (cu, None),
            Unit::Residual(r) => (r, None),
            Unit::Fire(f) => (f, None),
            Unit::MaxPool(mp) => (mp, Some("maxpool")),
            Unit::GlobalPool(gp) => (gp, Some("global_pool")),
            Unit::Classifier(fc) => (fc, Some("fc")),
        }
    }

    /// Shared-borrow counterpart of [`Unit::inner_mut`] for the read-only
    /// visitors.
    fn inner(&self) -> &dyn Layer {
        match self {
            Unit::Conv(cu) => cu,
            Unit::Residual(r) => r,
            Unit::Fire(f) => f,
            Unit::MaxPool(mp) => mp,
            Unit::GlobalPool(gp) => gp,
            Unit::Classifier(fc) => fc,
        }
    }
}

impl Layer for Unit {
    fn forward(&mut self, x: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let (layer, label) = self.inner_mut();
        match label {
            Some(name) => {
                let token = ctx.scope_start();
                let out = layer.forward(x, ctx);
                ctx.scope_end(token, name, Pass::Forward);
                out
            }
            None => layer.forward(x, ctx),
        }
    }

    fn backward(&mut self, g: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let (layer, label) = self.inner_mut();
        match label {
            Some(name) => {
                let token = ctx.scope_start();
                let out = layer.backward(g, ctx);
                ctx.scope_end(token, name, Pass::Backward);
                out
            }
            None => layer.backward(g, ctx),
        }
    }

    fn visit_params(&mut self, v: &mut dyn FnMut(&mut Param)) {
        self.inner_mut().0.visit_params(v);
    }

    fn visit_params_ref(&self, v: &mut dyn FnMut(&Param)) {
        self.inner().visit_params_ref(v);
    }

    fn visit_state(&mut self, v: &mut dyn FnMut(&mut Tensor)) {
        self.inner_mut().0.visit_state(v);
    }

    fn visit_state_ref(&self, v: &mut dyn FnMut(&Tensor)) {
        self.inner().visit_state_ref(v);
    }
}

/// A CNN assembled from [`Unit`]s, trained by the two-player loop in
/// [`crate::train`].
///
/// # Example
///
/// ```
/// use alf_core::models::plain20;
/// use alf_nn::{Layer, RunCtx};
/// use alf_tensor::Tensor;
///
/// # fn main() -> alf_core::Result<()> {
/// let mut ctx = RunCtx::eval();
/// let mut model = plain20(10, 8)?;
/// let logits = model.forward(&Tensor::zeros(&[2, 3, 32, 32]), &mut ctx)?;
/// assert_eq!(logits.dims(), &[2, 10]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CnnModel {
    name: String,
    units: Vec<Unit>,
    num_classes: usize,
}

impl CnnModel {
    /// Assembles a model from units.
    ///
    /// # Errors
    ///
    /// Returns an error when the unit list has no classifier.
    pub fn from_units(
        name: impl Into<String>,
        units: Vec<Unit>,
        num_classes: usize,
    ) -> Result<Self> {
        if !units.iter().any(|u| matches!(u, Unit::Classifier(_))) {
            return Err(ShapeError::new("cnn model", "no classifier unit"));
        }
        Ok(Self {
            name: name.into(),
            units,
            num_classes,
        })
    }

    /// Model name (e.g. `plain20`, `alf-resnet20`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The structural units.
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// Mutable access to the structural units (used by deployment).
    pub fn units_mut(&mut self) -> &mut [Unit] {
        &mut self.units
    }

    /// All convolutions in execution order (residual blocks contribute
    /// their two convs in `a`, `b` order) — parallel to
    /// [`CnnModel::conv_shapes`].
    pub fn conv_kinds(&self) -> Vec<&ConvKind> {
        let mut out = Vec::new();
        for unit in &self.units {
            match unit {
                Unit::Conv(cu) => out.push(cu.conv()),
                Unit::Residual(r) => {
                    out.push(r.a.conv());
                    out.push(r.b.conv());
                }
                Unit::Fire(f) => out.extend(f.conv_units().map(ConvUnit::conv)),
                _ => {}
            }
        }
        out
    }

    /// Renames the model (deployment marks compressed models).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// All conv units in execution order (residual blocks contribute
    /// `a`, `b`) — parallel to [`CnnModel::conv_shapes`].
    pub fn conv_units(&self) -> Vec<&ConvUnit> {
        let mut out = Vec::new();
        for unit in &self.units {
            match unit {
                Unit::Conv(cu) => out.push(cu),
                Unit::Residual(r) => {
                    out.push(&r.a);
                    out.push(&r.b);
                }
                Unit::Fire(f) => out.extend(f.conv_units()),
                _ => {}
            }
        }
        out
    }

    /// All conv units in execution order, mutably (residual blocks
    /// contribute `a`, `b`) — parallel to [`CnnModel::conv_shapes`]. Used
    /// by the pruning baselines for model surgery.
    pub fn conv_units_mut(&mut self) -> Vec<&mut ConvUnit> {
        let mut out = Vec::new();
        for unit in &mut self.units {
            match unit {
                Unit::Conv(cu) => out.push(cu),
                Unit::Residual(r) => {
                    let (a, b) = r.units_mut();
                    out.push(a);
                    out.push(b);
                }
                Unit::Fire(f) => out.extend(f.conv_units_mut()),
                _ => {}
            }
        }
        out
    }

    /// All ALF blocks in network order (read-only) — the hook telemetry
    /// consumers use to size per-block signal arrays.
    pub fn alf_blocks(&self) -> Vec<&AlfBlock> {
        let mut out = Vec::new();
        for unit in &self.units {
            match unit {
                Unit::Conv(cu) => {
                    if let ConvKind::Alf(b) = cu.conv() {
                        out.push(b);
                    }
                }
                Unit::Residual(r) => {
                    if let ConvKind::Alf(b) = r.a.conv() {
                        out.push(b);
                    }
                    if let ConvKind::Alf(b) = r.b.conv() {
                        out.push(b);
                    }
                }
                Unit::Fire(f) => {
                    for cu in f.conv_units() {
                        if let ConvKind::Alf(b) = cu.conv() {
                            out.push(b);
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Per-parameter live-row descriptors for the model's flat parameter
    /// walk, in [`CnnModel::visit_params`] order.
    ///
    /// Entry `i` is `Some(rows)` when flat parameter `i` is an ALF
    /// block's raw filter bank whose gated STE guarantees pruned rows of
    /// the gradient are **exactly zero** (`config.ste` with the mask
    /// enabled): `rows` then lists the surviving original-filter indices
    /// — the block's [`ActiveRows`](alf_tensor::ops::ActiveRows) over
    /// code rows mapped through its kept-channel table — against the raw
    /// bank's full row count. Every other parameter (and every block
    /// without that guarantee) is `None`. This is the descriptor table
    /// the `alf-dist` sparse gradient codec keys its row elision off;
    /// losslessness relies precisely on the exact-zero guarantee pinned
    /// by `block::tests::gated_ste_discards_pruned_rows_in_both_modes`.
    pub fn param_active_rows(&self) -> Vec<Option<alf_tensor::ops::ActiveRows>> {
        // Map each ALF block's raw weight tensor to its descriptor by
        // data-pointer identity, then walk the flat parameter order.
        let mut by_ptr: Vec<(*const f32, alf_tensor::ops::ActiveRows)> = Vec::new();
        for block in self.alf_blocks() {
            let config = block.config();
            let ae = block.autoencoder();
            if !(config.ste && ae.mask_enabled()) {
                continue;
            }
            let rows = ae.active_rows();
            let kept = ae.kept_channels();
            let total = block.raw_weight().dims()[0];
            let mapped: Vec<usize> = rows.indices().iter().map(|&i| kept[i]).collect();
            // kept_channels is strictly increasing, so the mapped list
            // is a valid descriptor over the raw bank's rows.
            let Ok(desc) = alf_tensor::ops::ActiveRows::from_indices(mapped, total) else {
                continue;
            };
            by_ptr.push((block.raw_weight().data().as_ptr(), desc));
        }
        let mut out = Vec::new();
        self.visit_params_ref(&mut |p| {
            let ptr = p.value.data().as_ptr();
            out.push(
                by_ptr
                    .iter()
                    .find(|(w, _)| std::ptr::eq(*w, ptr))
                    .map(|(_, d)| d.clone()),
            );
        });
        out
    }

    /// Iterates over all ALF blocks (in network order) mutably — the hook
    /// the autoencoder player uses.
    pub fn alf_blocks_mut(&mut self) -> Vec<&mut AlfBlock> {
        let mut out = Vec::new();
        for unit in &mut self.units {
            match unit {
                Unit::Conv(cu) => {
                    if let ConvKind::Alf(b) = cu.conv_mut() {
                        out.push(b);
                    }
                }
                Unit::Residual(r) => {
                    if let ConvKind::Alf(b) = r.a.conv_mut() {
                        out.push(b);
                    }
                    if let ConvKind::Alf(b) = r.b.conv_mut() {
                        out.push(b);
                    }
                }
                Unit::Fire(f) => {
                    for cu in f.conv_units_mut() {
                        if let ConvKind::Alf(b) = cu.conv_mut() {
                            out.push(b);
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Toggles the occupancy-aware execution paths on every ALF block (see
    /// [`AlfBlock::set_sparse_execution`]). Purely a performance switch —
    /// results are bitwise identical either way; benchmarks use `false` as
    /// the dense reference.
    pub fn set_sparse_execution(&mut self, on: bool) {
        for b in self.alf_blocks_mut() {
            b.set_sparse_execution(on);
        }
    }

    /// Runs [`AlfBlock::compact_if_below`] on every ALF block, physically
    /// shrinking blocks whose live occupancy fell strictly below
    /// `occupancy`. Returns how many blocks compacted.
    ///
    /// # Errors
    ///
    /// Propagates gather shape errors from the blocks (cannot happen for
    /// models built by the zoo constructors).
    pub fn compact_blocks_below(&mut self, occupancy: f32) -> Result<usize> {
        let mut n = 0;
        for b in self.alf_blocks_mut() {
            if b.compact_if_below(occupancy)? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// `(name, active, total)` filter statistics for every ALF block.
    pub fn filter_stats(&self) -> Vec<(String, usize, usize)> {
        let mut out = Vec::new();
        let mut record = |cu: &ConvUnit| {
            if let ConvKind::Alf(b) = cu.conv() {
                out.push((cu.name().to_string(), b.active_filters(), b.total_filters()));
            }
        };
        for unit in &self.units {
            match unit {
                Unit::Conv(cu) => record(cu),
                Unit::Residual(r) => {
                    record(&r.a);
                    record(&r.b);
                }
                Unit::Fire(f) => {
                    for cu in f.conv_units() {
                        record(cu);
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Per-ALF-block keep ratio `active / total`, in [`filter_stats`]
    /// order — the form every results job maps onto the paper geometry.
    ///
    /// [`filter_stats`]: CnnModel::filter_stats
    pub fn filter_keep_ratios(&self) -> Vec<f32> {
        self.filter_stats()
            .iter()
            .map(|(_, active, total)| *active as f32 / (*total).max(1) as f32)
            .collect()
    }

    /// Fraction of code filters still active across all ALF blocks
    /// (1.0 for a fully dense model).
    pub fn remaining_filter_fraction(&self) -> f32 {
        let stats = self.filter_stats();
        let (active, total) = stats
            .iter()
            .fold((0usize, 0usize), |(a, t), s| (a + s.1, t + s.2));
        if total == 0 {
            1.0
        } else {
            active as f32 / total as f32
        }
    }

    /// Geometry of every convolution for an input of `h × w` pixels, in
    /// execution order (the input to Params/OPs accounting and the
    /// accelerator model).
    pub fn conv_shapes(&self, mut h: usize, mut w: usize) -> Vec<ConvShape> {
        let mut shapes = Vec::new();
        let mut push = |cu: &ConvUnit, h: &mut usize, w: &mut usize| {
            let spec = cu.conv().spec();
            let (ho, wo) = spec.output_hw(*h, *w);
            shapes.push(ConvShape::new(
                cu.name(),
                cu.conv().c_in(),
                cu.conv().c_out(),
                spec.kernel,
                spec.stride,
                ho,
                wo,
            ));
            *h = ho;
            *w = wo;
        };
        for unit in &self.units {
            match unit {
                Unit::Conv(cu) => push(cu, &mut h, &mut w),
                Unit::Residual(r) => {
                    push(&r.a, &mut h, &mut w);
                    push(&r.b, &mut h, &mut w);
                }
                Unit::Fire(f) => {
                    // Squeeze advances the spatial state (1x1/stride-1 is a
                    // no-op); the parallel expands share it.
                    for cu in f.conv_units() {
                        push(cu, &mut h, &mut w);
                    }
                }
                Unit::MaxPool(mp) => {
                    h /= mp.window();
                    w /= mp.window();
                }
                Unit::GlobalPool(_) | Unit::Classifier(_) => {}
            }
        }
        shapes
    }
}

impl Layer for CnnModel {
    fn forward(&mut self, input: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let mut x = input.clone();
        for unit in &mut self.units {
            x = unit.forward(&x, ctx)?;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let mut g = grad_output.clone();
        for unit in self.units.iter_mut().rev() {
            g = unit.backward(&g, ctx)?;
        }
        Ok(g)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        for unit in &mut self.units {
            unit.visit_params(visitor);
        }
    }

    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Param)) {
        for unit in &self.units {
            unit.visit_params_ref(visitor);
        }
    }

    fn visit_state(&mut self, visitor: &mut dyn FnMut(&mut Tensor)) {
        for unit in &mut self.units {
            unit.visit_state(visitor);
        }
    }

    fn visit_state_ref(&self, visitor: &mut dyn FnMut(&Tensor)) {
        for unit in &self.units {
            unit.visit_state_ref(visitor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alf_tensor::init::Init;
    use alf_tensor::rng::Rng;

    #[test]
    fn pad_shortcut_subsamples_and_pads() {
        let mut ctx = RunCtx::train();
        let mut s = PadShortcut::new(2, 4);
        let x = Tensor::from_fn(&[1, 2, 4, 4], |i| i as f32);
        let y = s.forward(&x, &mut ctx).unwrap();
        assert_eq!(y.dims(), &[1, 4, 2, 2]);
        assert_eq!(y.at(&[0, 0, 0, 0]), x.at(&[0, 0, 0, 0]));
        assert_eq!(y.at(&[0, 0, 1, 1]), x.at(&[0, 0, 2, 2]));
        assert_eq!(y.at(&[0, 3, 1, 1]), 0.0); // padded channel
    }

    #[test]
    fn pad_shortcut_backward_is_adjoint() {
        let mut rng = Rng::new(0);
        let mut ctx = RunCtx::train();
        let mut s = PadShortcut::new(2, 4);
        let x = Tensor::randn(&[2, 2, 4, 4], Init::Rand, &mut rng);
        let y = s.forward(&x, &mut ctx).unwrap();
        let g = Tensor::randn(y.dims(), Init::Rand, &mut rng);
        let gx = s.backward(&g, &mut ctx).unwrap();
        let lhs = y.dot(&g).unwrap();
        let rhs = x.dot(&gx).unwrap();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn pad_shortcut_rejects_shrinking() {
        let mut ctx = RunCtx::eval();
        let mut s = PadShortcut::new(1, 2);
        assert!(s.forward(&Tensor::zeros(&[1, 4, 2, 2]), &mut ctx).is_err());
        assert!(s.forward(&Tensor::zeros(&[4, 2, 2]), &mut ctx).is_err());
    }

    #[test]
    fn model_requires_classifier() {
        assert!(CnnModel::from_units("m", vec![], 2).is_err());
    }

    #[test]
    fn param_active_rows_tracks_masks_in_flat_order() {
        let mut model = crate::models::plain20_alf(
            4,
            8,
            crate::block::AlfBlockConfig {
                threshold: 0.05,
                ..crate::block::AlfBlockConfig::paper_default()
            },
            11,
        )
        .unwrap();
        // Fresh masks: every block fully live, every W descriptor is_all.
        let descs = model.param_active_rows();
        let mut param_lens = Vec::new();
        model.visit_params_ref(&mut |p| param_lens.push(p.value.len()));
        assert_eq!(descs.len(), param_lens.len());
        let blocks = model.alf_blocks().len();
        assert_eq!(descs.iter().filter(|d| d.is_some()).count(), blocks);
        for d in descs.iter().flatten() {
            assert!(d.is_all());
        }
        // Prune two channels of the first block: its descriptor (and only
        // its) loses exactly those original rows.
        {
            let mut bs = model.alf_blocks_mut();
            bs[0].autoencoder_mut().set_mask_value(1, 0.01);
            bs[0].autoencoder_mut().set_mask_value(3, 0.0);
        }
        let descs = model.param_active_rows();
        let pruned: Vec<_> = descs.iter().flatten().filter(|d| !d.is_all()).collect();
        assert_eq!(pruned.len(), 1);
        let d = pruned[0];
        assert_eq!(d.total(), d.len() + 2);
        assert!(!d.indices().contains(&1));
        assert!(!d.indices().contains(&3));
        // Descriptors sit at W-sized parameter slots.
        for (desc, len) in descs.iter().zip(&param_lens) {
            if let Some(d) = desc {
                assert_eq!(len % d.total(), 0, "W length divisible by row count");
            }
        }
    }

    #[test]
    fn residual_unit_round_trip() {
        let mut rng = Rng::new(1);
        let mk_conv = |c_in: usize, c_out: usize, stride: usize, rng: &mut Rng| {
            ConvKind::Standard(Conv2d::new(c_in, c_out, 3, stride, 1, false, Init::He, rng))
        };
        let mut r = ResidualUnit::new(
            ConvUnit::new("a", mk_conv(4, 8, 2, &mut rng), Some(ActivationKind::Relu)),
            ConvUnit::new("b", mk_conv(8, 8, 1, &mut rng), None),
            Some(PadShortcut::new(2, 8)),
        );
        let x = Tensor::randn(&[2, 4, 8, 8], Init::Rand, &mut rng);
        let mut ctx = RunCtx::train();
        let y = r.forward(&x, &mut ctx).unwrap();
        assert_eq!(y.dims(), &[2, 8, 4, 4]);
        let gx = r.backward(&y, &mut ctx).unwrap();
        assert_eq!(gx.dims(), x.dims());
        assert!(gx.data().iter().all(|v| v.is_finite()));
    }
}
