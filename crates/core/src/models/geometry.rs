//! Exact per-layer geometry of the architectures compared in Tables II/III.
//!
//! These are *counting-only* descriptions — no weights — used to reproduce
//! the paper's Params/OPs columns precisely. Trainable (scaled-down) models
//! live in [`super`]; the 224×224 geometries here are the full-size
//! ImageNet architectures.

use crate::metrics::{ConvShape, NetworkCost};

/// A counting-only architecture description: its convolutions plus the
/// classifier's fully-connected cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchGeometry {
    /// Architecture name.
    pub name: &'static str,
    /// Convolution layers in execution order.
    pub convs: Vec<ConvShape>,
    /// Fully-connected parameter count.
    pub fc_params: u64,
}

impl ArchGeometry {
    /// Total parameters (convs + FC).
    pub fn params(&self) -> u64 {
        NetworkCost::of_layers(&self.convs).params + self.fc_params
    }

    /// Total MACs for one inference (convs + FC; FC MACs equal its params).
    pub fn macs(&self) -> u64 {
        NetworkCost::of_layers(&self.convs).macs + self.fc_params
    }

    /// Total OPs (`2·MACs`).
    pub fn ops(&self) -> u64 {
        2 * self.macs()
    }
}

/// Plain-20 conv layers at `side × side` input with stem width `width`
/// (paper: 32×32, width 16). ResNet-20 has identical conv geometry
/// (option-A shortcuts are parameter-free), so this serves both.
pub fn plain20_layers(side: usize, _channels: usize) -> Vec<ConvShape> {
    plain20_layers_width(side, 16)
}

/// Plain-20 / ResNet-20 conv layers with a configurable stem width.
pub fn plain20_layers_width(side: usize, width: usize) -> Vec<ConvShape> {
    let mut layers = vec![ConvShape::new("conv1", 3, width, 3, 1, side, side)];
    let mut c_in = width;
    let mut s = side;
    for stage in 0..3 {
        let c_out = width << stage;
        for block in 0..3 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            if stride == 2 {
                s /= 2;
            }
            layers.push(ConvShape::new(
                format!("conv{}{}1", stage + 2, block + 1),
                c_in,
                c_out,
                3,
                stride,
                s,
                s,
            ));
            layers.push(ConvShape::new(
                format!("conv{}{}2", stage + 2, block + 1),
                c_out,
                c_out,
                3,
                1,
                s,
                s,
            ));
            c_in = c_out;
        }
    }
    layers
}

/// ResNet-18 at 224×224 (He et al. 2016): 7×7/2 stem, 4 stages × 2 basic
/// blocks, 1×1 projection shortcuts on strided stages, 512→1000 classifier.
pub fn resnet18_layers() -> ArchGeometry {
    let mut convs = vec![ConvShape::new("conv1", 3, 64, 7, 2, 112, 112)];
    // After the 3×3/2 max pool: 56×56.
    let widths = [64usize, 128, 256, 512];
    let sides = [56usize, 28, 14, 7];
    let mut c_in = 64;
    for (stage, (&w, &s)) in widths.iter().zip(sides.iter()).enumerate() {
        for block in 0..2 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            convs.push(ConvShape::new(
                format!("conv{}_{}a", stage + 2, block + 1),
                c_in,
                w,
                3,
                stride,
                s,
                s,
            ));
            convs.push(ConvShape::new(
                format!("conv{}_{}b", stage + 2, block + 1),
                w,
                w,
                3,
                1,
                s,
                s,
            ));
            if stride == 2 {
                convs.push(ConvShape::new(
                    format!("conv{}_ds", stage + 2),
                    c_in,
                    w,
                    1,
                    2,
                    s,
                    s,
                ));
            }
            c_in = w;
        }
    }
    ArchGeometry {
        name: "resnet18",
        convs,
        fc_params: 512 * 1000,
    }
}

/// SqueezeNet v1.0 at 224×224 (Iandola et al. 2016).
pub fn squeezenet_layers() -> ArchGeometry {
    let mut convs = vec![ConvShape::new("conv1", 3, 96, 7, 2, 109, 109)];
    // fire(name, in, squeeze, expand) at spatial side s:
    let fire = |name: &str, c_in: usize, sq: usize, ex: usize, s: usize| {
        vec![
            ConvShape::new(format!("{name}_s1"), c_in, sq, 1, 1, s, s),
            ConvShape::new(format!("{name}_e1"), sq, ex, 1, 1, s, s),
            ConvShape::new(format!("{name}_e3"), sq, ex, 3, 1, s, s),
        ]
    };
    // maxpool 3/2 → 54.
    convs.extend(fire("fire2", 96, 16, 64, 54));
    convs.extend(fire("fire3", 128, 16, 64, 54));
    convs.extend(fire("fire4", 128, 32, 128, 54));
    // maxpool → 27.
    convs.extend(fire("fire5", 256, 32, 128, 27));
    convs.extend(fire("fire6", 256, 48, 192, 27));
    convs.extend(fire("fire7", 384, 48, 192, 27));
    convs.extend(fire("fire8", 384, 64, 256, 27));
    // maxpool → 13.
    convs.extend(fire("fire9", 512, 64, 256, 13));
    convs.push(ConvShape::new("conv10", 512, 1000, 1, 1, 13, 13));
    ArchGeometry {
        name: "squeezenet",
        convs,
        fc_params: 0, // fully convolutional
    }
}

/// GoogleNet / Inception-v1 at 224×224 (Szegedy et al. 2015).
pub fn googlenet_layers() -> ArchGeometry {
    let mut convs = vec![
        ConvShape::new("conv1", 3, 64, 7, 2, 112, 112),
        // maxpool → 56
        ConvShape::new("conv2_red", 64, 64, 1, 1, 56, 56),
        ConvShape::new("conv2", 64, 192, 3, 1, 56, 56),
        // maxpool → 28
    ];
    // (name, in, 1x1, 3x3red, 3x3, 5x5red, 5x5, poolproj, side)
    #[allow(clippy::type_complexity)]
    let modules: [(&str, usize, usize, usize, usize, usize, usize, usize, usize); 9] = [
        ("3a", 192, 64, 96, 128, 16, 32, 32, 28),
        ("3b", 256, 128, 128, 192, 32, 96, 64, 28),
        ("4a", 480, 192, 96, 208, 16, 48, 64, 14),
        ("4b", 512, 160, 112, 224, 24, 64, 64, 14),
        ("4c", 512, 128, 128, 256, 24, 64, 64, 14),
        ("4d", 512, 112, 144, 288, 32, 64, 64, 14),
        ("4e", 528, 256, 160, 320, 32, 128, 128, 14),
        ("5a", 832, 256, 160, 320, 32, 128, 128, 7),
        ("5b", 832, 384, 192, 384, 48, 128, 128, 7),
    ];
    for (name, c_in, p1, r3, p3, r5, p5, pp, s) in modules {
        convs.push(ConvShape::new(
            format!("inc{name}_1x1"),
            c_in,
            p1,
            1,
            1,
            s,
            s,
        ));
        convs.push(ConvShape::new(
            format!("inc{name}_3x3r"),
            c_in,
            r3,
            1,
            1,
            s,
            s,
        ));
        convs.push(ConvShape::new(format!("inc{name}_3x3"), r3, p3, 3, 1, s, s));
        convs.push(ConvShape::new(
            format!("inc{name}_5x5r"),
            c_in,
            r5,
            1,
            1,
            s,
            s,
        ));
        convs.push(ConvShape::new(format!("inc{name}_5x5"), r5, p5, 5, 1, s, s));
        convs.push(ConvShape::new(
            format!("inc{name}_pool"),
            c_in,
            pp,
            1,
            1,
            s,
            s,
        ));
    }
    ArchGeometry {
        name: "googlenet",
        convs,
        fc_params: 1024 * 1000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_matches_published_cost() {
        let g = resnet18_layers();
        // ~11.7 M params, ~1.82 G MACs (paper Table III: 11.83 M, 3743 MOPs).
        let p = g.params() as f64 / 1e6;
        let ops = g.ops() as f64 / 1e6;
        assert!((11.0..12.5).contains(&p), "params {p} M");
        assert!((3400.0..3900.0).contains(&ops), "{ops} MOPs");
    }

    #[test]
    fn squeezenet_matches_published_cost() {
        let g = squeezenet_layers();
        let p = g.params() as f64 / 1e6;
        let ops = g.ops() as f64 / 1e6;
        // Paper Table III: 1.23 M params, 1722 MOPs.
        assert!((1.1..1.4).contains(&p), "params {p} M");
        assert!((1500.0..1900.0).contains(&ops), "{ops} MOPs");
    }

    #[test]
    fn googlenet_matches_published_cost() {
        let g = googlenet_layers();
        let p = g.params() as f64 / 1e6;
        let ops = g.ops() as f64 / 1e6;
        // Paper Table III: 6.80 M params, 3004 MOPs.
        assert!((5.5..7.5).contains(&p), "params {p} M");
        assert!((2700.0..3300.0).contains(&ops), "{ops} MOPs");
    }

    #[test]
    fn inception_output_channels_chain_correctly() {
        // The declared c_in of each module must equal the concatenated
        // output of the previous one (1x1 + 3x3 + 5x5 + poolproj).
        let g = googlenet_layers();
        let outs: Vec<(String, usize)> =
            g.convs.iter().map(|c| (c.name.clone(), c.c_out)).collect();
        let module_out = |tag: &str| -> usize {
            outs.iter()
                .filter(|(n, _)| {
                    n.starts_with(&format!("inc{tag}_"))
                        && !n.ends_with("3x3r")
                        && !n.ends_with("5x5r")
                })
                .map(|(_, c)| c)
                .sum()
        };
        assert_eq!(module_out("3a"), 256);
        assert_eq!(module_out("3b"), 480);
        assert_eq!(module_out("4e"), 832);
        assert_eq!(module_out("5b"), 1024);
    }

    #[test]
    fn plain20_width_scales_quadratically() {
        let w16 = NetworkCost::of_layers(&plain20_layers_width(32, 16));
        let w8 = NetworkCost::of_layers(&plain20_layers_width(32, 8));
        let ratio = w16.params as f64 / w8.params as f64;
        assert!((3.5..4.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fire_modules_have_three_convs_each() {
        let g = squeezenet_layers();
        assert_eq!(g.convs.len(), 1 + 8 * 3 + 1);
    }
}
