//! Model zoo: trainable builders (Plain-20, ResNet-20, small ResNet-18)
//! and the exact layer [`geometry`] of the comparison architectures used in
//! Table III.
//!
//! Every builder comes in a vanilla variant (standard convolutions) and an
//! `_alf` variant (every convolution replaced by an ALF block), mirroring
//! how the paper applies the technique.

pub mod geometry;

use alf_nn::activation::ActivationKind;
use alf_nn::conv::Conv2d;
use alf_nn::linear::Linear;
use alf_nn::pool::GlobalAvgPool;
use alf_tensor::init::Init;
use alf_tensor::rng::Rng;

use crate::block::{AlfBlock, AlfBlockConfig};
use crate::model::{CnnModel, ConvKind, ConvUnit, PadShortcut, ResidualUnit, Unit};
use crate::Result;

/// How to realise each convolution of a model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConvStyle {
    /// Plain convolution (vanilla baselines).
    Standard,
    /// ALF block with the given configuration.
    Alf(AlfBlockConfig),
}

impl ConvStyle {
    fn build(
        self,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut Rng,
    ) -> ConvKind {
        match self {
            ConvStyle::Standard => ConvKind::Standard(Conv2d::new(
                c_in,
                c_out,
                kernel,
                stride,
                pad,
                false,
                Init::He,
                rng,
            )),
            ConvStyle::Alf(cfg) => {
                ConvKind::Alf(AlfBlock::new(c_in, c_out, kernel, stride, pad, cfg, rng))
            }
        }
    }
}

/// The paper's Fig. 3 layer naming: `conv1`, then `conv{stage}{block}{idx}`
/// with stages numbered from 2.
fn layer_name(stage: usize, block: usize, idx: usize) -> String {
    format!("conv{}{}{}", stage + 2, block + 1, idx + 1)
}

/// Shared body builder for the CIFAR-style 20-layer networks: a stem conv
/// plus 3 stages × 3 blocks × 2 convs over widths `w, 2w, 4w`, global
/// average pooling and a linear classifier.
fn cifar20(
    name: &str,
    num_classes: usize,
    width: usize,
    residual: bool,
    style: ConvStyle,
    seed: u64,
) -> Result<CnnModel> {
    let mut rng = Rng::new(seed);
    let mut units = Vec::new();
    units.push(Unit::Conv(ConvUnit::new(
        "conv1",
        style.build(3, width, 3, 1, 1, &mut rng),
        Some(ActivationKind::Relu),
    )));
    let mut c_in = width;
    for stage in 0..3 {
        let c_out = width << stage;
        for block in 0..3 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let a = ConvUnit::new(
                layer_name(stage, block, 0),
                style.build(c_in, c_out, 3, stride, 1, &mut rng),
                Some(ActivationKind::Relu),
            );
            if residual {
                let b = ConvUnit::new(
                    layer_name(stage, block, 1),
                    style.build(c_out, c_out, 3, 1, 1, &mut rng),
                    None,
                );
                let shortcut =
                    (c_in != c_out || stride != 1).then(|| PadShortcut::new(stride, c_out));
                units.push(Unit::Residual(ResidualUnit::new(a, b, shortcut)));
            } else {
                let b = ConvUnit::new(
                    layer_name(stage, block, 1),
                    style.build(c_out, c_out, 3, 1, 1, &mut rng),
                    Some(ActivationKind::Relu),
                );
                units.push(Unit::Conv(a));
                units.push(Unit::Conv(b));
            }
            c_in = c_out;
        }
    }
    units.push(Unit::GlobalPool(GlobalAvgPool::new()));
    units.push(Unit::Classifier(Linear::new(
        c_in,
        num_classes,
        Init::Xavier,
        &mut rng,
    )));
    CnnModel::from_units(name, units, num_classes)
}

/// Plain-20 (He et al.'s non-residual 20-layer CIFAR network) with standard
/// convolutions. `width` is the stem channel count (the paper uses 16).
///
/// # Errors
///
/// Propagates construction errors (cannot occur for valid arguments).
pub fn plain20(num_classes: usize, width: usize) -> Result<CnnModel> {
    cifar20(
        "plain20",
        num_classes,
        width,
        false,
        ConvStyle::Standard,
        20,
    )
}

/// Plain-20 with every convolution replaced by an ALF block.
///
/// # Errors
///
/// Propagates construction errors (cannot occur for valid arguments).
pub fn plain20_alf(
    num_classes: usize,
    width: usize,
    config: AlfBlockConfig,
    seed: u64,
) -> Result<CnnModel> {
    cifar20(
        "alf-plain20",
        num_classes,
        width,
        false,
        ConvStyle::Alf(config),
        seed,
    )
}

/// ResNet-20 with standard convolutions (identity / padded shortcuts,
/// option A — parameter-free, so Params match Plain-20).
///
/// # Errors
///
/// Propagates construction errors (cannot occur for valid arguments).
pub fn resnet20(num_classes: usize, width: usize) -> Result<CnnModel> {
    cifar20(
        "resnet20",
        num_classes,
        width,
        true,
        ConvStyle::Standard,
        21,
    )
}

/// ResNet-20 with every convolution replaced by an ALF block.
///
/// # Errors
///
/// Propagates construction errors (cannot occur for valid arguments).
pub fn resnet20_alf(
    num_classes: usize,
    width: usize,
    config: AlfBlockConfig,
    seed: u64,
) -> Result<CnnModel> {
    cifar20(
        "alf-resnet20",
        num_classes,
        width,
        true,
        ConvStyle::Alf(config),
        seed,
    )
}

/// A ResNet-18-shaped model for the synthetic-ImageNet experiments: 4
/// stages × 2 basic blocks over widths `w..8w`, with a 3×3 stem sized for
/// 64×64 inputs (the 224×224 7×7-stem geometry used for Table III counting
/// lives in [`geometry::resnet18_layers`]).
///
/// # Errors
///
/// Propagates construction errors (cannot occur for valid arguments).
pub fn resnet18_small(
    num_classes: usize,
    width: usize,
    style: ConvStyle,
    seed: u64,
) -> Result<CnnModel> {
    let mut rng = Rng::new(seed);
    let mut units = Vec::new();
    units.push(Unit::Conv(ConvUnit::new(
        "conv1",
        style.build(3, width, 3, 1, 1, &mut rng),
        Some(ActivationKind::Relu),
    )));
    let mut c_in = width;
    for stage in 0..4 {
        let c_out = width << stage;
        for block in 0..2 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let a = ConvUnit::new(
                layer_name(stage, block, 0),
                style.build(c_in, c_out, 3, stride, 1, &mut rng),
                Some(ActivationKind::Relu),
            );
            let b = ConvUnit::new(
                layer_name(stage, block, 1),
                style.build(c_out, c_out, 3, 1, 1, &mut rng),
                None,
            );
            let shortcut = (c_in != c_out || stride != 1).then(|| PadShortcut::new(stride, c_out));
            units.push(Unit::Residual(ResidualUnit::new(a, b, shortcut)));
            c_in = c_out;
        }
    }
    units.push(Unit::GlobalPool(GlobalAvgPool::new()));
    units.push(Unit::Classifier(Linear::new(
        c_in,
        num_classes,
        Init::Xavier,
        &mut rng,
    )));
    CnnModel::from_units("resnet18-small", units, num_classes)
}

/// A SqueezeNet-shaped model scaled for synthetic data: a 3×3 stem, four
/// fire modules with one spatial downsampling, global average pooling and
/// a linear classifier. `width` is the stem channel count (the original's
/// proportions are kept: squeeze = width/2, expand = width per branch).
///
/// # Errors
///
/// Propagates construction errors (cannot occur for valid arguments).
///
/// # Panics
///
/// Panics if `width < 2` (the squeeze path would vanish).
pub fn squeezenet_small(
    num_classes: usize,
    width: usize,
    style: ConvStyle,
    seed: u64,
) -> Result<CnnModel> {
    assert!(width >= 2, "width must be at least 2");
    let mut rng = Rng::new(seed);
    let mut units = Vec::new();
    units.push(Unit::Conv(ConvUnit::new(
        "conv1",
        style.build(3, width, 3, 1, 1, &mut rng),
        Some(ActivationKind::Relu),
    )));
    let fire = |name: &str, c_in: usize, squeeze: usize, expand: usize, rng: &mut Rng| {
        Unit::Fire(crate::model::FireUnit::new(
            ConvUnit::new(
                format!("{name}_s1"),
                style.build(c_in, squeeze, 1, 1, 0, rng),
                Some(ActivationKind::Relu),
            ),
            ConvUnit::new(
                format!("{name}_e1"),
                style.build(squeeze, expand, 1, 1, 0, rng),
                Some(ActivationKind::Relu),
            ),
            ConvUnit::new(
                format!("{name}_e3"),
                style.build(squeeze, expand, 3, 1, 1, rng),
                Some(ActivationKind::Relu),
            ),
        ))
    };
    units.push(fire("fire2", width, width / 2, width, &mut rng));
    units.push(fire("fire3", 2 * width, width / 2, width, &mut rng));
    units.push(Unit::MaxPool(alf_nn::pool::MaxPool2d::new(2)));
    units.push(fire("fire4", 2 * width, width, 2 * width, &mut rng));
    units.push(fire("fire5", 4 * width, width, 2 * width, &mut rng));
    units.push(Unit::GlobalPool(GlobalAvgPool::new()));
    units.push(Unit::Classifier(Linear::new(
        4 * width,
        num_classes,
        Init::Xavier,
        &mut rng,
    )));
    CnnModel::from_units("squeezenet-small", units, num_classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::NetworkCost;
    use alf_nn::{Layer, RunCtx};
    use alf_tensor::Tensor;

    #[test]
    fn plain20_has_19_convs_and_paper_cost() {
        let model = plain20(10, 16).unwrap();
        let shapes = model.conv_shapes(32, 32);
        assert_eq!(shapes.len(), 19);
        let cost = NetworkCost::of_layers(&shapes);
        assert!((cost.params as f64 / 1e6 - 0.27).abs() < 0.01);
        assert!((cost.ops() as f64 / 1e6 - 81.1).abs() < 1.0);
    }

    #[test]
    fn resnet20_params_match_plain20() {
        // Option-A shortcuts are parameter-free.
        let mut plain = plain20(10, 16).unwrap();
        let mut res = resnet20(10, 16).unwrap();
        assert_eq!(plain.param_count(), res.param_count());
    }

    #[test]
    fn layer_names_follow_fig3_notation() {
        let model = plain20(10, 16).unwrap();
        let names: Vec<String> = model
            .conv_shapes(32, 32)
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert_eq!(names[0], "conv1");
        assert_eq!(names[1], "conv211");
        assert_eq!(names[8], "conv312"); // stage 3, block 1, conv 2
        assert_eq!(names[18], "conv432");
    }

    #[test]
    fn plain20_forward_backward_smoke() {
        let mut model = plain20(4, 4).unwrap();
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = model.forward(&x, &mut RunCtx::train()).unwrap();
        assert_eq!(y.dims(), &[2, 4]);
        let g = model.backward(&y, &mut RunCtx::train()).unwrap();
        assert_eq!(g.dims(), x.dims());
    }

    #[test]
    fn resnet20_forward_backward_smoke() {
        let mut model = resnet20(4, 4).unwrap();
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = model.forward(&x, &mut RunCtx::train()).unwrap();
        assert_eq!(y.dims(), &[2, 4]);
        model.backward(&y, &mut RunCtx::train()).unwrap();
    }

    #[test]
    fn alf_variants_expose_all_blocks() {
        let cfg = crate::block::AlfBlockConfig::paper_default();
        let mut model = plain20_alf(10, 4, cfg, 1).unwrap();
        assert_eq!(model.alf_blocks_mut().len(), 19);
        let mut model = resnet20_alf(10, 4, cfg, 1).unwrap();
        assert_eq!(model.alf_blocks_mut().len(), 19);
        assert_eq!(model.filter_stats().len(), 19);
    }

    #[test]
    fn alf_plain20_forward_shape() {
        let cfg = crate::block::AlfBlockConfig::paper_default();
        let mut model = plain20_alf(3, 4, cfg, 2).unwrap();
        let y = model
            .forward(&Tensor::zeros(&[1, 3, 16, 16]), &mut RunCtx::eval())
            .unwrap();
        assert_eq!(y.dims(), &[1, 3]);
    }

    #[test]
    fn resnet18_small_runs() {
        let mut model = resnet18_small(5, 4, ConvStyle::Standard, 3).unwrap();
        let y = model
            .forward(&Tensor::zeros(&[1, 3, 32, 32]), &mut RunCtx::train())
            .unwrap();
        assert_eq!(y.dims(), &[1, 5]);
        assert_eq!(model.conv_shapes(64, 64).len(), 17);
    }

    #[test]
    fn squeezenet_small_forward_backward() {
        let mut model = squeezenet_small(5, 4, ConvStyle::Standard, 9).unwrap();
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = model.forward(&x, &mut RunCtx::train()).unwrap();
        assert_eq!(y.dims(), &[2, 5]);
        let g = model.backward(&y, &mut RunCtx::train()).unwrap();
        assert_eq!(g.dims(), x.dims());
        // conv1 + 4 fire modules × 3 convs.
        assert_eq!(model.conv_shapes(16, 16).len(), 13);
    }

    #[test]
    fn squeezenet_small_alf_variant_prunes_and_deploys() {
        let cfg = crate::block::AlfBlockConfig {
            threshold: 5e-2,
            ..crate::block::AlfBlockConfig::paper_default()
        };
        let mut model = squeezenet_small(4, 4, ConvStyle::Alf(cfg), 10).unwrap();
        assert_eq!(model.alf_blocks_mut().len(), 13);
        for block in model.alf_blocks_mut() {
            for _ in 0..800 {
                block
                    .autoencoder_step(5e-3, &crate::PruneSchedule::new(8.0, 0.9))
                    .unwrap();
            }
        }
        let mut deployed = crate::deploy::Pipeline::new().run(&model).unwrap().model;
        let mut rng = alf_tensor::rng::Rng::new(11);
        let x = Tensor::randn(&[1, 3, 16, 16], alf_tensor::init::Init::Rand, &mut rng);
        let a = model.forward(&x, &mut RunCtx::eval()).unwrap();
        let b = deployed.forward(&x, &mut RunCtx::eval()).unwrap();
        assert!(a.allclose(&b, 1e-4), "fire-module deployment must be exact");
    }

    #[test]
    fn squeezenet_small_checkpoints() {
        let mut a = squeezenet_small(4, 4, ConvStyle::Standard, 12).unwrap();
        let blob = crate::checkpoint::save(&a);
        let mut b = squeezenet_small(4, 4, ConvStyle::Standard, 99).unwrap();
        crate::checkpoint::load(&mut b, &blob).unwrap();
        let x = Tensor::ones(&[1, 3, 8, 8]);
        assert_eq!(
            a.forward(&x, &mut RunCtx::eval()).unwrap(),
            b.forward(&x, &mut RunCtx::eval()).unwrap()
        );
    }

    #[test]
    fn remaining_filter_fraction_starts_dense() {
        let cfg = crate::block::AlfBlockConfig::paper_default();
        let model = plain20_alf(10, 4, cfg, 4).unwrap();
        assert_eq!(model.remaining_filter_fraction(), 1.0);
        // Vanilla models have no ALF blocks — fraction reports 1.0.
        assert_eq!(plain20(10, 4).unwrap().remaining_filter_fraction(), 1.0);
    }
}
