//! The ALF block (paper Fig. 1, Eq. 1/2/5).
//!
//! An ALF block replaces a standard convolution `A ∗ W` with
//!
//! ```text
//! Ã  = σinter(A ∗ Wcode)            (code convolution, Ccode filters)
//! A' = Ã ∗ Wexp                     (1×1 expansion back to Co channels)
//! ```
//!
//! where `Wcode` is produced by the block's [`WeightAutoencoder`] from the
//! raw trainable filters `W`. During the backward pass the gradient that
//! lands on `Wcode` is applied *directly* to `W` — the straight-through
//! estimator of Eq. 5 — because `Wenc`, `M` and `σae` belong to the other
//! player and would otherwise inject noise (and the clipped mask would
//! zeroise most of the gradient).

use alf_nn::activation::{Activation, ActivationKind};
use alf_nn::conv::Conv2d;
use alf_nn::layer::{Layer, Param};
use alf_nn::norm::BatchNorm2d;
use alf_nn::RunCtx;
use alf_tensor::init::Init;
use alf_tensor::rng::Rng;
use alf_tensor::Tensor;

use crate::autoencoder::{AeStats, WeightAutoencoder};
use crate::schedule::PruneSchedule;
use crate::Result;

/// Configuration of an ALF block — the knobs explored in Fig. 2a/2b.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlfBlockConfig {
    /// Autoencoder activation `σae` (paper winner: `tanh`).
    pub sigma_ae: ActivationKind,
    /// Intermediate activation `σinter` between code conv and expansion
    /// (paper winner: none/identity).
    pub sigma_inter: ActivationKind,
    /// Whether to insert `BNinter` between the code conv and expansion.
    pub inter_bn: bool,
    /// Initialiser for the raw filters `W`.
    pub w_init: Init,
    /// Initialiser for `Wenc`/`Wdec` (paper winner: Xavier).
    pub ae_init: Init,
    /// Initialiser for the expansion weights `Wexp` (paper winner: Xavier).
    pub exp_init: Init,
    /// Mask clip threshold `t` (paper trade-off choice: `1e-4`).
    pub threshold: f32,
    /// Whether the pruning mask is active (disabled in Setup 2).
    pub mask_enabled: bool,
    /// Whether the task gradient uses the straight-through estimator
    /// (Eq. 5). Disabling it routes the gradient through the true
    /// encoder/mask chain — provided for the STE ablation bench.
    pub ste: bool,
}

impl AlfBlockConfig {
    /// The configuration selected by the paper's design-space exploration:
    /// Xavier for `Wexp`/`Wae`, `σae = tanh`, `σinter = none`, no
    /// `BNinter`, `t = 1e-4`.
    pub fn paper_default() -> Self {
        Self {
            sigma_ae: ActivationKind::Tanh,
            sigma_inter: ActivationKind::Identity,
            inter_bn: false,
            w_init: Init::He,
            ae_init: Init::Xavier,
            exp_init: Init::Xavier,
            threshold: 1e-4,
            mask_enabled: true,
            ste: true,
        }
    }
}

impl Default for AlfBlockConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A convolution wrapped in the ALF machinery.
///
/// # Example
///
/// ```
/// use alf_core::{AlfBlock, AlfBlockConfig};
/// use alf_nn::{Layer, RunCtx};
/// use alf_tensor::{rng::Rng, Tensor};
///
/// # fn main() -> alf_core::Result<()> {
/// let mut ctx = RunCtx::train();
/// let mut block = AlfBlock::new(3, 16, 3, 1, 1, AlfBlockConfig::paper_default(), &mut Rng::new(0));
/// let y = block.forward(&Tensor::zeros(&[2, 3, 8, 8]), &mut ctx)?;
/// assert_eq!(y.dims(), &[2, 16, 8, 8]); // expansion restores Co channels
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AlfBlock {
    w: Param,
    ae: WeightAutoencoder,
    code_conv: Conv2d,
    inter_act: Activation,
    inter_bn: Option<BatchNorm2d>,
    expansion: Conv2d,
    config: AlfBlockConfig,
    // Occupancy-aware execution switch: when on, the code conv carries an
    // `ActiveRows` descriptor derived from the clipped mask and the
    // autoencoder elides pruned rows in its step. Bitwise-neutral.
    sparse_exec: bool,
    // The descriptor is recomputed only when the mask may have moved since
    // the last forward (autoencoder step, direct mutation, checkpoint
    // load, compaction) — the task player's step never touches the mask.
    active_dirty: bool,
}

impl AlfBlock {
    /// Creates an ALF block replacing a `c_in → c_out`, `kernel × kernel`
    /// convolution.
    ///
    /// # Panics
    ///
    /// Panics when `kernel` or `stride` is zero.
    pub fn new(
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        config: AlfBlockConfig,
        rng: &mut Rng,
    ) -> Self {
        let w = Param::new(
            Tensor::randn(&[c_out, c_in, kernel, kernel], config.w_init, rng),
            // The paper applies no regularisation to W (§III-B).
            false,
        );
        let mut ae = WeightAutoencoder::new(
            c_in,
            c_out,
            kernel,
            config.ae_init,
            config.sigma_ae,
            config.threshold,
            rng,
        );
        if !config.mask_enabled {
            ae = ae.without_mask();
        }
        // The code conv's weight is derived state — overwritten from the
        // autoencoder before every forward pass. Once the mask starts
        // pruning, whole output channels of that weight are zero, so the
        // conv's GEMM is told to compact the live rows instead of
        // multiplying zeros.
        let mut code_conv = Conv2d::new(c_in, c_out, kernel, stride, pad, false, Init::Zeros, rng);
        if config.mask_enabled {
            code_conv.set_sparse_weight_hint(true);
        }
        let expansion = Conv2d::new(c_out, c_out, 1, 1, 0, false, config.exp_init, rng);
        Self {
            w,
            ae,
            code_conv,
            inter_act: Activation::new(config.sigma_inter),
            inter_bn: config.inter_bn.then(|| BatchNorm2d::new(c_out)),
            expansion,
            config,
            sparse_exec: true,
            active_dirty: true,
        }
    }

    /// The block configuration.
    pub fn config(&self) -> &AlfBlockConfig {
        &self.config
    }

    /// The raw trainable filters `W`.
    pub fn raw_weight(&self) -> &Tensor {
        &self.w.value
    }

    /// The block's autoencoder.
    pub fn autoencoder(&self) -> &WeightAutoencoder {
        &self.ae
    }

    /// Mutable access to the block's autoencoder (for experiments that
    /// manipulate the mask or encoder directly). Conservatively invalidates
    /// the cached occupancy descriptor, since the caller may move the mask.
    pub fn autoencoder_mut(&mut self) -> &mut WeightAutoencoder {
        self.active_dirty = true;
        &mut self.ae
    }

    /// Toggles the occupancy-aware execution paths (the code conv's
    /// `ActiveRows` elision and the autoencoder's sparse step). Purely a
    /// performance switch — both settings produce bitwise-identical
    /// results; `train_bench`'s dense reference runs with this off, which
    /// also clears the conv's zero-row scan hint so the baseline is a
    /// genuinely dense execution.
    pub fn set_sparse_execution(&mut self, on: bool) {
        self.sparse_exec = on;
        self.ae.set_sparse_exec(on);
        self.code_conv
            .set_sparse_weight_hint(on && self.config.mask_enabled);
        self.active_dirty = true;
    }

    /// Whether the occupancy-aware execution paths are enabled.
    pub fn sparse_execution(&self) -> bool {
        self.sparse_exec
    }

    /// Current code `Wcode` in convolution layout.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the autoencoder (cannot happen for a
    /// block constructed through [`AlfBlock::new`]).
    pub fn code(&self) -> Result<Tensor> {
        self.ae.code(&self.w.value)
    }

    /// Number of code filters surviving the mask clip.
    pub fn active_filters(&self) -> usize {
        self.ae.active_channels().len()
    }

    /// Total code filters of the *original* geometry (`Co`). Physical
    /// compaction does not change this, so `active/total` occupancy stays
    /// continuous across a compaction (removed channels keep counting as
    /// pruned).
    pub fn total_filters(&self) -> usize {
        self.ae.c_out()
    }

    /// Current physical code channels (`Ccode`; equal to
    /// [`AlfBlock::total_filters`] until a compaction shrinks the block).
    pub fn code_channels(&self) -> usize {
        self.code_conv.c_out()
    }

    /// Output channels of the block (after the expansion).
    pub fn c_out(&self) -> usize {
        self.expansion.c_out()
    }

    /// Geometry of the code convolution.
    pub fn conv_spec(&self) -> alf_tensor::ops::Conv2dSpec {
        self.code_conv.spec()
    }

    /// Input channel count.
    pub fn c_in(&self) -> usize {
        self.code_conv.c_in()
    }

    /// Expansion weights `Wexp` (`[Co, Ccode, 1, 1]`).
    pub fn expansion_weight(&self) -> &Tensor {
        self.expansion.weight()
    }

    /// One optimisation step of the block's autoencoder player: computes
    /// `νprune` from the schedule at the current zero fraction and updates
    /// `Wenc`, `Wdec`, `M`.
    ///
    /// # Errors
    ///
    /// Propagates autoencoder shape errors (cannot happen for a block
    /// constructed through [`AlfBlock::new`]).
    pub fn autoencoder_step(&mut self, lr: f32, schedule: &PruneSchedule) -> Result<AeStats> {
        let nu = schedule.nu(self.ae.zero_fraction());
        self.active_dirty = true;
        self.ae.step(&self.w.value, lr, nu)
    }

    /// [`Self::autoencoder_step`] with GEMM scratch drawn from the run's
    /// shared arena — the path the trainer uses so both players reuse one
    /// set of packing buffers.
    ///
    /// # Errors
    ///
    /// Propagates autoencoder shape errors (cannot happen for a block
    /// constructed through [`AlfBlock::new`]).
    pub fn autoencoder_step_in(
        &mut self,
        lr: f32,
        schedule: &PruneSchedule,
        ctx: &mut RunCtx,
    ) -> Result<AeStats> {
        let nu = schedule.nu(self.ae.zero_fraction());
        self.active_dirty = true;
        self.ae.step_in(&self.w.value, lr, nu, &mut ctx.ws)
    }

    /// Physically compacts the block when live occupancy falls strictly
    /// below `occupancy` (a fraction of the *current* code channels):
    /// gathers the autoencoder's encoder columns / decoder rows / mask into
    /// a dense prefix, rebuilds the code convolution with `Ccode = live`
    /// output channels, and gathers the expansion's input channels and the
    /// inter-BN state consistently. Downstream GEMMs then shrink their
    /// dimensions for real instead of skipping zero rows. Returns whether a
    /// compaction happened.
    ///
    /// Never compacts away the last filter: an all-pruned block keeps its
    /// current geometry (the sparse paths already skip all its work).
    ///
    /// # Errors
    ///
    /// Propagates gather shape errors (cannot happen for a block
    /// constructed through [`AlfBlock::new`]).
    pub fn compact_if_below(&mut self, occupancy: f32) -> Result<bool> {
        if !self.ae.mask_enabled() {
            return Ok(false);
        }
        let rows = self.ae.active_rows();
        if rows.is_all()
            || rows.is_empty()
            || (rows.len() as f32) >= occupancy * rows.total() as f32
        {
            return Ok(false);
        }
        let live = rows.len();
        let cc = rows.total();
        let c_in = self.code_conv.c_in();
        let spec = self.code_conv.spec();
        self.ae.compact(&rows)?;
        // The code conv's weight is derived — rebuilt from the compacted
        // autoencoder on the next forward; only the geometry changes here.
        let mut code_conv = Conv2d::new(
            c_in,
            live,
            spec.kernel,
            spec.stride,
            spec.pad,
            false,
            Init::Zeros,
            &mut Rng::new(0),
        );
        code_conv.set_sparse_weight_hint(self.sparse_exec);
        self.code_conv = code_conv;
        // Expansion input channels: exp'[o, i] = exp[o, idx[i]].
        let co = self.expansion.c_out();
        let old = self.expansion.weight().clone();
        let mut gathered = vec![0.0f32; co * live];
        for o in 0..co {
            for (i, &s) in rows.indices().iter().enumerate() {
                gathered[o * live + i] = old.data()[o * cc + s];
            }
        }
        let mut expansion = Conv2d::new(live, co, 1, 1, 0, false, Init::Zeros, &mut Rng::new(0));
        expansion.set_weight(Tensor::from_vec(gathered, &[co, live, 1, 1])?)?;
        self.expansion = expansion;
        if let Some(bn) = &mut self.inter_bn {
            bn.select_channels(rows.indices())?;
        }
        self.active_dirty = true;
        Ok(true)
    }
}

impl Layer for AlfBlock {
    fn forward(&mut self, input: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        // Refresh the derived code weights from the current W / Wenc / M.
        let code = self.ae.code(&self.w.value)?;
        self.code_conv.set_weight(code)?;
        self.code_conv.zero_grads();
        // Refresh the cached occupancy descriptor only when the mask may
        // have moved. The descriptor both skips the conv's per-step
        // zero-row scan and drives the packed-panel elision; it is only
        // handed over when σae(0) == 0, i.e. when pruned code rows are
        // guaranteed to be exact zeros (`sparse_eligible`).
        if self.active_dirty {
            let rows =
                (self.sparse_exec && self.ae.sparse_eligible()).then(|| self.ae.active_rows());
            self.code_conv.set_active_rows(rows)?;
            self.active_dirty = false;
        }
        let mut x = self.code_conv.forward(input, ctx)?;
        x = self.inter_act.forward(&x, ctx)?;
        if let Some(bn) = &mut self.inter_bn {
            x = bn.forward(&x, ctx)?;
        }
        self.expansion.forward(&x, ctx)
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: &mut RunCtx) -> Result<Tensor> {
        let mut g = self.expansion.backward(grad_output, ctx)?;
        if let Some(bn) = &mut self.inter_bn {
            g = bn.backward(&g, ctx)?;
        }
        g = self.inter_act.backward(&g, ctx)?;
        let g_in = self.code_conv.backward(&g, ctx)?;
        if self.config.ste {
            // Straight-through estimator (Eq. 5): the gradient computed for
            // Wcode is applied to W unchanged, skipping encoder, mask and
            // σae. Mask-gated: a clipped channel's code row is constant in
            // W (the clip multiplies by exactly zero), so its true task
            // gradient is zero — those rows are discarded rather than
            // injected into W. This also keeps dense and sparse execution
            // bitwise identical: the rows the sparse conv path leaves as
            // declared zeros are exactly the rows discarded here. Pruned
            // channels recover through the *mask* gradient (Eq. 6), which
            // the autoencoder step keeps flowing.
            if self.ae.mask_enabled() {
                let rows = self.ae.active_rows();
                let kept = self.ae.kept_channels();
                let fan = self.w.value.len() / self.w.value.dims()[0];
                if rows.is_all() && self.ae.c_code() == self.w.value.dims()[0] {
                    // Nothing pruned, nothing compacted: plain accumulate.
                    self.w.grad.axpy(1.0, self.code_conv.weight_grad())?;
                } else {
                    // Row-wise scatter: code row i belongs to raw filter
                    // kept[i] (identity until a compaction reorders rows).
                    let g = self.code_conv.weight_grad().data();
                    let wg = self.w.grad.data_mut();
                    for &i in rows.indices() {
                        let (src, dst) = (i * fan, kept[i] * fan);
                        for f in 0..fan {
                            wg[dst + f] += g[src + f];
                        }
                    }
                }
            } else {
                self.w.grad.axpy(1.0, self.code_conv.weight_grad())?;
            }
        } else {
            // Ablation: true chain gradient through the autoencoder. The
            // mask zeroises most of it and the encoder mixes in noise —
            // the failure mode §III-B describes.
            let true_grad = self
                .ae
                .backproject_task_grad(&self.w.value, self.code_conv.weight_grad())?;
            self.w.grad.axpy(1.0, &true_grad)?;
        }
        Ok(g_in)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        // W is trained by the task player (via STE); the code conv's weight
        // is derived and must NOT be visited. Wenc/Wdec/M belong to the
        // autoencoder player and are likewise excluded here.
        visitor(&mut self.w);
        if let Some(bn) = &mut self.inter_bn {
            bn.visit_params(visitor);
        }
        self.expansion.visit_params(visitor);
    }

    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Param)) {
        visitor(&self.w);
        if let Some(bn) = &self.inter_bn {
            bn.visit_params_ref(visitor);
        }
        self.expansion.visit_params_ref(visitor);
    }

    fn visit_state(&mut self, visitor: &mut dyn FnMut(&mut Tensor)) {
        // Checkpoints must capture both players: W plus the autoencoder's
        // Wenc/Wdec/M (the code conv's weight is derived and excluded).
        // A checkpoint load may overwrite the mask through this visitor, so
        // the cached occupancy descriptor must be recomputed.
        self.active_dirty = true;
        visitor(&mut self.w.value);
        self.ae.visit_state(visitor);
        if let Some(bn) = &mut self.inter_bn {
            bn.visit_state(visitor);
        }
        self.expansion.visit_state(visitor);
    }

    fn visit_state_ref(&self, visitor: &mut dyn FnMut(&Tensor)) {
        visitor(&self.w.value);
        self.ae.visit_state_ref(visitor);
        if let Some(bn) = &self.inter_bn {
            bn.visit_state_ref(visitor);
        }
        self.expansion.visit_state_ref(visitor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alf_nn::gradcheck;
    use alf_tensor::init::Init;

    fn block(seed: u64) -> AlfBlock {
        AlfBlock::new(
            2,
            4,
            3,
            1,
            1,
            AlfBlockConfig::paper_default(),
            &mut Rng::new(seed),
        )
    }

    #[test]
    fn forward_restores_channel_count() {
        let mut ctx = RunCtx::train();
        let mut b = block(0);
        let y = b.forward(&Tensor::zeros(&[1, 2, 6, 6]), &mut ctx).unwrap();
        assert_eq!(y.dims(), &[1, 4, 6, 6]);
    }

    #[test]
    fn strided_block_downsamples() {
        let mut b = AlfBlock::new(
            2,
            4,
            3,
            2,
            1,
            AlfBlockConfig::paper_default(),
            &mut Rng::new(1),
        );
        let mut ctx = RunCtx::train();
        let y = b.forward(&Tensor::zeros(&[1, 2, 8, 8]), &mut ctx).unwrap();
        assert_eq!(y.dims(), &[1, 4, 4, 4]);
    }

    #[test]
    fn task_params_exclude_autoencoder_and_code_conv() {
        let mut b = block(2);
        // W (4·2·3·3 = 72) + expansion (4·4·1·1 = 16).
        assert_eq!(b.param_count(), 72 + 16);
    }

    #[test]
    fn inter_bn_adds_params() {
        let mut cfg = AlfBlockConfig::paper_default();
        cfg.inter_bn = true;
        let mut b = AlfBlock::new(2, 4, 3, 1, 1, cfg, &mut Rng::new(3));
        assert_eq!(b.param_count(), 72 + 16 + 8);
        let mut ctx = RunCtx::train();
        let y = b.forward(&Tensor::zeros(&[2, 2, 5, 5]), &mut ctx).unwrap();
        assert_eq!(y.dims(), &[2, 4, 5, 5]);
        assert!(b.backward(&y, &mut ctx).is_ok());
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = Rng::new(4);
        let x = Tensor::randn(&[1, 2, 5, 5], Init::Rand, &mut rng);
        let base = block(5);
        let (a, n) = gradcheck::input_gradients(
            &x,
            |x| {
                let mut ctx = RunCtx::train();
                let mut b = base.clone();
                let y = b.forward(x, &mut ctx)?;
                Ok(0.5 * y.sq_norm())
            },
            |x| {
                let mut ctx = RunCtx::train();
                let mut b = base.clone();
                let y = b.forward(x, &mut ctx)?;
                b.backward(&y, &mut ctx)
            },
        )
        .unwrap();
        gradcheck::assert_close(&a, &n, 2e-2);
    }

    #[test]
    fn ste_routes_code_gradient_onto_w() {
        // The STE claim: dLtask/dW == dLtask/dWcode elementwise. Verify by
        // comparing W's gradient against a finite difference taken on the
        // *code* tensor directly.
        let base = block(6);
        let mut rng = Rng::new(7);
        let x = Tensor::randn(&[1, 2, 4, 4], Init::Rand, &mut rng);
        let code0 = base.code().unwrap();
        let (a, n) = gradcheck::input_gradients(
            &code0,
            |code| {
                // Loss as a function of the code (bypassing the autoencoder).
                let mut ctx = RunCtx::train();
                let mut conv = base.code_conv.clone();
                conv.set_weight(code.clone())?;
                let mut exp = base.expansion.clone();
                let h = conv.forward(&x, &mut ctx)?;
                let y = exp.forward(&h, &mut ctx)?;
                Ok(0.5 * y.sq_norm())
            },
            |_| {
                // The implementation's W-gradient via the STE.
                let mut ctx = RunCtx::train();
                let mut b = base.clone();
                let y = b.forward(&x, &mut ctx)?;
                b.backward(&y, &mut ctx)?;
                Ok(b.w.grad.clone())
            },
        )
        .unwrap();
        gradcheck::assert_close(&a, &n, 2e-2);
    }

    #[test]
    fn pruned_filters_do_not_affect_output() {
        let mut cfg = AlfBlockConfig::paper_default();
        cfg.threshold = 0.05; // wide dead zone so clipped channels stay clipped
        let mut b = AlfBlock::new(2, 4, 3, 1, 1, cfg, &mut Rng::new(8));
        let mut rng = Rng::new(9);
        let x = Tensor::randn(&[1, 2, 5, 5], Init::Rand, &mut rng);
        let mut ctx = RunCtx::eval();
        let y_full = b.forward(&x, &mut ctx).unwrap();
        // Zero a channel via the public path: run the autoencoder with
        // sustained pressure until something clips.
        for _ in 0..5000 {
            b.autoencoder_step(3e-3, &PruneSchedule::new(8.0, 0.95))
                .unwrap();
            if b.active_filters() < b.total_filters() {
                break;
            }
        }
        assert!(b.active_filters() < b.total_filters(), "no filter pruned");
        let code = b.code().unwrap();
        let fan = 18;
        let pruned: Vec<usize> = (0..4)
            .filter(|&j| {
                code.data()[j * fan..(j + 1) * fan]
                    .iter()
                    .all(|&v| v == 0.0)
            })
            .collect();
        assert!(!pruned.is_empty());
        let y = b.forward(&x, &mut ctx).unwrap();
        assert_eq!(y.dims(), y_full.dims());
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn autoencoder_step_reports_schedule_pressure() {
        let mut b = block(10);
        let stats = b
            .autoencoder_step(1e-3, &PruneSchedule::paper_default())
            .unwrap();
        assert!(stats.nu_prune > 0.99); // dense mask ⇒ full pressure
        assert!(stats.l_rec >= 0.0);
        assert!((stats.l_prune - 1.0).abs() < 0.1); // mask ≈ ones
    }

    #[test]
    fn sparse_and_dense_execution_are_bitwise_identical() {
        // Prune two channels via the mask, then run a full forward/backward
        // with and without the occupancy-aware paths: outputs, input
        // gradients and every parameter gradient must match exactly.
        let mut cfg = AlfBlockConfig::paper_default();
        cfg.threshold = 0.05;
        cfg.inter_bn = true;
        let mut sparse = AlfBlock::new(2, 4, 3, 1, 1, cfg, &mut Rng::new(20));
        sparse.autoencoder_mut().set_mask_value(1, 0.0);
        sparse.autoencoder_mut().set_mask_value(2, 0.01); // clipped at t=0.05
        let mut dense = sparse.clone();
        dense.set_sparse_execution(false);

        let mut rng = Rng::new(21);
        let x = Tensor::randn(&[2, 2, 5, 5], Init::Rand, &mut rng);
        let mut ctx_s = RunCtx::train();
        let mut ctx_d = RunCtx::train();
        let ys = sparse.forward(&x, &mut ctx_s).unwrap();
        let yd = dense.forward(&x, &mut ctx_d).unwrap();
        assert_eq!(ys.data(), yd.data(), "forward outputs differ");
        assert!(sparse.code_conv.active_rows().is_some());
        assert!(dense.code_conv.active_rows().is_none());

        let gs = sparse.backward(&ys, &mut ctx_s).unwrap();
        let gd = dense.backward(&yd, &mut ctx_d).unwrap();
        assert_eq!(gs.data(), gd.data(), "input gradients differ");
        let mut grads_s = Vec::new();
        sparse.visit_params(&mut |p| grads_s.push(p.grad.clone()));
        let mut i = 0;
        dense.visit_params(&mut |p| {
            assert_eq!(p.grad.data(), grads_s[i].data(), "param grad {i} differs");
            i += 1;
        });
    }

    #[test]
    fn gated_ste_discards_pruned_rows_in_both_modes() {
        // The true task gradient through a clipped channel is exactly zero;
        // the gated STE must not inject the conv's raw rows for those
        // channels into W, whether or not the sparse path is on.
        let mut cfg = AlfBlockConfig::paper_default();
        cfg.threshold = 0.05;
        let mut b = AlfBlock::new(2, 4, 3, 1, 1, cfg, &mut Rng::new(22));
        b.autoencoder_mut().set_mask_value(0, 0.0);
        b.set_sparse_execution(false); // conv computes FULL weight grads
        let mut ctx = RunCtx::train();
        let mut rng = Rng::new(23);
        let x = Tensor::randn(&[1, 2, 5, 5], Init::Rand, &mut rng);
        let y = b.forward(&x, &mut ctx).unwrap();
        b.backward(&y, &mut ctx).unwrap();
        let fan = 18;
        assert!(
            b.w.grad.data()[..fan].iter().all(|&v| v == 0.0),
            "pruned channel's W rows must receive no task gradient"
        );
        assert!(b.w.grad.data()[fan..].iter().any(|&v| v != 0.0));
    }

    #[test]
    fn compaction_preserves_forward_and_shrinks_geometry() {
        let mut cfg = AlfBlockConfig::paper_default();
        cfg.threshold = 0.05;
        cfg.inter_bn = true;
        let mut b = AlfBlock::new(2, 4, 3, 1, 1, cfg, &mut Rng::new(24));
        b.autoencoder_mut().set_mask_value(0, 0.0);
        b.autoencoder_mut().set_mask_value(2, 0.02);
        let mut rng = Rng::new(25);
        let x = Tensor::randn(&[2, 2, 6, 6], Init::Rand, &mut rng);
        let mut ctx = RunCtx::eval();
        let y_before = b.forward(&x, &mut ctx).unwrap();

        // Occupancy is 2/4 = 0.5: not below 0.5, then below 0.75.
        assert!(!b.compact_if_below(0.5).unwrap());
        assert!(b.compact_if_below(0.75).unwrap());
        assert_eq!(b.code_channels(), 2);
        assert_eq!(b.total_filters(), 4); // original budget, for occupancy
        assert_eq!(b.active_filters(), 2);
        assert_eq!(b.c_out(), 4);
        assert_eq!(b.expansion_weight().dims(), &[4, 2, 1, 1]);
        assert_eq!(b.autoencoder().kept_channels(), &[1, 3]);

        // Surviving channels' parameters were moved, not recomputed, and
        // the dropped channels contributed exact zeros — the block output
        // is bitwise unchanged.
        let y_after = b.forward(&x, &mut ctx).unwrap();
        assert_eq!(y_before.data(), y_after.data());

        // Training still works end to end on the shrunken geometry.
        let mut tctx = RunCtx::train();
        let y = b.forward(&x, &mut tctx).unwrap();
        assert!(b.backward(&y, &mut tctx).is_ok());
        assert_eq!(b.w.grad.dims(), &[4, 2, 3, 3]);
    }

    #[test]
    fn compaction_never_drops_the_last_filter() {
        let mut cfg = AlfBlockConfig::paper_default();
        cfg.threshold = 0.05;
        let mut b = AlfBlock::new(2, 4, 3, 1, 1, cfg, &mut Rng::new(26));
        for j in 0..4 {
            b.autoencoder_mut().set_mask_value(j, 0.0);
        }
        assert!(!b.compact_if_below(0.9).unwrap());
        assert_eq!(b.code_channels(), 4);
        // And the block still runs with everything pruned.
        let mut ctx = RunCtx::train();
        let y = b.forward(&Tensor::zeros(&[1, 2, 5, 5]), &mut ctx).unwrap();
        assert_eq!(y.dims(), &[1, 4, 5, 5]);
    }

    #[test]
    fn compacted_ste_routes_gradients_to_original_filters() {
        // After compaction, code row i corresponds to raw filter kept[i];
        // the STE must land gradients on those rows of W and leave the
        // removed channels' rows untouched — matching what the gated STE
        // did before the compaction.
        let mut cfg = AlfBlockConfig::paper_default();
        cfg.threshold = 0.05;
        let mut before = AlfBlock::new(2, 4, 3, 1, 1, cfg, &mut Rng::new(27));
        before.autoencoder_mut().set_mask_value(1, 0.0);
        before.autoencoder_mut().set_mask_value(3, 0.0);
        let mut after = before.clone();
        assert!(after.compact_if_below(0.9).unwrap());

        let mut rng = Rng::new(28);
        let x = Tensor::randn(&[1, 2, 5, 5], Init::Rand, &mut rng);
        for b in [&mut before, &mut after] {
            let mut ctx = RunCtx::train();
            let y = b.forward(&x, &mut ctx).unwrap();
            b.backward(&y, &mut ctx).unwrap();
        }
        assert_eq!(before.w.grad.data(), after.w.grad.data());
        let fan = 18;
        assert!(before.w.grad.data()[fan..2 * fan].iter().all(|&v| v == 0.0));
        assert!(before.w.grad.data()[..fan].iter().any(|&v| v != 0.0));
    }

    #[test]
    fn code_conv_weight_tracks_autoencoder() {
        let mut ctx = RunCtx::train();
        let mut b = block(11);
        let x = Tensor::zeros(&[1, 2, 4, 4]);
        b.forward(&x, &mut ctx).unwrap();
        let w1 = b.code_conv.weight().clone();
        // Mutate the autoencoder, forward again: conv weight must change.
        for _ in 0..50 {
            b.autoencoder_step(0.05, &PruneSchedule::paper_default())
                .unwrap();
        }
        b.forward(&x, &mut ctx).unwrap();
        assert_ne!(&w1, b.code_conv.weight());
    }
}
