//! Deterministic random number generation.
//!
//! Every stochastic component in the workspace (weight initialisation,
//! dataset synthesis, data shuffling, the AMC-style search agent) draws from
//! [`Rng`], a SplitMix64 generator. SplitMix64 passes BigCrush, needs only a
//! single `u64` of state, and — crucially for a reproduction — makes every
//! experiment bit-reproducible from its seed on any platform.

/// Deterministic SplitMix64 pseudo-random generator.
///
/// # Example
///
/// ```
/// use alf_tensor::rng::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives an independent child generator; used to give each layer /
    /// dataset / agent its own stream so adding a consumer does not perturb
    /// the draws of the others.
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // 24 high-quality mantissa bits.
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform range inverted: {lo} > {hi}");
        lo + (hi - lo) * self.next_f32()
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        loop {
            let u1 = self.next_f32();
            if u1 > f32::EPSILON {
                let u2 = self.next_f32();
                let r = (-2.0 * u1.ln()).sqrt();
                return r * (2.0 * std::f32::consts::PI * u2).cos();
            }
        }
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        (self.next_u64() % n as u64) as usize
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples an index proportionally to the given non-negative weights.
    ///
    /// Falls back to a uniform draw when all weights are zero.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or contains a negative value.
    pub fn weighted(&mut self, weights: &[f32]) -> usize {
        assert!(!weights.is_empty(), "weighted() needs at least one weight");
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weighted() requires non-negative weights"
        );
        let total: f32 = weights.iter().sum();
        if total <= 0.0 {
            return self.below(weights.len());
        }
        let mut u = self.next_f32() * total;
        for (i, &w) in weights.iter().enumerate() {
            if u < w {
                return i;
            }
            u -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(Rng::new(1).next_u64(), Rng::new(2).next_u64());
    }

    #[test]
    fn split_streams_are_independent_of_parent_consumption() {
        let mut parent = Rng::new(3);
        let child = parent.split();
        let mut parent2 = Rng::new(3);
        let child2 = parent2.split();
        assert_eq!(child, child2);
    }

    #[test]
    fn next_f32_in_unit_interval() {
        let mut r = Rng::new(11);
        for _ in 0..10_000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = Rng::new(5);
        for _ in 0..1000 {
            let x = r.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = Rng::new(13);
        let n = 50_000;
        let xs: Vec<f32> = (0..n).map(|_| r.normal()).collect();
        let mean: f32 = xs.iter().sum::<f32>() / n as f32;
        let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn below_covers_range() {
        let mut r = Rng::new(17);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.below(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(19);
        let mut xs: Vec<usize> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_prefers_heavy_weight() {
        let mut r = Rng::new(23);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[r.weighted(&[0.1, 0.1, 10.0])] += 1;
        }
        assert!(counts[2] > 2500, "{counts:?}");
    }

    #[test]
    fn weighted_all_zero_falls_back_to_uniform() {
        let mut r = Rng::new(29);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.weighted(&[0.0, 0.0, 0.0])] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
