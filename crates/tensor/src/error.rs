use std::fmt;

/// Error returned when tensor shapes are incompatible with an operation.
///
/// The error carries the operation name and a human-readable description of
/// the offending shapes so that failures deep inside a training loop are
/// diagnosable without a debugger.
///
/// # Example
///
/// ```
/// use alf_tensor::{Tensor, ops};
///
/// let a = Tensor::zeros(&[2, 3]);
/// let b = Tensor::zeros(&[4, 5]);
/// let err = ops::matmul(&a, &b).unwrap_err();
/// assert!(err.to_string().contains("matmul"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: String,
    detail: String,
}

impl ShapeError {
    /// Creates a new shape error for operation `op` with a free-form detail.
    pub fn new(op: impl Into<String>, detail: impl Into<String>) -> Self {
        Self {
            op: op.into(),
            detail: detail.into(),
        }
    }

    /// The name of the operation that rejected the shapes.
    pub fn op(&self) -> &str {
        &self.op
    }

    /// Human-readable description of the mismatch.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch in {}: {}", self.op, self.detail)
    }
}

impl std::error::Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_op_and_detail() {
        let e = ShapeError::new("matmul", "2x3 vs 4x5");
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3 vs 4x5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }

    #[test]
    fn accessors_round_trip() {
        let e = ShapeError::new("conv2d", "bad kernel");
        assert_eq!(e.op(), "conv2d");
        assert_eq!(e.detail(), "bad kernel");
    }
}
