//! Weight-initialisation schemes compared in the paper's design-space
//! exploration (Fig. 2a/2b): He (Kaiming) normal, Xavier (Glorot) uniform,
//! and plain uniform random.
//!
//! The fan-in/fan-out needed by He and Xavier is derived from the tensor
//! shape using the convolution convention `[c_out, c_in, k_h, k_w]`; rank-2
//! tensors are treated as `[fan_out, fan_in]` linear weights.

use crate::rng::Rng;
use crate::Tensor;

/// Weight-initialisation scheme.
///
/// # Example
///
/// ```
/// use alf_tensor::{init::Init, rng::Rng, Tensor};
///
/// let mut rng = Rng::new(0);
/// let w = Tensor::randn(&[16, 3, 3, 3], Init::He, &mut rng);
/// assert_eq!(w.len(), 16 * 3 * 3 * 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Init {
    /// He normal: `N(0, sqrt(2 / fan_in))` — suited to ReLU networks.
    He,
    /// Xavier (Glorot) uniform: `U(±sqrt(6 / (fan_in + fan_out)))`.
    Xavier,
    /// Plain uniform in `[-0.05, 0.05]` (the paper's "rand" configuration).
    Rand,
    /// All zeros (used for biases and the BN shift).
    Zeros,
    /// All ones (used for the BN scale and the initial ALF mask `M`).
    Ones,
}

impl Init {
    /// Fills `t` in place according to the scheme.
    pub fn fill(self, t: &mut Tensor, rng: &mut Rng) {
        let (fan_in, fan_out) = fans(t.dims());
        match self {
            Init::He => {
                let std = (2.0 / fan_in as f32).sqrt();
                for x in t.data_mut() {
                    *x = rng.normal_with(0.0, std);
                }
            }
            Init::Xavier => {
                let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
                for x in t.data_mut() {
                    *x = rng.uniform(-bound, bound);
                }
            }
            Init::Rand => {
                for x in t.data_mut() {
                    *x = rng.uniform(-0.05, 0.05);
                }
            }
            Init::Zeros => t.fill_zero(),
            Init::Ones => t.map_inplace(|_| 1.0),
        }
    }

    /// Short lowercase label used in experiment reports ("he", "xavier", …).
    pub fn label(self) -> &'static str {
        match self {
            Init::He => "he",
            Init::Xavier => "xavier",
            Init::Rand => "rand",
            Init::Zeros => "zeros",
            Init::Ones => "ones",
        }
    }
}

impl std::fmt::Display for Init {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Derives `(fan_in, fan_out)` from a weight shape.
///
/// * rank 4 `[c_out, c_in, k_h, k_w]` → `(c_in·k_h·k_w, c_out·k_h·k_w)`
/// * rank 2 `[out, in]` → `(in, out)`
/// * anything else → `(len, len)` — a safe, symmetric fallback.
pub fn fans(dims: &[usize]) -> (usize, usize) {
    match dims {
        [co, ci, kh, kw] => (ci * kh * kw, co * kh * kw),
        [out, inp] => (*inp, *out),
        other => {
            let n: usize = other.iter().product::<usize>().max(1);
            (n, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fans_conv_and_linear() {
        assert_eq!(fans(&[16, 3, 5, 5]), (75, 400));
        assert_eq!(fans(&[10, 64]), (64, 10));
        assert_eq!(fans(&[7]), (7, 7));
    }

    #[test]
    fn he_std_matches_fan_in() {
        let mut rng = Rng::new(1);
        let w = Tensor::randn(&[64, 64, 3, 3], Init::He, &mut rng);
        let expected_std = (2.0f32 / (64.0 * 9.0)).sqrt();
        let mean = w.mean();
        let var = w
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / w.len() as f32;
        assert!(mean.abs() < 0.002, "mean {mean}");
        assert!(
            (var.sqrt() - expected_std).abs() / expected_std < 0.05,
            "std {} vs {}",
            var.sqrt(),
            expected_std
        );
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = Rng::new(2);
        let w = Tensor::randn(&[32, 32, 3, 3], Init::Xavier, &mut rng);
        let bound = (6.0 / ((32 * 9 + 32 * 9) as f32)).sqrt();
        assert!(w.max() <= bound && w.min() >= -bound);
        // Should actually use most of the range.
        assert!(w.max() > 0.8 * bound);
    }

    #[test]
    fn rand_is_small_uniform() {
        let mut rng = Rng::new(3);
        let w = Tensor::randn(&[1000], Init::Rand, &mut rng);
        assert!(w.max() <= 0.05 && w.min() >= -0.05);
    }

    #[test]
    fn zeros_and_ones() {
        let mut rng = Rng::new(4);
        assert_eq!(Tensor::randn(&[4], Init::Zeros, &mut rng).sum(), 0.0);
        assert_eq!(Tensor::randn(&[4], Init::Ones, &mut rng).sum(), 4.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Init::He.to_string(), "he");
        assert_eq!(Init::Xavier.to_string(), "xavier");
        assert_eq!(Init::Rand.to_string(), "rand");
    }

    #[test]
    fn same_seed_same_init() {
        let a = Tensor::randn(&[8, 8], Init::He, &mut Rng::new(9));
        let b = Tensor::randn(&[8, 8], Init::He, &mut Rng::new(9));
        assert_eq!(a, b);
    }
}
