use std::fmt;

use crate::init::Init;
use crate::rng::Rng;
use crate::{Shape, ShapeError};

/// Owned, row-major, dense `f32` tensor.
///
/// `Tensor` is the single numerical container used across the workspace:
/// activations, weights, gradients, masks and datasets are all `Tensor`s.
/// Operations that can fail on shape grounds return
/// [`ShapeError`]; indexed accessors panic on out-of-range
/// indices (documented per method) because those indicate internal logic
/// errors rather than recoverable conditions.
///
/// # Example
///
/// ```
/// use alf_tensor::Tensor;
///
/// # fn main() -> Result<(), alf_tensor::ShapeError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.at(&[1, 2]), 6.0);
/// assert_eq!(t.sum(), 21.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ----- constructors ---------------------------------------------------

    /// All-zero tensor of the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// All-one tensor of the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Tensor filled with a constant value.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Self {
            shape,
            data: vec![value; len],
        }
    }

    /// Square identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a tensor from raw data in row-major order.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len()` does not equal the shape's element
    /// count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, ShapeError> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(ShapeError::new(
                "from_vec",
                format!("{} elements vs shape {shape}", data.len()),
            ));
        }
        Ok(Self { shape, data })
    }

    /// Builds a tensor by evaluating `f` at each linear index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(&mut f).collect();
        Self { shape, data }
    }

    /// Random tensor drawn via the given initialiser.
    pub fn randn(dims: &[usize], init: Init, rng: &mut Rng) -> Self {
        let mut t = Self::zeros(dims);
        init.fill(&mut t, rng);
        t
    }

    // ----- inspection -----------------------------------------------------

    /// Shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension list, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the backing row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is invalid.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is invalid.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    // ----- shape manipulation ----------------------------------------------

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns an error when the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, ShapeError> {
        let shape = Shape::new(dims);
        if shape.len() != self.len() {
            return Err(ShapeError::new(
                "reshape",
                format!("{} vs {shape}", self.shape),
            ));
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Transposed copy of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error when the tensor is not rank 2.
    pub fn transpose2(&self) -> Result<Tensor, ShapeError> {
        if self.shape.rank() != 2 {
            return Err(ShapeError::new(
                "transpose2",
                format!("expected rank 2, got {}", self.shape),
            ));
        }
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    // ----- elementwise -----------------------------------------------------

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two equally-shaped tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes differ.
    pub fn zip_map(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, ShapeError> {
        self.shape.expect_same(&other.shape, "zip_map")?;
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, ShapeError> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, ShapeError> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, ShapeError> {
        self.zip_map(other, |a, b| a * b)
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Errors
    ///
    /// Returns an error when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), ShapeError> {
        self.shape.expect_same(&other.shape, "axpy")?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scaled copy.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| alpha * x)
    }

    /// Scales every element in place.
    pub fn scale_inplace(&mut self, alpha: f32) {
        self.map_inplace(|x| alpha * x);
    }

    /// Sets all elements to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    // ----- reductions -------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first on ties; 0 for empty).
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .fold((0, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            })
            .0
    }

    /// Sum of squares of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Mean of absolute values (the L1 mask regulariser of the paper).
    pub fn mean_abs(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().map(|x| x.abs()).sum::<f32>() / self.data.len() as f32
        }
    }

    /// Number of elements whose absolute value is at most `eps`.
    pub fn count_near_zero(&self, eps: f32) -> usize {
        self.data.iter().filter(|x| x.abs() <= eps).count()
    }

    /// Dot product with another tensor of identical shape.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32, ShapeError> {
        self.shape.expect_same(&other.shape, "dot")?;
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// Returns `true` when every element is within `tol` of the matching
    /// element of `other` (shapes must match exactly).
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} n={}", self.shape, self.len())?;
        if self.len() <= 8 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[3], 2.5).sum(), 7.5);
    }

    #[test]
    fn eye_is_identity() {
        let i3 = Tensor::eye(3);
        assert_eq!(i3.at(&[0, 0]), 1.0);
        assert_eq!(i3.at(&[0, 1]), 0.0);
        assert_eq!(i3.sum(), 3.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn from_fn_indexes_linearly() {
        let t = Tensor::from_fn(&[2, 2], |i| i as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(&[2, 3], |i| i as f32);
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4]).is_err());
    }

    #[test]
    fn transpose2_swaps_axes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose2().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), 6.0);
        assert!(Tensor::zeros(&[2, 2, 2]).transpose2().is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
        assert!(a.add(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::full(&[3], 2.0);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-1.0, 4.0, 2.0, -3.0], &[4]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.argmax(), 1);
        assert_eq!(t.sq_norm(), 1.0 + 16.0 + 4.0 + 9.0);
        assert_eq!(t.mean_abs(), 2.5);
    }

    #[test]
    fn count_near_zero_uses_threshold() {
        let t = Tensor::from_vec(vec![0.0, 0.05, -0.2, 1.0], &[4]).unwrap();
        assert_eq!(t.count_near_zero(0.1), 2);
        assert_eq!(t.count_near_zero(0.0), 1);
    }

    #[test]
    fn dot_matches_manual() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn allclose_tolerates_small_differences() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0 + 1e-6, 2.0 - 1e-6], &[2]).unwrap();
        assert!(a.allclose(&b, 1e-5));
        assert!(!a.allclose(&b, 1e-8));
        assert!(!a.allclose(&Tensor::zeros(&[3]), 1.0));
    }

    #[test]
    fn at_mut_writes_through() {
        let mut t = Tensor::zeros(&[2, 2]);
        *t.at_mut(&[1, 0]) = 9.0;
        assert_eq!(t.at(&[1, 0]), 9.0);
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::zeros(&[2]);
        assert!(!t.to_string().is_empty());
    }
}
