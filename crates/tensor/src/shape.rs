use std::fmt;

use crate::ShapeError;

/// Dimensions of a [`Tensor`](crate::Tensor), stored outermost-first.
///
/// A `Shape` is a thin, validated wrapper over `Vec<usize>` providing the
/// row-major stride/offset arithmetic used throughout the workspace.
///
/// # Example
///
/// ```
/// use alf_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.offset(&[1, 2, 3]), 23);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension list.
    ///
    /// A zero-dimensional shape (`&[]`) denotes a scalar with one element.
    pub fn new(dims: &[usize]) -> Self {
        Self(dims.to_vec())
    }

    /// The dimension list, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; 1 for scalars).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.0.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.0.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.0.iter()).enumerate() {
            assert!(i < d, "index {i} out of range for axis {axis} of size {d}");
            off += i * strides[axis];
        }
        off
    }

    /// Checks this shape equals `other`, returning a [`ShapeError`] tagged
    /// with `op` otherwise.
    ///
    /// # Errors
    ///
    /// Returns an error when the dimension lists differ.
    pub fn expect_same(&self, other: &Shape, op: &str) -> Result<(), ShapeError> {
        if self == other {
            Ok(())
        } else {
            Err(ShapeError::new(op, format!("{self} vs {other}")))
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.strides(), vec![6, 2, 1]);
    }

    #[test]
    fn offset_walks_row_major_order() {
        let s = Shape::new(&[2, 3]);
        let mut seen = Vec::new();
        for i in 0..2 {
            for j in 0..3 {
                seen.push(s.offset(&[i, j]));
            }
        }
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn offset_rejects_out_of_range() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn offset_rejects_wrong_rank() {
        Shape::new(&[2, 2]).offset(&[0]);
    }

    #[test]
    fn expect_same_accepts_equal() {
        let a = Shape::new(&[2, 2]);
        assert!(a.expect_same(&Shape::new(&[2, 2]), "t").is_ok());
    }

    #[test]
    fn expect_same_reports_op() {
        let a = Shape::new(&[2, 2]);
        let err = a.expect_same(&Shape::new(&[3]), "myop").unwrap_err();
        assert_eq!(err.op(), "myop");
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).to_string(), "[2x3x4]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }

    #[test]
    fn conversions_from_slice_and_vec() {
        let a: Shape = (&[1usize, 2][..]).into();
        let b: Shape = vec![1usize, 2].into();
        assert_eq!(a, b);
    }
}
