//! Dense `f32` tensor library underpinning the ALF reproduction.
//!
//! This crate provides the numerical substrate the rest of the workspace is
//! built on: an owned, row-major, `f32` [`Tensor`] with shape checking, the
//! linear-algebra kernels needed for CNN training (blocked [`ops::matmul`],
//! [`ops::im2col`]/[`ops::col2im`] based convolution), elementwise/reduction helpers,
//! and the weight [`init`] schemes compared in the paper (He, Xavier,
//! uniform-random).
//!
//! # Conventions
//!
//! * Activations are `NCHW`: `[batch, channels, height, width]`.
//! * Convolution weights are `[c_out, c_in, k_h, k_w]` (the paper writes
//!   `K×K×Ci×Co`; only the memory order differs, the math is identical).
//! * All randomness flows through [`rng::Rng`], a small deterministic
//!   SplitMix64 generator, so every experiment in the workspace is exactly
//!   reproducible from a `u64` seed.
//!
//! # Example
//!
//! ```
//! use alf_tensor::{Tensor, ops};
//!
//! # fn main() -> Result<(), alf_tensor::ShapeError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = ops::matmul(&a, &b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod init;
pub mod ops;
pub mod rng;
mod shape;
mod tensor;

pub use error::ShapeError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience result alias for fallible tensor operations.
pub type Result<T, E = ShapeError> = std::result::Result<T, E>;
