use crate::{ShapeError, Tensor};

/// Concatenates two `NCHW` tensors along the channel axis.
///
/// # Errors
///
/// Returns an error unless both tensors are rank 4 and agree on batch and
/// spatial dimensions.
///
/// # Example
///
/// ```
/// use alf_tensor::{ops::concat_channels, Tensor};
///
/// # fn main() -> Result<(), alf_tensor::ShapeError> {
/// let a = Tensor::ones(&[1, 2, 3, 3]);
/// let b = Tensor::zeros(&[1, 1, 3, 3]);
/// let c = concat_channels(&a, &b)?;
/// assert_eq!(c.dims(), &[1, 3, 3, 3]);
/// # Ok(())
/// # }
/// ```
pub fn concat_channels(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (na, ca, ha, wa) = rank4("concat_channels", a)?;
    let (nb, cb, hb, wb) = rank4("concat_channels", b)?;
    if na != nb || ha != hb || wa != wb {
        return Err(ShapeError::new(
            "concat_channels",
            format!("{} vs {}", a.shape(), b.shape()),
        ));
    }
    let plane = ha * wa;
    let mut out = Tensor::zeros(&[na, ca + cb, ha, wa]);
    let dst = out.data_mut();
    for n in 0..na {
        let dst_base = n * (ca + cb) * plane;
        dst[dst_base..dst_base + ca * plane]
            .copy_from_slice(&a.data()[n * ca * plane..(n + 1) * ca * plane]);
        dst[dst_base + ca * plane..dst_base + (ca + cb) * plane]
            .copy_from_slice(&b.data()[n * cb * plane..(n + 1) * cb * plane]);
    }
    Ok(out)
}

/// Splits an `NCHW` tensor into its first `c_first` channels and the rest
/// — the adjoint of [`concat_channels`], used by branch-merge backward
/// passes.
///
/// # Errors
///
/// Returns an error unless the tensor is rank 4 and
/// `0 < c_first < channels`.
pub fn split_channels(t: &Tensor, c_first: usize) -> Result<(Tensor, Tensor), ShapeError> {
    let (n, c, h, w) = rank4("split_channels", t)?;
    if c_first == 0 || c_first >= c {
        return Err(ShapeError::new(
            "split_channels",
            format!("cannot split {c} channels at {c_first}"),
        ));
    }
    let plane = h * w;
    let c_rest = c - c_first;
    let mut first = Tensor::zeros(&[n, c_first, h, w]);
    let mut rest = Tensor::zeros(&[n, c_rest, h, w]);
    for b in 0..n {
        let src_base = b * c * plane;
        first.data_mut()[b * c_first * plane..(b + 1) * c_first * plane]
            .copy_from_slice(&t.data()[src_base..src_base + c_first * plane]);
        rest.data_mut()[b * c_rest * plane..(b + 1) * c_rest * plane]
            .copy_from_slice(&t.data()[src_base + c_first * plane..src_base + c * plane]);
    }
    Ok((first, rest))
}

fn rank4(op: &str, t: &Tensor) -> Result<(usize, usize, usize, usize), ShapeError> {
    match t.dims() {
        &[n, c, h, w] => Ok((n, c, h, w)),
        _ => Err(ShapeError::new(
            op,
            format!("expected rank-4 tensor, got {}", t.shape()),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::rng::Rng;

    #[test]
    fn concat_then_split_round_trips() {
        let mut rng = Rng::new(0);
        let a = Tensor::randn(&[2, 3, 4, 4], Init::Rand, &mut rng);
        let b = Tensor::randn(&[2, 5, 4, 4], Init::Rand, &mut rng);
        let c = concat_channels(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 8, 4, 4]);
        let (a2, b2) = split_channels(&c, 3).unwrap();
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }

    #[test]
    fn concat_preserves_values_at_indices() {
        let a = Tensor::from_fn(&[1, 1, 2, 2], |i| i as f32);
        let b = Tensor::from_fn(&[1, 1, 2, 2], |i| 10.0 + i as f32);
        let c = concat_channels(&a, &b).unwrap();
        assert_eq!(c.at(&[0, 0, 1, 1]), 3.0);
        assert_eq!(c.at(&[0, 1, 0, 0]), 10.0);
    }

    #[test]
    fn concat_validates_shapes() {
        let a = Tensor::zeros(&[1, 2, 4, 4]);
        assert!(concat_channels(&a, &Tensor::zeros(&[2, 2, 4, 4])).is_err());
        assert!(concat_channels(&a, &Tensor::zeros(&[1, 2, 3, 4])).is_err());
        assert!(concat_channels(&a, &Tensor::zeros(&[2, 4, 4])).is_err());
    }

    #[test]
    fn split_validates_boundary() {
        let t = Tensor::zeros(&[1, 4, 2, 2]);
        assert!(split_channels(&t, 0).is_err());
        assert!(split_channels(&t, 4).is_err());
        assert!(split_channels(&t, 5).is_err());
        assert!(split_channels(&Tensor::zeros(&[4, 2, 2]), 1).is_err());
    }

    #[test]
    fn adjoint_property_holds() {
        // <concat(a,b), y> == <a, y_first> + <b, y_rest>
        let mut rng = Rng::new(1);
        let a = Tensor::randn(&[1, 2, 3, 3], Init::Rand, &mut rng);
        let b = Tensor::randn(&[1, 3, 3, 3], Init::Rand, &mut rng);
        let cat = concat_channels(&a, &b).unwrap();
        let y = Tensor::randn(cat.dims(), Init::Rand, &mut rng);
        let (ya, yb) = split_channels(&y, 2).unwrap();
        let lhs = cat.dot(&y).unwrap();
        let rhs = a.dot(&ya).unwrap() + b.dot(&yb).unwrap();
        assert!((lhs - rhs).abs() < 1e-4);
    }
}
