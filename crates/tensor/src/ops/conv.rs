use crate::{ShapeError, Tensor};

use super::matmul;

/// Geometry of a 2-D convolution: square kernel, symmetric stride/padding.
///
/// # Example
///
/// ```
/// use alf_tensor::ops::Conv2dSpec;
///
/// let spec = Conv2dSpec::new(3, 1, 1); // 3x3, stride 1, "same" padding
/// assert_eq!(spec.output_hw(32, 32), (32, 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Conv2dSpec {
    /// Square kernel size `K`.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding in both dimensions.
    pub pad: usize,
}

impl Conv2dSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        Self {
            kernel,
            stride,
            pad,
        }
    }

    /// Output spatial size for an input of `h × w`.
    ///
    /// # Panics
    ///
    /// Panics when the padded input is smaller than the kernel.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        conv_output_hw(h, w, self.kernel, self.stride, self.pad)
    }
}

/// Output spatial size of a convolution (`floor` convention).
///
/// # Panics
///
/// Panics when the padded input is smaller than the kernel.
pub fn conv_output_hw(h: usize, w: usize, k: usize, stride: usize, pad: usize) -> (usize, usize) {
    assert!(
        h + 2 * pad >= k && w + 2 * pad >= k,
        "padded input {h}x{w} (+{pad}) smaller than kernel {k}"
    );
    (
        (h + 2 * pad - k) / stride + 1,
        (w + 2 * pad - k) / stride + 1,
    )
}

/// Unfolds an `NCHW` input into the column matrix used by GEMM convolution.
///
/// The result has shape `[c_in·k·k, n·h_out·w_out]`; column `(b, y, x)`
/// contains the receptive field of output pixel `(y, x)` of batch element
/// `b`, flattened channel-major. Out-of-bounds taps read as zero
/// (zero padding).
///
/// # Errors
///
/// Returns an error unless `input` is rank 4.
pub fn im2col(input: &Tensor, spec: Conv2dSpec) -> Result<Tensor, ShapeError> {
    let [n, ci, h, w] = rank4("im2col", input)?;
    let (ho, wo) = spec.output_hw(h, w);
    let k = spec.kernel;
    let mut out = Tensor::zeros(&[ci * k * k, n * ho * wo]);
    im2col_into(out.data_mut(), input, spec)?;
    Ok(out)
}

/// [`im2col`] into a caller-owned buffer of exactly
/// `ci·k·k · n·h_out·w_out` elements — the allocation-free variant the
/// `alf-nn` conv layer uses with its per-layer workspace. The buffer is
/// fully overwritten (zeroed first, since padding taps are never stored).
///
/// # Errors
///
/// Returns an error unless `input` is rank 4 and `dst` has the exact
/// output length.
pub fn im2col_into(dst: &mut [f32], input: &Tensor, spec: Conv2dSpec) -> Result<(), ShapeError> {
    let [n, ci, h, w] = rank4("im2col_into", input)?;
    let (ho, wo) = spec.output_hw(h, w);
    let k = spec.kernel;
    let rows = ci * k * k;
    let cols = n * ho * wo;
    if dst.len() != rows * cols {
        return Err(ShapeError::new(
            "im2col_into",
            format!(
                "buffer has {} elements, expected {}x{}",
                dst.len(),
                rows,
                cols
            ),
        ));
    }
    dst.fill(0.0);
    let src = input.data();
    for b in 0..n {
        for c in 0..ci {
            let plane = &src[(b * ci + c) * h * w..(b * ci + c + 1) * h * w];
            for ky in 0..k {
                for kx in 0..k {
                    let row = (c * k + ky) * k + kx;
                    for oy in 0..ho {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        for ox in 0..wo {
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let col = (b * ho + oy) * wo + ox;
                            dst[row * cols + col] = plane[iy * w + ix as usize];
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Folds a column matrix back into an `NCHW` tensor, *accumulating*
/// overlapping contributions — the adjoint of [`im2col`], used for the
/// input-gradient of convolution.
///
/// # Errors
///
/// Returns an error when `cols` does not have the shape `im2col` would have
/// produced for the given geometry.
pub fn col2im(
    cols: &Tensor,
    n: usize,
    ci: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
) -> Result<Tensor, ShapeError> {
    let (ho, wo) = spec.output_hw(h, w);
    let k = spec.kernel;
    let expected = [ci * k * k, n * ho * wo];
    if cols.dims() != expected {
        return Err(ShapeError::new(
            "col2im",
            format!(
                "got {}, expected [{}x{}]",
                cols.shape(),
                expected[0],
                expected[1]
            ),
        ));
    }
    let mut out = Tensor::zeros(&[n, ci, h, w]);
    col2im_into(out.data_mut(), cols.data(), n, ci, h, w, spec)?;
    Ok(out)
}

/// [`col2im`] into a caller-owned buffer of exactly `n·ci·h·w` elements —
/// the allocation-free variant used by the `alf-nn` conv backward pass.
/// The buffer is zeroed, then overlapping contributions accumulate.
///
/// # Errors
///
/// Returns an error when either buffer length disagrees with the stated
/// geometry.
pub fn col2im_into(
    dst: &mut [f32],
    cols: &[f32],
    n: usize,
    ci: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
) -> Result<(), ShapeError> {
    let (ho, wo) = spec.output_hw(h, w);
    let k = spec.kernel;
    let ncols = n * ho * wo;
    if cols.len() != ci * k * k * ncols {
        return Err(ShapeError::new(
            "col2im_into",
            format!(
                "cols has {} elements, expected {}x{}",
                cols.len(),
                ci * k * k,
                ncols
            ),
        ));
    }
    if dst.len() != n * ci * h * w {
        return Err(ShapeError::new(
            "col2im_into",
            format!(
                "buffer has {} elements, expected {n}x{ci}x{h}x{w}",
                dst.len()
            ),
        ));
    }
    dst.fill(0.0);
    let src = cols;
    for b in 0..n {
        for c in 0..ci {
            let base = (b * ci + c) * h * w;
            for ky in 0..k {
                for kx in 0..k {
                    let row = (c * k + ky) * k + kx;
                    for oy in 0..ho {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        for ox in 0..wo {
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let col = (b * ho + oy) * wo + ox;
                            dst[base + iy * w + ix as usize] += src[row * ncols + col];
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// 2-D convolution forward pass: `NCHW` input, `[c_out, c_in, k, k]`
/// weights, optional per-channel bias.
///
/// Implemented as `im2col` followed by a single GEMM, which is also how the
/// backward pass (in `alf-nn`) consumes the saved column matrix.
///
/// # Errors
///
/// Returns an error when ranks mismatch, the weight's `c_in` differs from
/// the input's, or `bias` (when given) is not `[c_out]`.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Result<Tensor, ShapeError> {
    let [n, ci, h, w] = rank4("conv2d input", input)?;
    let [co, wci, kh, kw] = rank4("conv2d weight", weight)?;
    if wci != ci {
        return Err(ShapeError::new(
            "conv2d",
            format!("input channels {ci} vs weight channels {wci}"),
        ));
    }
    if kh != spec.kernel || kw != spec.kernel {
        return Err(ShapeError::new(
            "conv2d",
            format!("weight kernel {kh}x{kw} vs spec {}", spec.kernel),
        ));
    }
    if let Some(b) = bias {
        if b.dims() != [co] {
            return Err(ShapeError::new(
                "conv2d",
                format!("bias {} vs c_out {co}", b.shape()),
            ));
        }
    }
    let (ho, wo) = spec.output_hw(h, w);
    let cols = im2col(input, spec)?;
    let wmat = weight.reshape(&[co, ci * spec.kernel * spec.kernel])?;
    // [co, ci·k²] × [ci·k², n·ho·wo] → [co, n·ho·wo]
    let prod = matmul(&wmat, &cols)?;
    // Rearrange [co, n·ho·wo] → [n, co, ho, wo].
    let mut out = Tensor::zeros(&[n, co, ho, wo]);
    let pd = prod.data();
    let od = out.data_mut();
    let hw = ho * wo;
    for c in 0..co {
        let bias_v = bias.map_or(0.0, |b| b.data()[c]);
        for b in 0..n {
            let src = &pd[c * n * hw + b * hw..c * n * hw + (b + 1) * hw];
            let dst = &mut od[(b * co + c) * hw..(b * co + c + 1) * hw];
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = s + bias_v;
            }
        }
    }
    Ok(out)
}

fn rank4(op: &str, t: &Tensor) -> Result<[usize; 4], ShapeError> {
    match t.dims() {
        &[a, b, c, d] => Ok([a, b, c, d]),
        _ => Err(ShapeError::new(
            op,
            format!("expected rank-4 tensor, got {}", t.shape()),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::rng::Rng;

    /// Direct (slow) convolution used as a reference implementation.
    fn conv_reference(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Tensor {
        let (n, ci, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let co = weight.dims()[0];
        let k = spec.kernel;
        let (ho, wo) = spec.output_hw(h, w);
        let mut out = Tensor::zeros(&[n, co, ho, wo]);
        for b in 0..n {
            for o in 0..co {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut acc = 0.0;
                        for c in 0..ci {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                                    let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.at(&[b, c, iy as usize, ix as usize])
                                        * weight.at(&[o, c, ky, kx]);
                                }
                            }
                        }
                        *out.at_mut(&[b, o, oy, ox]) = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn output_hw_matches_floor_formula() {
        assert_eq!(conv_output_hw(32, 32, 3, 1, 1), (32, 32));
        assert_eq!(conv_output_hw(32, 32, 3, 2, 1), (16, 16));
        assert_eq!(conv_output_hw(7, 7, 3, 1, 0), (5, 5));
        assert_eq!(conv_output_hw(224, 224, 7, 2, 3), (112, 112));
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn output_hw_rejects_tiny_input() {
        conv_output_hw(2, 2, 5, 1, 0);
    }

    #[test]
    fn gemm_conv_matches_reference() {
        let mut rng = Rng::new(7);
        for &(n, ci, co, h, k, s, p) in &[
            (1, 1, 1, 5, 3, 1, 1),
            (2, 3, 4, 8, 3, 1, 1),
            (1, 2, 3, 9, 3, 2, 1),
            (2, 4, 2, 6, 1, 1, 0),
            (1, 3, 5, 7, 5, 1, 2),
            (1, 2, 2, 8, 3, 2, 0),
        ] {
            let spec = Conv2dSpec::new(k, s, p);
            let x = Tensor::randn(&[n, ci, h, h], Init::Rand, &mut rng);
            let wt = Tensor::randn(&[co, ci, k, k], Init::Rand, &mut rng);
            let fast = conv2d(&x, &wt, None, spec).unwrap();
            let slow = conv_reference(&x, &wt, spec);
            assert!(
                fast.allclose(&slow, 1e-4),
                "case {n} {ci} {co} {h} {k} {s} {p}"
            );
        }
    }

    #[test]
    fn bias_is_added_per_channel() {
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let wt = Tensor::zeros(&[2, 1, 1, 1]);
        let b = Tensor::from_vec(vec![1.5, -2.0], &[2]).unwrap();
        let y = conv2d(&x, &wt, Some(&b), Conv2dSpec::new(1, 1, 0)).unwrap();
        assert_eq!(y.at(&[0, 0, 1, 1]), 1.5);
        assert_eq!(y.at(&[0, 1, 2, 0]), -2.0);
    }

    #[test]
    fn conv2d_validates_shapes() {
        let spec = Conv2dSpec::new(3, 1, 1);
        let x = Tensor::zeros(&[1, 3, 8, 8]);
        assert!(conv2d(&x, &Tensor::zeros(&[4, 2, 3, 3]), None, spec).is_err());
        assert!(conv2d(&x, &Tensor::zeros(&[4, 3, 5, 5]), None, spec).is_err());
        let w_ok = Tensor::zeros(&[4, 3, 3, 3]);
        assert!(conv2d(&x, &w_ok, Some(&Tensor::zeros(&[3])), spec).is_err());
        assert!(conv2d(&Tensor::zeros(&[3, 8, 8]), &w_ok, None, spec).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property the conv backward pass relies on.
        let mut rng = Rng::new(11);
        let spec = Conv2dSpec::new(3, 2, 1);
        let (n, ci, h, w) = (2, 3, 7, 7);
        let x = Tensor::randn(&[n, ci, h, w], Init::Rand, &mut rng);
        let cols = im2col(&x, spec).unwrap();
        let y = Tensor::randn(cols.dims(), Init::Rand, &mut rng);
        let lhs = cols.dot(&y).unwrap();
        let back = col2im(&y, n, ci, h, w, spec).unwrap();
        let rhs = x.dot(&back).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn into_variants_match_allocating_variants() {
        let mut rng = Rng::new(19);
        let spec = Conv2dSpec::new(3, 2, 1);
        let (n, ci, h, w) = (2, 3, 7, 7);
        let x = Tensor::randn(&[n, ci, h, w], Init::Rand, &mut rng);
        let cols = im2col(&x, spec).unwrap();
        let mut cols_buf = vec![f32::NAN; cols.data().len()];
        im2col_into(&mut cols_buf, &x, spec).unwrap();
        assert_eq!(cols.data(), &cols_buf[..]);

        let y = Tensor::randn(cols.dims(), Init::Rand, &mut rng);
        let folded = col2im(&y, n, ci, h, w, spec).unwrap();
        let mut fold_buf = vec![f32::NAN; n * ci * h * w];
        col2im_into(&mut fold_buf, y.data(), n, ci, h, w, spec).unwrap();
        assert_eq!(folded.data(), &fold_buf[..]);
    }

    #[test]
    fn into_variants_validate_buffer_lengths() {
        let spec = Conv2dSpec::new(3, 1, 1);
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        assert!(im2col_into(&mut [0.0; 3], &x, spec).is_err());
        assert!(col2im_into(&mut [0.0; 16], &[0.0; 3], 1, 1, 4, 4, spec).is_err());
        assert!(col2im_into(&mut [0.0; 5], &[0.0; 144], 1, 1, 4, 4, spec).is_err());
    }

    #[test]
    fn col2im_validates_shape() {
        let spec = Conv2dSpec::new(3, 1, 1);
        let bad = Tensor::zeros(&[5, 5]);
        assert!(col2im(&bad, 1, 1, 4, 4, spec).is_err());
    }

    #[test]
    fn im2col_zero_padding_reads_zero() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let cols = im2col(&x, Conv2dSpec::new(3, 1, 1)).unwrap();
        // Corner output (0,0): only the 4 in-bounds taps are 1.
        let col0: f32 = (0..9).map(|r| cols.at(&[r, 0])).sum();
        assert_eq!(col0, 4.0);
    }

    #[test]
    fn pointwise_conv_is_channel_mix() {
        // 1x1 conv must equal a per-pixel matrix multiply over channels.
        let mut rng = Rng::new(13);
        let x = Tensor::randn(&[1, 3, 4, 4], Init::Rand, &mut rng);
        let wt = Tensor::randn(&[2, 3, 1, 1], Init::Rand, &mut rng);
        let y = conv2d(&x, &wt, None, Conv2dSpec::new(1, 1, 0)).unwrap();
        let expected = {
            let mut e = Tensor::zeros(&[1, 2, 4, 4]);
            for o in 0..2 {
                for c in 0..3 {
                    for p in 0..16 {
                        let (py, px) = (p / 4, p % 4);
                        *e.at_mut(&[0, o, py, px]) += wt.at(&[o, c, 0, 0]) * x.at(&[0, c, py, px]);
                    }
                }
            }
            e
        };
        assert!(y.allclose(&expected, 1e-5));
    }
}
