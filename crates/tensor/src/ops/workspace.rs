//! Reusable scratch-buffer arena for the kernel layer.
//!
//! The training hot loop calls conv forward/backward thousands of times
//! per epoch; allocating fresh im2col/col2im matrices and GEMM packing
//! panels on every call dominated the allocator profile of the seed
//! implementation. A [`Workspace`] owns those buffers and hands them out
//! by name: the first step of a layer grows each slot to its steady-state
//! size, and every later step reuses the same memory.
//!
//! Buffers move **out** of the arena while in use (`take`) and back in
//! when done (`give`), so several buffers can be live at once without
//! fighting the borrow checker — including across nested calls (the conv
//! path takes its column buffer, then the GEMM underneath takes its
//! packing panels from the same workspace).
//!
//! The arena counts every allocation event (slot creation or capacity
//! growth). After warm-up a workspace can be [frozen](Workspace::freeze):
//! any further growth trips a debug assertion and still increments the
//! counter, which is how the zero-allocation-per-step guarantee of the
//! conv path is enforced in tests.

use std::cell::RefCell;

/// Named scratch-buffer arena with allocation accounting.
///
/// # Example
///
/// ```
/// use alf_tensor::ops::Workspace;
///
/// let mut ws = Workspace::new();
/// let mut buf = ws.take("cols", 128);
/// buf[0] = 1.0;
/// ws.give("cols", buf);
/// assert_eq!(ws.alloc_events(), 1);
///
/// // Steady state: same slot, same size — no new allocation.
/// let buf = ws.take("cols", 128);
/// ws.give("cols", buf);
/// assert_eq!(ws.alloc_events(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    slots: Vec<Slot>,
    idx_slots: Vec<IdxSlot>,
    i8_slots: Vec<I8Slot>,
    i32_slots: Vec<I32Slot>,
    alloc_events: u64,
    frozen: bool,
}

#[derive(Debug)]
struct Slot {
    name: &'static str,
    buf: Vec<f32>,
    /// Largest capacity ever observed for this slot, in elements. The
    /// buffer itself is moved out while in use, so the high-water mark
    /// must be recorded here rather than read off `buf`.
    cap: usize,
}

#[derive(Debug)]
struct IdxSlot {
    name: &'static str,
    buf: Vec<usize>,
    cap: usize,
}

#[derive(Debug)]
struct I8Slot {
    name: &'static str,
    buf: Vec<i8>,
    cap: usize,
}

#[derive(Debug)]
struct I32Slot {
    name: &'static str,
    buf: Vec<i32>,
    cap: usize,
}

impl Workspace {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the named buffer out of the arena, resized to `len`
    /// elements. Contents are unspecified (previous contents are
    /// preserved up to the common length — the conv backward pass relies
    /// on re-taking the column buffer its forward pass filled).
    ///
    /// Counts an allocation event when the slot is new or must grow; in a
    /// [frozen](Workspace::freeze) workspace growth additionally trips a
    /// debug assertion.
    pub fn take(&mut self, name: &'static str, len: usize) -> Vec<f32> {
        let idx = match self.slots.iter().position(|s| s.name == name) {
            Some(i) => i,
            None => {
                self.note_alloc(name, len);
                self.slots.push(Slot {
                    name,
                    buf: Vec::with_capacity(len),
                    cap: 0,
                });
                self.slots.len() - 1
            }
        };
        let mut buf = std::mem::take(&mut self.slots[idx].buf);
        if buf.capacity() < len {
            self.note_grow(name, buf.capacity(), len);
            buf.reserve(len - buf.len());
        }
        buf.resize(len, 0.0);
        self.slots[idx].cap = self.slots[idx].cap.max(buf.capacity());
        buf
    }

    /// Returns a buffer to the arena, normally one previously obtained
    /// from [`Workspace::take`]. A buffer whose slot does not exist is
    /// adopted (slot created, counted as an allocation event) — this is
    /// what lets a cloned layer, whose clone carried live cached buffers
    /// but a fresh workspace, donate them back on its first step.
    pub fn give(&mut self, name: &'static str, buf: Vec<f32>) {
        match self.slots.iter_mut().find(|s| s.name == name) {
            Some(slot) => {
                slot.cap = slot.cap.max(buf.capacity());
                slot.buf = buf;
            }
            None => {
                self.note_alloc(name, buf.capacity());
                let cap = buf.capacity();
                self.slots.push(Slot { name, buf, cap });
            }
        }
    }

    /// Takes the named index buffer out of the arena, cleared, with
    /// capacity for at least `cap` entries. Used by the sparse-LHS GEMM
    /// path for its row map; accounting matches [`Workspace::take`].
    pub fn take_idx(&mut self, name: &'static str, cap: usize) -> Vec<usize> {
        let idx = match self.idx_slots.iter().position(|s| s.name == name) {
            Some(i) => i,
            None => {
                self.note_alloc(name, cap);
                self.idx_slots.push(IdxSlot {
                    name,
                    buf: Vec::with_capacity(cap),
                    cap: 0,
                });
                self.idx_slots.len() - 1
            }
        };
        let mut buf = std::mem::take(&mut self.idx_slots[idx].buf);
        buf.clear();
        if buf.capacity() < cap {
            self.note_grow(name, buf.capacity(), cap);
            buf.reserve(cap);
        }
        self.idx_slots[idx].cap = self.idx_slots[idx].cap.max(buf.capacity());
        buf
    }

    /// Returns an index buffer to the arena; adoption semantics match
    /// [`Workspace::give`].
    pub fn give_idx(&mut self, name: &'static str, buf: Vec<usize>) {
        match self.idx_slots.iter_mut().find(|s| s.name == name) {
            Some(slot) => {
                slot.cap = slot.cap.max(buf.capacity());
                slot.buf = buf;
            }
            None => {
                self.note_alloc(name, buf.capacity());
                let cap = buf.capacity();
                self.idx_slots.push(IdxSlot { name, buf, cap });
            }
        }
    }

    /// Takes the named i8 buffer out of the arena, resized to `len`
    /// elements; contents semantics and allocation accounting match
    /// [`Workspace::take`]. Used by the int8 inference path for quantized
    /// im2col matrices and GEMM packing panels.
    pub fn take_i8(&mut self, name: &'static str, len: usize) -> Vec<i8> {
        let idx = match self.i8_slots.iter().position(|s| s.name == name) {
            Some(i) => i,
            None => {
                self.note_alloc(name, len);
                self.i8_slots.push(I8Slot {
                    name,
                    buf: Vec::with_capacity(len),
                    cap: 0,
                });
                self.i8_slots.len() - 1
            }
        };
        let mut buf = std::mem::take(&mut self.i8_slots[idx].buf);
        if buf.capacity() < len {
            self.note_grow(name, buf.capacity(), len);
            buf.reserve(len - buf.len());
        }
        buf.resize(len, 0);
        self.i8_slots[idx].cap = self.i8_slots[idx].cap.max(buf.capacity());
        buf
    }

    /// Returns an i8 buffer to the arena; adoption semantics match
    /// [`Workspace::give`].
    pub fn give_i8(&mut self, name: &'static str, buf: Vec<i8>) {
        match self.i8_slots.iter_mut().find(|s| s.name == name) {
            Some(slot) => {
                slot.cap = slot.cap.max(buf.capacity());
                slot.buf = buf;
            }
            None => {
                self.note_alloc(name, buf.capacity());
                let cap = buf.capacity();
                self.i8_slots.push(I8Slot { name, buf, cap });
            }
        }
    }

    /// Takes the named i32 buffer out of the arena, resized to `len`
    /// elements; contents semantics and allocation accounting match
    /// [`Workspace::take`]. Used for the int8 GEMM's i32 accumulators.
    pub fn take_i32(&mut self, name: &'static str, len: usize) -> Vec<i32> {
        let idx = match self.i32_slots.iter().position(|s| s.name == name) {
            Some(i) => i,
            None => {
                self.note_alloc(name, len);
                self.i32_slots.push(I32Slot {
                    name,
                    buf: Vec::with_capacity(len),
                    cap: 0,
                });
                self.i32_slots.len() - 1
            }
        };
        let mut buf = std::mem::take(&mut self.i32_slots[idx].buf);
        if buf.capacity() < len {
            self.note_grow(name, buf.capacity(), len);
            buf.reserve(len - buf.len());
        }
        buf.resize(len, 0);
        self.i32_slots[idx].cap = self.i32_slots[idx].cap.max(buf.capacity());
        buf
    }

    /// Returns an i32 buffer to the arena; adoption semantics match
    /// [`Workspace::give`].
    pub fn give_i32(&mut self, name: &'static str, buf: Vec<i32>) {
        match self.i32_slots.iter_mut().find(|s| s.name == name) {
            Some(slot) => {
                slot.cap = slot.cap.max(buf.capacity());
                slot.buf = buf;
            }
            None => {
                self.note_alloc(name, buf.capacity());
                let cap = buf.capacity();
                self.i32_slots.push(I32Slot { name, buf, cap });
            }
        }
    }

    /// Number of allocation events (slot creations + capacity growths)
    /// since construction.
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }

    /// High-water mark of the arena in bytes: the sum over all slots of
    /// the largest capacity each has ever reached. Buffers move out of the
    /// arena while in use, so this is tracked per slot rather than summed
    /// from resident buffers; it is what the profiler reports as scratch
    /// footprint.
    pub fn high_water_bytes(&self) -> usize {
        let f32s: usize = self.slots.iter().map(|s| s.cap).sum();
        let idxs: usize = self.idx_slots.iter().map(|s| s.cap).sum();
        let i8s: usize = self.i8_slots.iter().map(|s| s.cap).sum();
        let i32s: usize = self.i32_slots.iter().map(|s| s.cap).sum();
        f32s * std::mem::size_of::<f32>()
            + idxs * std::mem::size_of::<usize>()
            + i8s
            + i32s * std::mem::size_of::<i32>()
    }

    /// Marks the workspace as warmed up: any further buffer growth trips
    /// a debug assertion (and is still counted), turning per-step
    /// allocation churn into a loud failure in tests.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Re-allows growth after [`Workspace::freeze`].
    pub fn thaw(&mut self) {
        self.frozen = false;
    }

    /// Whether the workspace is currently frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    fn note_alloc(&mut self, name: &'static str, len: usize) {
        self.alloc_events += 1;
        debug_assert!(
            !self.frozen,
            "workspace frozen but slot '{name}' created ({len} elements)"
        );
    }

    fn note_grow(&mut self, name: &'static str, from: usize, to: usize) {
        self.alloc_events += 1;
        debug_assert!(
            !self.frozen,
            "workspace frozen but slot '{name}' grew {from} -> {to} elements"
        );
    }
}

/// A `Clone` that yields a fresh, empty workspace.
///
/// Workspaces hold scratch state only, so cloning a layer that owns one
/// must not duplicate megabytes of dead buffers; the clone warms up its
/// own arena on first use.
impl Clone for Workspace {
    fn clone(&self) -> Self {
        Self::new()
    }
}

thread_local! {
    static THREAD_WS: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Runs `f` with this thread's shared scratch workspace.
///
/// The tensor-level convenience entry points ([`matmul`](crate::ops::matmul)
/// and friends, [`conv2d`](crate::ops::conv2d)) use this so repeated calls
/// reuse packing and column buffers without threading a workspace through
/// every signature. Do **not** call it reentrantly from inside `f` — the
/// kernel layer instead passes the already-borrowed workspace down
/// explicitly.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    THREAD_WS.with(|cell| f(&mut cell.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_roundtrip_preserves_contents() {
        let mut ws = Workspace::new();
        let mut a = ws.take("a", 4);
        a.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        ws.give("a", a);
        let a = ws.take("a", 4);
        assert_eq!(a, vec![1.0, 2.0, 3.0, 4.0]);
        ws.give("a", a);
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let mut ws = Workspace::new();
        for name in ["x", "y"] {
            let b = ws.take(name, 256);
            ws.give(name, b);
        }
        let warmup = ws.alloc_events();
        ws.freeze();
        for _ in 0..10 {
            for name in ["x", "y"] {
                let b = ws.take(name, 256);
                ws.give(name, b);
            }
        }
        assert_eq!(ws.alloc_events(), warmup);
    }

    #[test]
    fn shrinking_then_regrowing_within_capacity_is_free() {
        let mut ws = Workspace::new();
        let b = ws.take("x", 512);
        ws.give("x", b);
        let events = ws.alloc_events();
        let b = ws.take("x", 64);
        ws.give("x", b);
        let b = ws.take("x", 512);
        ws.give("x", b);
        assert_eq!(ws.alloc_events(), events);
    }

    #[test]
    fn growth_counts_an_event() {
        let mut ws = Workspace::new();
        let b = ws.take("x", 16);
        ws.give("x", b);
        assert_eq!(ws.alloc_events(), 1);
        let b = ws.take("x", 1024);
        ws.give("x", b);
        assert_eq!(ws.alloc_events(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "workspace frozen")]
    fn frozen_growth_trips_debug_assertion() {
        let mut ws = Workspace::new();
        let b = ws.take("x", 8);
        ws.give("x", b);
        ws.freeze();
        let _ = ws.take("x", 8192);
    }

    #[test]
    fn give_adopts_unknown_buffers() {
        let mut ws = Workspace::new();
        ws.give("adopted", vec![1.0; 4]);
        assert_eq!(ws.alloc_events(), 1);
        let b = ws.take("adopted", 4);
        assert_eq!(b, vec![1.0; 4]);
        ws.give("adopted", b);
        assert_eq!(ws.alloc_events(), 1);
    }

    #[test]
    fn idx_slots_reuse_capacity() {
        let mut ws = Workspace::new();
        let mut r = ws.take_idx("rows", 64);
        r.extend(0..50);
        ws.give_idx("rows", r);
        let events = ws.alloc_events();
        ws.freeze();
        let r = ws.take_idx("rows", 64);
        assert!(r.is_empty());
        ws.give_idx("rows", r);
        assert_eq!(ws.alloc_events(), events);
    }

    #[test]
    fn high_water_tracks_peak_capacity() {
        let mut ws = Workspace::new();
        assert_eq!(ws.high_water_bytes(), 0);
        let b = ws.take("x", 100);
        // Live buffers count even while taken out.
        assert!(ws.high_water_bytes() >= 100 * 4);
        ws.give("x", b);
        let b = ws.take("x", 10); // shrinking never lowers the mark
        ws.give("x", b);
        assert!(ws.high_water_bytes() >= 100 * 4);
        let r = ws.take_idx("rows", 8);
        ws.give_idx("rows", r);
        assert!(ws.high_water_bytes() >= 100 * 4 + 8 * std::mem::size_of::<usize>());
    }

    #[test]
    fn i8_and_i32_slots_reuse_capacity() {
        let mut ws = Workspace::new();
        let mut q = ws.take_i8("q", 64);
        q[0] = -5;
        ws.give_i8("q", q);
        let a = ws.take_i32("acc", 32);
        ws.give_i32("acc", a);
        let events = ws.alloc_events();
        ws.freeze();
        let q = ws.take_i8("q", 64);
        assert_eq!(q[0], -5, "contents preserved up to common length");
        ws.give_i8("q", q);
        let a = ws.take_i32("acc", 32);
        ws.give_i32("acc", a);
        assert_eq!(ws.alloc_events(), events);
        ws.thaw();
        assert!(ws.high_water_bytes() >= 64 + 32 * 4);
    }

    #[test]
    fn clone_is_fresh() {
        let mut ws = Workspace::new();
        let b = ws.take("x", 1000);
        ws.give("x", b);
        let clone = ws.clone();
        assert_eq!(clone.alloc_events(), 0);
    }
}
