//! Seed matmul kernels, preserved as the reference implementations.
//!
//! These are the exact loop nests the repo shipped with before the
//! blocked GEMM landed ([`super::gemm`]): single-threaded, no packing, no
//! tiling, and — in the non-transposed variants — an unconditional
//! `av == 0.0` skip in the inner loop. They exist for two reasons:
//!
//! 1. **Differential testing.** The blocked kernel is property-tested
//!    against these across randomized shapes; any divergence beyond
//!    accumulation-order rounding is a kernel bug.
//! 2. **Benchmark baseline.** `BENCH_gemm.json` reports the blocked
//!    kernel's speedup over these loops, so the baseline must stay
//!    byte-for-byte what the seed ran.
//!
//! Do not "optimise" this module; route performance work through
//! [`super::gemm`] instead.

use crate::{ShapeError, Tensor};

use super::matmul::dims_for;

/// Seed `C = A · B`: `i-k-j` loop order with a zero-skip on `A` elements.
///
/// The zero-skip made every dense matmul pay a branch per `A` element to
/// speed up the rare masked-weight case; the production path now splits
/// that into [`super::matmul`] (dense, branch-free) and
/// [`super::matmul_sparse_lhs`] (explicit row compaction).
///
/// # Errors
///
/// Returns an error unless `A` is `[m, k]` and `B` is `[k, n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, k, n) = dims_for("reference::matmul", a, b, false, false)?;
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut od[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    Ok(out)
}

/// Seed `C = Aᵀ · B`: `k`-outer loop order.
///
/// # Errors
///
/// Returns an error unless `A` is `[k, m]` and `B` is `[k, n]`.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, k, n) = dims_for("reference::matmul_at", a, b, true, false)?;
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    // A is [k, m]: column i of A is stride-m. Iterate over k outermost so both
    // A and B rows stream sequentially.
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    Ok(out)
}

/// Seed `C = A · Bᵀ`: per-element dot products.
///
/// # Errors
///
/// Returns an error unless `A` is `[m, k]` and `B` is `[n, k]`.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, k, n) = dims_for("reference::matmul_bt", a, b, false, true)?;
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            od[i * n + j] = acc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::rng::Rng;

    #[test]
    fn reference_kernels_agree_with_each_other() {
        let mut rng = Rng::new(17);
        let a = Tensor::randn(&[5, 7], Init::Rand, &mut rng);
        let b = Tensor::randn(&[7, 4], Init::Rand, &mut rng);
        let direct = matmul(&a, &b).unwrap();
        let via_at = matmul_at(&a.transpose2().unwrap(), &b).unwrap();
        let via_bt = matmul_bt(&a, &b.transpose2().unwrap()).unwrap();
        assert!(direct.allclose(&via_at, 1e-5));
        assert!(direct.allclose(&via_bt, 1e-5));
    }

    #[test]
    fn zero_rows_short_circuit_correctly() {
        // The av == 0.0 skip must not change results.
        let a = Tensor::from_vec(vec![0.0, 1.0, 0.0, 0.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).unwrap();
        assert_eq!(matmul(&a, &b).unwrap().data(), &[5.0, 6.0, 0.0, 0.0]);
    }
}
