//! Int8 companion of the blocked [`gemm`](super::gemm) kernel.
//!
//! The quantized deployment path runs convolutions as `i8×i8→i32` matrix
//! products: weights and activations are symmetric int8, accumulation is
//! exact in i32, and requantization back to i8 happens on store (in
//! `alf-core::qmodel`, where the scales live). This module provides the
//! blocked product and the i8 im2col that feeds it.
//!
//! The blocking mirrors the f32 driver — [`NC`]-wide column strips,
//! [`KC`]-deep slabs packed once into [`NR`]-column panels, [`MR`]-row `A`
//! panels streamed against them — and the register tile lives in
//! `alf-gemm-kernels` for the same codegen-isolation reason as the f32
//! tile (see that crate's docs). The packing routines widen the i8
//! operands into f32 panel slots: the micro-kernel then accumulates in
//! f32, which is *exact* for these integer values as long as partial sums
//! stay below 2²⁴ — guaranteed here because `KC · 127² < 2²⁴` (see the
//! kernel's docs for the full argument). The result is therefore still
//! bit-identical to a naive i32 triple loop by construction; there is no
//! evaluation-order subtlety to defend, only cache behaviour.
//!
//! The driver is single-threaded on purpose: the conv shapes the int8
//! path runs (`m = c_out ≤ 64` for Plain-20) never span more than one
//! [`MC`](super::gemm::MC) row block, which is exactly the unit the f32
//! driver partitions across workers — it, too, runs these shapes on one
//! thread. Serving-level parallelism comes from replica workers instead.

use super::gemm::{KC, MC, NC};
use super::workspace::Workspace;
use super::Conv2dSpec;
use alf_gemm_kernels::{microkernel_i8_into, MR, NR};

/// `C = A · B` for int8 operands with exact i32 accumulation.
///
/// `A` is `[m, k]` row-major i8, `B` is `[k, n]` row-major i8, `C` is
/// `[m, n]` row-major i32 and is fully overwritten. Packing panels come
/// from `ws` (`qgemm_apack` / `qgemm_bpack` f32 slots — the i8 values are
/// widened at pack time), so steady-state calls are allocation-free.
///
/// # Panics
///
/// Panics when a buffer length disagrees with the stated dimensions.
pub fn gemm_i8_into(
    c: &mut [i32],
    a: &[i8],
    b: &[i8],
    m: usize,
    k: usize,
    n: usize,
    ws: &mut Workspace,
) {
    assert_eq!(c.len(), m * n, "gemm_i8: C buffer is not [{m}x{n}]");
    assert_eq!(a.len(), m * k, "gemm_i8: A buffer is not [{m}x{k}]");
    assert_eq!(b.len(), k * n, "gemm_i8: B buffer is not [{k}x{n}]");
    c.fill(0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let kmax = k.min(KC);
    let ncmax = n.min(NC).div_ceil(NR) * NR;
    let mcmax = m.min(MC).div_ceil(MR) * MR;
    let mut bpack = ws.take("qgemm_bpack", kmax * ncmax);
    let mut apack = ws.take("qgemm_apack", mcmax * kmax);

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b_i8(&mut bpack, b, n, pc, kc, jc, nc);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                pack_a_i8(&mut apack, a, k, ic, mc, pc, kc);
                let j_panels = nc.div_ceil(NR);
                for ip in 0..mc.div_ceil(MR) {
                    let apanel = &apack[ip * kc * MR..(ip + 1) * kc * MR];
                    let rbase = ic + ip * MR;
                    let rlim = MR.min(m - rbase).min(mc - ip * MR);
                    for jp in 0..j_panels {
                        let bpanel = &bpack[jp * kc * NR..(jp + 1) * kc * NR];
                        let cbase = jc + jp * NR;
                        let clim = NR.min(nc - jp * NR);
                        let coff = rbase * n + cbase;
                        let cend = coff + (rlim - 1) * n + clim;
                        microkernel_i8_into(apanel, bpanel, &mut c[coff..cend], n, rlim, clim);
                    }
                }
                ic += mc;
            }
            pc += kc;
        }
        jc += nc;
    }
    ws.give("qgemm_bpack", bpack);
    ws.give("qgemm_apack", apack);
}

/// Packs `A[i0..i0+mc, p0..p0+kc]` into `MR`-row f32 panels, widening
/// each i8 value and zero-padding rows past `mc` — the i8 twin of the f32
/// `pack_a` (no transpose or gather: quantized weights are always stored
/// `[c_out, ci·k²]` row-major).
fn pack_a_i8(apack: &mut [f32], a: &[i8], k: usize, i0: usize, mc: usize, p0: usize, kc: usize) {
    for ip in 0..mc.div_ceil(MR) {
        let panel = &mut apack[ip * kc * MR..(ip + 1) * kc * MR];
        for (p, out) in panel.chunks_exact_mut(MR).enumerate().take(kc) {
            for (r, slot) in out.iter_mut().enumerate() {
                let row = i0 + ip * MR + r;
                *slot = if row < i0 + mc {
                    f32::from(a[row * k + p0 + p])
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs `B[p0..p0+kc, j0..j0+nc]` into `NR`-column f32 panels, widening
/// each i8 value and zero-padding columns past `nc`.
fn pack_b_i8(bpack: &mut [f32], b: &[i8], n: usize, p0: usize, kc: usize, j0: usize, nc: usize) {
    for jp in 0..nc.div_ceil(NR) {
        let panel = &mut bpack[jp * kc * NR..(jp + 1) * kc * NR];
        for (p, out) in panel.chunks_exact_mut(NR).enumerate().take(kc) {
            for (r, slot) in out.iter_mut().enumerate() {
                let col = j0 + jp * NR + r;
                *slot = if col < j0 + nc {
                    f32::from(b[(p0 + p) * n + col])
                } else {
                    0.0
                };
            }
        }
    }
}

/// [`im2col_into`](super::im2col_into) for int8 activations: unfolds an
/// `NCHW` i8 buffer into the `[ci·k·k, n·h_out·w_out]` column matrix
/// [`gemm_i8_into`] consumes. Out-of-bounds taps read as exact zero — in
/// symmetric quantization the zero point *is* 0, so padding needs no
/// offset handling.
///
/// # Panics
///
/// Panics when a buffer length disagrees with the stated geometry.
#[allow(clippy::too_many_arguments)] // mirrors the f32 im2col geometry args
pub fn im2col_i8_into(
    dst: &mut [i8],
    src: &[i8],
    n: usize,
    ci: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
) {
    let (ho, wo) = spec.output_hw(h, w);
    let k = spec.kernel;
    let rows = ci * k * k;
    let cols = n * ho * wo;
    assert_eq!(src.len(), n * ci * h * w, "im2col_i8: bad input length");
    assert_eq!(dst.len(), rows * cols, "im2col_i8: bad buffer length");
    dst.fill(0);
    for b in 0..n {
        for c in 0..ci {
            let plane = &src[(b * ci + c) * h * w..(b * ci + c + 1) * h * w];
            for ky in 0..k {
                for kx in 0..k {
                    let row = (c * k + ky) * k + kx;
                    for oy in 0..ho {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        for ox in 0..wo {
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let col = (b * ho + oy) * wo + ox;
                            dst[row * cols + col] = plane[iy * w + ix as usize];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_i8(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
        let mut c = vec![0i32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p] as i32;
                for j in 0..n {
                    c[i * n + j] += av * b[p * n + j] as i32;
                }
            }
        }
        c
    }

    fn operands(m: usize, k: usize, n: usize) -> (Vec<i8>, Vec<i8>) {
        // Walks the full i8 range including ±127 and -128.
        let a: Vec<i8> = (0..m * k)
            .map(|i| ((i * 61 + 7) % 256) as u8 as i8)
            .collect();
        let b: Vec<i8> = (0..k * n)
            .map(|i| ((i * 149 + 3) % 256) as u8 as i8)
            .collect();
        (a, b)
    }

    #[test]
    fn blocked_i8_gemm_is_bitwise_equal_to_scalar_reference() {
        // Integer math must be exact, not approximate: every shape —
        // including ones that straddle MC/KC/NC block boundaries and
        // ragged MR/NR edges — must match the triple loop bit for bit.
        let mut ws = Workspace::new();
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (8, 8, 8),
            (7, 9, 11),
            (17, 33, 5),
            (64, 27, 1024 + 9),
            (MC + 5, KC + 3, 40),
        ] {
            let (a, b) = operands(m, k, n);
            let mut c = vec![-7i32; m * n];
            gemm_i8_into(&mut c, &a, &b, m, k, n, &mut ws);
            assert_eq!(c, reference_i8(&a, &b, m, k, n), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn degenerate_dims_zero_the_output() {
        let mut ws = Workspace::new();
        let mut c = vec![9i32; 6];
        gemm_i8_into(&mut c, &[], &[], 2, 0, 3, &mut ws);
        assert_eq!(c, vec![0; 6]);
        gemm_i8_into(&mut [], &[], &[1, 2], 0, 1, 2, &mut ws);
    }

    #[test]
    fn workspace_reuse_is_allocation_free_after_warmup() {
        let (m, k, n) = (24, 30, 50);
        let (a, b) = operands(m, k, n);
        let mut ws = Workspace::new();
        let mut c = vec![0i32; m * n];
        gemm_i8_into(&mut c, &a, &b, m, k, n, &mut ws);
        let warm = ws.alloc_events();
        ws.freeze();
        for _ in 0..5 {
            gemm_i8_into(&mut c, &a, &b, m, k, n, &mut ws);
        }
        assert_eq!(ws.alloc_events(), warm);
        ws.thaw();
    }

    #[test]
    fn i8_im2col_matches_f32_im2col_on_common_values() {
        // Quantize-then-unfold must equal unfold-then-quantize; checking
        // against the f32 im2col on integer-valued data pins the layout.
        use crate::Tensor;
        let spec = Conv2dSpec::new(3, 2, 1);
        let (n, ci, h, w) = (2, 3, 7, 7);
        let vals: Vec<i8> = (0..n * ci * h * w)
            .map(|i| (((i * 23) % 200) as i32 - 100) as i8)
            .collect();
        let xf =
            Tensor::from_vec(vals.iter().map(|&v| v as f32).collect(), &[n, ci, h, w]).unwrap();
        let colsf = super::super::im2col(&xf, spec).unwrap();
        let mut cols8 = vec![0i8; colsf.data().len()];
        im2col_i8_into(&mut cols8, &vals, n, ci, h, w, spec);
        for (q, &f) in cols8.iter().zip(colsf.data()) {
            assert_eq!(*q as f32, f);
        }
    }
}
