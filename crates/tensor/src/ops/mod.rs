//! Numerical kernels: matrix multiplication and im2col-based convolution.
//!
//! The convolution entry points operate on `NCHW` activations and
//! `[c_out, c_in, k, k]` weights and are shared by the forward *and*
//! backward passes of [`alf-nn`](https://example.invalid/alf): the backward
//! pass is expressed as matmuls against the saved column matrix plus a
//! [`col2im`] scatter.

mod channels;
mod conv;
mod matmul;

pub use channels::{concat_channels, split_channels};
pub use conv::{col2im, conv2d, conv_output_hw, im2col, Conv2dSpec};
pub use matmul::{matmul, matmul_at, matmul_bt};
