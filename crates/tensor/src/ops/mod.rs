//! Numerical kernels: matrix multiplication and im2col-based convolution.
//!
//! The convolution entry points operate on `NCHW` activations and
//! `[c_out, c_in, k, k]` weights and are shared by the forward *and*
//! backward passes of [`alf-nn`](https://example.invalid/alf): the backward
//! pass is expressed as matmuls against the saved column matrix plus a
//! [`col2im`] scatter.
//!
//! Performance architecture (see `DESIGN.md` for the full picture):
//!
//! * [`gemm`] holds the cache-blocked, register-tiled, multithreaded
//!   kernel every matrix product routes through; [`gemm_into`] /
//!   [`gemm_sparse_lhs_into`] / [`gemm_active_rows_into`] /
//!   [`gemm_active_k_into`] are the slice-level entry points hot loops
//!   call with their own [`Workspace`]. [`ActiveRows`] is the shared
//!   descriptor of which rows of a masked operand survive pruning.
//! * [`matmul`] / [`matmul_at`] / [`matmul_bt`] / [`matmul_sparse_lhs`] /
//!   [`matmul_active_rows`] are the tensor-level conveniences, drawing
//!   scratch from a thread-local workspace.
//! * [`qgemm`] is the int8 sibling: [`gemm_i8_into`] runs `i8×i8→i32`
//!   products with the same panel-packing structure for the quantized
//!   deployment path, and [`im2col_i8_into`] feeds it.
//! * [`reference`] preserves the seed's naive kernels for differential
//!   tests and as the benchmark baseline.
//! * [`im2col_into`] / [`col2im_into`] write into caller-owned buffers so
//!   layer code can keep the whole conv step allocation-free.

mod channels;
mod conv;
pub mod gemm;
mod matmul;
pub mod qgemm;
pub mod reference;
mod workspace;

pub use channels::{concat_channels, split_channels};
pub use conv::{col2im, col2im_into, conv2d, conv_output_hw, im2col, im2col_into, Conv2dSpec};
pub use gemm::{
    auto_threads, gemm_active_k_into, gemm_active_rows_into, gemm_into, gemm_sparse_lhs_into,
    host_parallelism, ActiveRows,
};
pub use matmul::{
    matmul, matmul_active_rows, matmul_at, matmul_at_ws, matmul_bt, matmul_bt_ws,
    matmul_sparse_lhs, matmul_ws,
};
pub use qgemm::{gemm_i8_into, im2col_i8_into};
pub use workspace::{with_thread_workspace, Workspace};
