use crate::{ShapeError, Tensor};

/// Dense matrix product `C = A · B` for rank-2 tensors.
///
/// Uses an `i-k-j` loop order so the inner loop streams both `B` and `C`
/// rows sequentially — roughly an order of magnitude faster than the naive
/// `i-j-k` order for the matrix sizes CNN training produces.
///
/// # Errors
///
/// Returns an error unless `A` is `[m, k]` and `B` is `[k, n]`.
///
/// # Example
///
/// ```
/// use alf_tensor::{ops::matmul, Tensor};
/// # fn main() -> Result<(), alf_tensor::ShapeError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// assert_eq!(matmul(&a, &b)?.data(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, k, n) = dims_for("matmul", a, b, false, false)?;
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut od[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    Ok(out)
}

/// `C = Aᵀ · B` without materialising the transpose.
///
/// # Errors
///
/// Returns an error unless `A` is `[k, m]` and `B` is `[k, n]`.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, k, n) = dims_for("matmul_at", a, b, true, false)?;
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    // A is [k, m]: column i of A is stride-m. Iterate over k outermost so both
    // A and B rows stream sequentially.
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    Ok(out)
}

/// `C = A · Bᵀ` without materialising the transpose.
///
/// # Errors
///
/// Returns an error unless `A` is `[m, k]` and `B` is `[n, k]`.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, k, n) = dims_for("matmul_bt", a, b, false, true)?;
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            od[i * n + j] = acc;
        }
    }
    Ok(out)
}

fn dims_for(
    op: &str,
    a: &Tensor,
    b: &Tensor,
    ta: bool,
    tb: bool,
) -> Result<(usize, usize, usize), ShapeError> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(ShapeError::new(
            op,
            format!("expected rank-2 operands, got {} and {}", a.shape(), b.shape()),
        ));
    }
    let (m, ka) = if ta {
        (a.dims()[1], a.dims()[0])
    } else {
        (a.dims()[0], a.dims()[1])
    };
    let (kb, n) = if tb {
        (b.dims()[1], b.dims()[0])
    } else {
        (b.dims()[0], b.dims()[1])
    };
    if ka != kb {
        return Err(ShapeError::new(
            op,
            format!("inner dims differ: {} vs {}", a.shape(), b.shape()),
        ));
    }
    Ok((m, ka, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::rng::Rng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *out.at_mut(&[i, j]) = acc;
            }
        }
        out
    }

    #[test]
    fn matches_naive_on_random_matrices() {
        let mut rng = Rng::new(42);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 7, 3), (8, 8, 8), (13, 1, 9)] {
            let a = Tensor::randn(&[m, k], Init::Rand, &mut rng);
            let b = Tensor::randn(&[k, n], Init::Rand, &mut rng);
            let fast = matmul(&a, &b).unwrap();
            assert!(fast.allclose(&naive(&a, &b), 1e-5), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn at_variant_equals_explicit_transpose() {
        let mut rng = Rng::new(1);
        let a = Tensor::randn(&[6, 4], Init::Rand, &mut rng);
        let b = Tensor::randn(&[6, 5], Init::Rand, &mut rng);
        let via_t = matmul(&a.transpose2().unwrap(), &b).unwrap();
        assert!(matmul_at(&a, &b).unwrap().allclose(&via_t, 1e-5));
    }

    #[test]
    fn bt_variant_equals_explicit_transpose() {
        let mut rng = Rng::new(2);
        let a = Tensor::randn(&[3, 7], Init::Rand, &mut rng);
        let b = Tensor::randn(&[5, 7], Init::Rand, &mut rng);
        let via_t = matmul(&a, &b.transpose2().unwrap()).unwrap();
        assert!(matmul_bt(&a, &b).unwrap().allclose(&via_t, 1e-5));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::new(3);
        let a = Tensor::randn(&[4, 4], Init::Rand, &mut rng);
        assert!(matmul(&a, &Tensor::eye(4)).unwrap().allclose(&a, 1e-6));
        assert!(matmul(&Tensor::eye(4), &a).unwrap().allclose(&a, 1e-6));
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &Tensor::zeros(&[4, 2])).is_err());
        assert!(matmul(&a, &Tensor::zeros(&[3])).is_err());
        assert!(matmul_at(&a, &Tensor::zeros(&[3, 2])).is_err());
        assert!(matmul_bt(&a, &Tensor::zeros(&[2, 2])).is_err());
    }

    #[test]
    fn zero_rows_short_circuit_correctly() {
        // The av == 0.0 skip must not change results.
        let a = Tensor::from_vec(vec![0.0, 1.0, 0.0, 0.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).unwrap();
        assert_eq!(matmul(&a, &b).unwrap().data(), &[5.0, 6.0, 0.0, 0.0]);
    }
}
