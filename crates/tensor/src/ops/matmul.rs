use crate::{ShapeError, Tensor};

use super::gemm::{
    auto_threads, gemm_active_rows_into, gemm_into, gemm_sparse_lhs_into, ActiveRows,
};
use super::workspace::{with_thread_workspace, Workspace};

/// Dense matrix product `C = A · B` for rank-2 tensors.
///
/// Routed through the cache-blocked, register-tiled kernel in
/// [`super::gemm`] (packing + `8×8` micro-tiles, multithreaded above a
/// flop threshold), with packing scratch drawn from the calling thread's
/// shared [`Workspace`](super::Workspace). The seed's naive loop survives
/// as [`super::reference::matmul`] for differential testing; unlike the
/// seed, this path has **no** per-element zero test — masked weights with
/// structurally zero rows should use [`matmul_sparse_lhs`] instead.
///
/// # Errors
///
/// Returns an error unless `A` is `[m, k]` and `B` is `[k, n]`.
///
/// # Example
///
/// ```
/// use alf_tensor::{ops::matmul, Tensor};
/// # fn main() -> Result<(), alf_tensor::ShapeError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// assert_eq!(matmul(&a, &b)?.data(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, k, n) = dims_for("matmul", a, b, false, false)?;
    let mut out = Tensor::zeros(&[m, n]);
    with_thread_workspace(|ws| {
        gemm_into(
            out.data_mut(),
            a.data(),
            false,
            b.data(),
            false,
            m,
            k,
            n,
            ws,
            auto_threads(m, k, n),
        );
    });
    Ok(out)
}

/// `C = Aᵀ · B` without materialising the transpose.
///
/// The transpose is absorbed by the GEMM packing stage — `A` is read with
/// a transposed stride while being packed into row panels, so the inner
/// kernel is identical to the non-transposed case.
///
/// # Errors
///
/// Returns an error unless `A` is `[k, m]` and `B` is `[k, n]`.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, k, n) = dims_for("matmul_at", a, b, true, false)?;
    let mut out = Tensor::zeros(&[m, n]);
    with_thread_workspace(|ws| {
        gemm_into(
            out.data_mut(),
            a.data(),
            true,
            b.data(),
            false,
            m,
            k,
            n,
            ws,
            auto_threads(m, k, n),
        );
    });
    Ok(out)
}

/// `C = A · Bᵀ` without materialising the transpose.
///
/// As with [`matmul_at`], the transpose costs only a different read
/// stride during `B` packing.
///
/// # Errors
///
/// Returns an error unless `A` is `[m, k]` and `B` is `[n, k]`.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, k, n) = dims_for("matmul_bt", a, b, false, true)?;
    let mut out = Tensor::zeros(&[m, n]);
    with_thread_workspace(|ws| {
        gemm_into(
            out.data_mut(),
            a.data(),
            false,
            b.data(),
            true,
            m,
            k,
            n,
            ws,
            auto_threads(m, k, n),
        );
    });
    Ok(out)
}

/// `C = A · B` where `A` is expected to contain whole rows of zeros — the
/// masked `Wcode` matrix an ALF block feeds its code convolution after
/// pruning has zeroed code channels.
///
/// The seed kernel served this case with an `av == 0.0` branch inside
/// every dense matmul's inner loop, taxing all callers for one caller's
/// sparsity. The split moves that cost here: nonzero rows are compacted,
/// multiplied densely with the blocked kernel, and scattered back. Falls
/// back to dense [`matmul`] behaviour when fewer than 1/8 of rows are
/// zero. Results match [`matmul`] exactly for the rows both compute.
///
/// # Errors
///
/// Returns an error unless `A` is `[m, k]` and `B` is `[k, n]`.
pub fn matmul_sparse_lhs(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, k, n) = dims_for("matmul_sparse_lhs", a, b, false, false)?;
    let mut out = Tensor::zeros(&[m, n]);
    with_thread_workspace(|ws| {
        gemm_sparse_lhs_into(
            out.data_mut(),
            a.data(),
            b.data(),
            m,
            k,
            n,
            ws,
            auto_threads(m, k, n),
        );
    });
    Ok(out)
}

/// `C = A · B` computing only the rows named by an [`ActiveRows`]
/// descriptor; every other row of `C` is exact `0.0`.
///
/// The declared-sparsity sibling of [`matmul_sparse_lhs`]: no scan of `A`
/// happens, and the skipped rows of `A` need not hold zeros — the
/// descriptor, typically derived from an ALF block's clipped mask, is the
/// sole authority on which rows matter. Surviving rows are bitwise
/// identical to [`matmul`]'s.
///
/// # Errors
///
/// Returns an error unless `A` is `[m, k]`, `B` is `[k, n]`, and the
/// descriptor covers exactly `m` rows — a mask/operand length mismatch is
/// a typed error, never a panic.
pub fn matmul_active_rows(a: &Tensor, b: &Tensor, rows: &ActiveRows) -> Result<Tensor, ShapeError> {
    let (m, k, n) = dims_for("matmul_active_rows", a, b, false, false)?;
    if rows.total() != m {
        return Err(ShapeError::new(
            "matmul_active_rows",
            format!(
                "active-row descriptor covers {} rows but A has {m}",
                rows.total()
            ),
        ));
    }
    let mut out = Tensor::zeros(&[m, n]);
    with_thread_workspace(|ws| {
        gemm_active_rows_into(
            out.data_mut(),
            a.data(),
            b.data(),
            false,
            m,
            k,
            n,
            rows,
            ws,
            auto_threads(rows.len(), k, n),
        );
    });
    Ok(out)
}

/// [`matmul`] drawing packing scratch from a caller-supplied arena
/// instead of the calling thread's workspace.
///
/// Callers that run many products per step (the ALF autoencoder player)
/// route them all through one arena so the whole step reuses a single set
/// of packing buffers — and so a frozen arena can *prove* the steady state
/// allocates nothing.
///
/// # Errors
///
/// Returns an error unless `A` is `[m, k]` and `B` is `[k, n]`.
pub fn matmul_ws(a: &Tensor, b: &Tensor, ws: &mut Workspace) -> Result<Tensor, ShapeError> {
    let (m, k, n) = dims_for("matmul", a, b, false, false)?;
    let mut out = Tensor::zeros(&[m, n]);
    gemm_into(
        out.data_mut(),
        a.data(),
        false,
        b.data(),
        false,
        m,
        k,
        n,
        ws,
        auto_threads(m, k, n),
    );
    Ok(out)
}

/// [`matmul_at`] drawing packing scratch from a caller-supplied arena.
///
/// # Errors
///
/// Returns an error unless `A` is `[k, m]` and `B` is `[k, n]`.
pub fn matmul_at_ws(a: &Tensor, b: &Tensor, ws: &mut Workspace) -> Result<Tensor, ShapeError> {
    let (m, k, n) = dims_for("matmul_at", a, b, true, false)?;
    let mut out = Tensor::zeros(&[m, n]);
    gemm_into(
        out.data_mut(),
        a.data(),
        true,
        b.data(),
        false,
        m,
        k,
        n,
        ws,
        auto_threads(m, k, n),
    );
    Ok(out)
}

/// [`matmul_bt`] drawing packing scratch from a caller-supplied arena.
///
/// # Errors
///
/// Returns an error unless `A` is `[m, k]` and `B` is `[n, k]`.
pub fn matmul_bt_ws(a: &Tensor, b: &Tensor, ws: &mut Workspace) -> Result<Tensor, ShapeError> {
    let (m, k, n) = dims_for("matmul_bt", a, b, false, true)?;
    let mut out = Tensor::zeros(&[m, n]);
    gemm_into(
        out.data_mut(),
        a.data(),
        false,
        b.data(),
        true,
        m,
        k,
        n,
        ws,
        auto_threads(m, k, n),
    );
    Ok(out)
}

pub(crate) fn dims_for(
    op: &str,
    a: &Tensor,
    b: &Tensor,
    ta: bool,
    tb: bool,
) -> Result<(usize, usize, usize), ShapeError> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(ShapeError::new(
            op,
            format!(
                "expected rank-2 operands, got {} and {}",
                a.shape(),
                b.shape()
            ),
        ));
    }
    let (m, ka) = if ta {
        (a.dims()[1], a.dims()[0])
    } else {
        (a.dims()[0], a.dims()[1])
    };
    let (kb, n) = if tb {
        (b.dims()[1], b.dims()[0])
    } else {
        (b.dims()[0], b.dims()[1])
    };
    if ka != kb {
        return Err(ShapeError::new(
            op,
            format!("inner dims differ: {} vs {}", a.shape(), b.shape()),
        ));
    }
    Ok((m, ka, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::ops::reference;
    use crate::rng::Rng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *out.at_mut(&[i, j]) = acc;
            }
        }
        out
    }

    #[test]
    fn matches_naive_on_random_matrices() {
        let mut rng = Rng::new(42);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 7, 3), (8, 8, 8), (13, 1, 9)] {
            let a = Tensor::randn(&[m, k], Init::Rand, &mut rng);
            let b = Tensor::randn(&[k, n], Init::Rand, &mut rng);
            let fast = matmul(&a, &b).unwrap();
            assert!(fast.allclose(&naive(&a, &b), 1e-5), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn matches_seed_reference_kernels() {
        let mut rng = Rng::new(44);
        let a = Tensor::randn(&[19, 23], Init::Rand, &mut rng);
        let b = Tensor::randn(&[23, 17], Init::Rand, &mut rng);
        assert!(matmul(&a, &b)
            .unwrap()
            .allclose(&reference::matmul(&a, &b).unwrap(), 1e-4));
        let at = Tensor::randn(&[23, 19], Init::Rand, &mut rng);
        assert!(matmul_at(&at, &b)
            .unwrap()
            .allclose(&reference::matmul_at(&at, &b).unwrap(), 1e-4));
        let bt = Tensor::randn(&[17, 23], Init::Rand, &mut rng);
        assert!(matmul_bt(&a, &bt)
            .unwrap()
            .allclose(&reference::matmul_bt(&a, &bt).unwrap(), 1e-4));
    }

    #[test]
    fn at_variant_equals_explicit_transpose() {
        let mut rng = Rng::new(1);
        let a = Tensor::randn(&[6, 4], Init::Rand, &mut rng);
        let b = Tensor::randn(&[6, 5], Init::Rand, &mut rng);
        let via_t = matmul(&a.transpose2().unwrap(), &b).unwrap();
        assert!(matmul_at(&a, &b).unwrap().allclose(&via_t, 1e-5));
    }

    #[test]
    fn bt_variant_equals_explicit_transpose() {
        let mut rng = Rng::new(2);
        let a = Tensor::randn(&[3, 7], Init::Rand, &mut rng);
        let b = Tensor::randn(&[5, 7], Init::Rand, &mut rng);
        let via_t = matmul(&a, &b.transpose2().unwrap()).unwrap();
        assert!(matmul_bt(&a, &b).unwrap().allclose(&via_t, 1e-5));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::new(3);
        let a = Tensor::randn(&[4, 4], Init::Rand, &mut rng);
        assert!(matmul(&a, &Tensor::eye(4)).unwrap().allclose(&a, 1e-6));
        assert!(matmul(&Tensor::eye(4), &a).unwrap().allclose(&a, 1e-6));
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &Tensor::zeros(&[4, 2])).is_err());
        assert!(matmul(&a, &Tensor::zeros(&[3])).is_err());
        assert!(matmul_at(&a, &Tensor::zeros(&[3, 2])).is_err());
        assert!(matmul_bt(&a, &Tensor::zeros(&[2, 2])).is_err());
        assert!(matmul_sparse_lhs(&a, &Tensor::zeros(&[4, 2])).is_err());
    }

    #[test]
    fn zero_rows_short_circuit_correctly() {
        // Kept from the seed: zero LHS rows must yield zero output rows in
        // both the dense and the sparse entry points.
        let a = Tensor::from_vec(vec![0.0, 1.0, 0.0, 0.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).unwrap();
        assert_eq!(matmul(&a, &b).unwrap().data(), &[5.0, 6.0, 0.0, 0.0]);
        assert_eq!(
            matmul_sparse_lhs(&a, &b).unwrap().data(),
            &[5.0, 6.0, 0.0, 0.0]
        );
    }

    #[test]
    fn active_rows_descriptor_mismatch_is_typed_error() {
        // A descriptor sized for the wrong operand must surface as a
        // ShapeError, not a panic.
        let a = Tensor::zeros(&[4, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let rows = ActiveRows::from_mask(&[1.0, 0.0, 1.0]); // covers 3 rows, A has 4
        let err = matmul_active_rows(&a, &b, &rows).unwrap_err();
        assert_eq!(err.op(), "matmul_active_rows");
        // Shape errors of the operands themselves are still typed too.
        let rows4 = ActiveRows::from_mask(&[1.0; 4]);
        assert!(matmul_active_rows(&a, &Tensor::zeros(&[5, 2]), &rows4).is_err());
    }

    #[test]
    fn active_rows_edge_occupancies() {
        let mut rng = Rng::new(46);
        let a = Tensor::randn(&[6, 4], Init::Rand, &mut rng);
        let b = Tensor::randn(&[4, 5], Init::Rand, &mut rng);
        let dense = matmul(&a, &b).unwrap();
        // All rows active: bitwise-dense.
        let all = matmul_active_rows(&a, &b, &ActiveRows::full(6)).unwrap();
        assert_eq!(all.data(), dense.data());
        // No rows active: exact zeros.
        let none = matmul_active_rows(&a, &b, &ActiveRows::from_mask(&[0.0; 6])).unwrap();
        assert!(none.data().iter().all(|&v| v == 0.0));
        // Single surviving row.
        let mut mask = [0.0f32; 6];
        mask[2] = 1.0;
        let one = matmul_active_rows(&a, &b, &ActiveRows::from_mask(&mask)).unwrap();
        assert_eq!(&one.data()[2 * 5..3 * 5], &dense.data()[2 * 5..3 * 5]);
        assert!(one.data()[..2 * 5].iter().all(|&v| v == 0.0));
        assert!(one.data()[3 * 5..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sparse_lhs_equals_dense_on_masked_matrix() {
        let mut rng = Rng::new(45);
        let mut a = Tensor::randn(&[24, 10], Init::Rand, &mut rng);
        for i in (0..24).step_by(3) {
            for v in a.data_mut()[i * 10..(i + 1) * 10].iter_mut() {
                *v = 0.0;
            }
        }
        let b = Tensor::randn(&[10, 14], Init::Rand, &mut rng);
        let dense = matmul(&a, &b).unwrap();
        assert!(matmul_sparse_lhs(&a, &b).unwrap().allclose(&dense, 1e-5));
    }
}
