//! Cache-blocked, register-tiled, optionally multithreaded GEMM.
//!
//! This is the single compute kernel behind every matrix product in the
//! workspace ([`super::matmul`], [`super::matmul_at`],
//! [`super::matmul_bt`], the conv forward/backward GEMMs in `alf-nn`, and
//! the autoencoder player in `alf-core`). The structure is the classic
//! three-level blocking of Goto/BLIS:
//!
//! * the `n` dimension is split into [`NC`]-wide column strips,
//! * the `k` dimension into [`KC`]-deep slabs — for each `(NC, KC)` pair
//!   the corresponding block of `B` is packed once into contiguous
//!   [`NR`]-column panels sized to stay L2/L3-resident,
//! * each worker packs its whole row range of the `A` slab into
//!   [`MR`]-row panels; a panel is L1-resident while the inner loop
//!   streams the packed `B` strip past it,
//! * an `MR`×`NR` register tile at the core, provided by the
//!   `alf-gemm-kernels` crate. The kernels are safe Rust shaped for
//!   LLVM's loop vectorizer (the workspace forbids `unsafe`, so explicit
//!   intrinsics are off the table; `.cargo/config.toml` builds with
//!   `-C target-cpu=native` to unlock AVX2/AVX-512 codegen), and they
//!   live in their own crate because compiling them next to their
//!   callers flips the vectorizer into a ~3x-slower shuffle-based form —
//!   see that crate's docs for the full story. The tile's `C` write-back
//!   lives *inside* the kernel function: the accumulator never crosses a
//!   call boundary, which keeps it in registers instead of round-tripping
//!   through a return slot on the stack.
//!
//! Transposed operands are handled in the packing routines — `Aᵀ` and
//! `Bᵀ` cost a different read stride during the O(size) pack, never a
//! materialised transpose or a strided inner loop.
//!
//! Threading partitions the `m` dimension into contiguous multiples of
//! `MC` (one chunk per worker, spawned per `(NC, KC)` block through the
//! crossbeam facade). Workers share the read-only packed `B` and own
//! disjoint `A`-packing buffers and `C` row ranges, so results are
//! **bitwise identical for every thread count**: each `C` element is
//! accumulated by exactly one worker in exactly the order the
//! single-thread loop uses. [`auto_threads`] gates parallelism on a flop
//! threshold so small products (the common case inside per-layer training
//! steps) never pay thread-spawn latency.
//!
//! All scratch (packing panels, sparse-compaction buffers) comes from the
//! caller's [`Workspace`], so steady-state calls are allocation-free.

use super::workspace::Workspace;
use alf_gemm_kernels::{microkernel_into, microkernel_into_clipped};

// The micro-kernels and the tile geometry live in `alf-gemm-kernels`, a
// dedicated crate, because their codegen is context-sensitive: compiled in
// the same LLVM module as their callers they come out ~3x slower (see that
// crate's documentation). The blocking parameters below belong to *this*
// layer — they describe how panels are packed and scheduled around the
// fixed MR×NR register tile.
pub use alf_gemm_kernels::{MR, NR};
/// Row granularity of thread partitioning (each worker owns contiguous
/// multiples of `MC` rows of `C`).
pub const MC: usize = 128;
/// Depth of the packed slabs.
pub const KC: usize = 256;
/// Columns of the packed `B` strip (L2/L3 working set: `KC·NC` floats).
pub const NC: usize = 1024;

/// Ceiling on worker threads regardless of core count.
pub const MAX_THREADS: usize = 8;

/// Products below this many flops (`2·m·k·n`) always run single-threaded;
/// at typical single-core throughput this is well under a millisecond of
/// work, where scoped-thread spawn/join overhead would dominate.
const PAR_FLOP_THRESHOLD: f64 = 8.0e6;

/// Minimum fraction of all-zero LHS rows (in eighths) for
/// [`gemm_sparse_lhs_into`] to take the compaction path; below this the
/// compact-and-scatter copies cost more than they save.
const SPARSE_MIN_ZERO_EIGHTHS: usize = 1;

/// Thread count policy for a `[m,k]·[k,n]` product: 1 below the flop
/// threshold, otherwise capped by the host's parallelism, [`MAX_THREADS`],
/// and the number of `MC` row blocks. The `ALF_GEMM_THREADS` environment
/// variable overrides the policy (clamped to `[1, MAX_THREADS]`) — useful
/// for benchmarking scaling and for forcing determinism checks across
/// counts.
pub fn auto_threads(m: usize, k: usize, n: usize) -> usize {
    if let Some(t) = thread_override() {
        return t.clamp(1, MAX_THREADS);
    }
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    if flops < PAR_FLOP_THRESHOLD {
        return 1;
    }
    let hw = std::thread::available_parallelism().map_or(1, |v| v.get());
    hw.min(MAX_THREADS).min(m.div_ceil(MC)).max(1)
}

fn thread_override() -> Option<usize> {
    static OVERRIDE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    // One shared parser for every ALF_*_THREADS knob (rejects 0 and
    // garbage); cached because this sits on the GEMM dispatch path.
    *OVERRIDE.get_or_init(|| alf_obs::runtime::env_threads("ALF_GEMM_THREADS"))
}

/// `C = op(A) · op(B)` into a caller-provided buffer.
///
/// `op` is transpose when the matching flag is set: `A` is stored `[m,k]`
/// (`ta = false`) or `[k,m]` (`ta = true`); `B` is `[k,n]` or `[n,k]`.
/// `C` is always `[m,n]` row-major and is fully overwritten. Scratch comes
/// from `ws`; `threads` is typically [`auto_threads`] and is clamped to
/// the available row blocks.
///
/// # Panics
///
/// Panics when a buffer length disagrees with the stated dimensions.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS gemm signature
pub fn gemm_into(
    c: &mut [f32],
    a: &[f32],
    ta: bool,
    b: &[f32],
    tb: bool,
    m: usize,
    k: usize,
    n: usize,
    ws: &mut Workspace,
    threads: usize,
) {
    assert_eq!(c.len(), m * n, "gemm: C buffer is not [{m}x{n}]");
    assert_eq!(a.len(), m * k, "gemm: A buffer is not [{m}x{k}] (ta={ta})");
    assert_eq!(b.len(), k * n, "gemm: B buffer is not [{k}x{n}] (tb={tb})");
    c.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    let n_blocks = m.div_ceil(MC);
    let threads = threads.clamp(1, n_blocks).min(MAX_THREADS);
    let kmax = k.min(KC);
    let ncmax = n.min(NC).div_ceil(NR) * NR;
    // Contiguous row chunks, each a whole number of MC blocks, so packed
    // panels never straddle a worker boundary.
    let rows_per_chunk = n_blocks.div_ceil(threads) * MC;
    let mut bpack = ws.take("gemm_bpack", kmax * ncmax);
    // Each worker packs its whole row range once per (jc, pc) block, so
    // its buffer spans rows_per_chunk (already an MR multiple) rows.
    let mut apack_all = ws.take("gemm_apack", threads * rows_per_chunk * kmax);

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(&mut bpack, b, tb, k, n, pc, kc, jc, nc);
            if threads == 1 {
                process_rows(
                    c,
                    0,
                    m,
                    a,
                    ta,
                    m,
                    k,
                    n,
                    jc,
                    nc,
                    pc,
                    kc,
                    &bpack,
                    &mut apack_all,
                );
            } else {
                let bref = &bpack;
                crossbeam::thread::scope(|scope| {
                    let chunks = c
                        .chunks_mut(rows_per_chunk * n)
                        .zip(apack_all.chunks_mut(rows_per_chunk * kmax))
                        .enumerate();
                    let handles: Vec<_> = chunks
                        .map(|(t, (c_chunk, apack))| {
                            scope.spawn(move |_| {
                                let row0 = t * rows_per_chunk;
                                let mrows = c_chunk.len() / n;
                                process_rows(
                                    c_chunk, row0, mrows, a, ta, m, k, n, jc, nc, pc, kc, bref,
                                    apack,
                                );
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().expect("gemm worker panicked");
                    }
                })
                .expect("gemm thread scope failed");
            }
            pc += kc;
        }
        jc += nc;
    }
    ws.give("gemm_bpack", bpack);
    ws.give("gemm_apack", apack_all);
}

/// One worker's share: all `MC` blocks inside its contiguous row range,
/// against the already-packed `B` strip for `(jc, nc, pc, kc)`.
///
/// `c_rows` holds rows `row0 .. row0 + mrows` of `C` at full stride `n`.
#[allow(clippy::too_many_arguments)]
fn process_rows(
    c_rows: &mut [f32],
    row0: usize,
    mrows: usize,
    a: &[f32],
    ta: bool,
    m: usize,
    k: usize,
    n: usize,
    jc: usize,
    nc: usize,
    pc: usize,
    kc: usize,
    bpack: &[f32],
    apack: &mut [f32],
) {
    let j_panels = nc.div_ceil(NR);
    pack_a(apack, a, ta, m, k, row0, mrows, pc, kc);
    let i_panels = mrows.div_ceil(MR);
    for ip in 0..i_panels {
        let apanel = &apack[ip * kc * MR..(ip + 1) * kc * MR];
        let rbase = ip * MR;
        let rlim = MR.min(mrows - rbase);
        for jp in 0..j_panels {
            let bpanel = &bpack[jp * kc * NR..(jp + 1) * kc * NR];
            let cbase = jc + jp * NR;
            let clim = NR.min(nc - jp * NR);
            let coff = rbase * n + cbase;
            if rlim == MR && clim == NR {
                let cend = coff + (MR - 1) * n + NR;
                microkernel_into(apanel, bpanel, &mut c_rows[coff..cend], n);
            } else {
                let cend = coff + (rlim - 1) * n + clim;
                microkernel_into_clipped(apanel, bpanel, &mut c_rows[coff..cend], n, rlim, clim);
            }
        }
    }
}

/// Packs `A[i0..i0+mc, p0..p0+kc]` (transpose-aware) into `MR`-row panels:
/// `apack[(ip·kc + p)·MR + r] = A[i0 + ip·MR + r, p0 + p]`, zero-padding
/// rows past `mc`.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    apack: &mut [f32],
    a: &[f32],
    ta: bool,
    m: usize,
    k: usize,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
) {
    for ip in 0..mc.div_ceil(MR) {
        let panel = &mut apack[ip * kc * MR..(ip + 1) * kc * MR];
        for (p, out) in panel.chunks_exact_mut(MR).enumerate().take(kc) {
            for (r, slot) in out.iter_mut().enumerate() {
                let row = i0 + ip * MR + r;
                *slot = if row < i0 + mc {
                    if ta {
                        a[(p0 + p) * m + row]
                    } else {
                        a[row * k + p0 + p]
                    }
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs `B[p0..p0+kc, j0..j0+nc]` (transpose-aware) into `NR`-column
/// panels: `bpack[(jp·kc + p)·NR + r] = B[p0 + p, j0 + jp·NR + r]`,
/// zero-padding columns past `nc`.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    bpack: &mut [f32],
    b: &[f32],
    tb: bool,
    k: usize,
    n: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
) {
    for jp in 0..nc.div_ceil(NR) {
        let panel = &mut bpack[jp * kc * NR..(jp + 1) * kc * NR];
        for (p, out) in panel.chunks_exact_mut(NR).enumerate().take(kc) {
            for (r, slot) in out.iter_mut().enumerate() {
                let col = j0 + jp * NR + r;
                *slot = if col < j0 + nc {
                    if tb {
                        b[col * k + p0 + p]
                    } else {
                        b[(p0 + p) * n + col]
                    }
                } else {
                    0.0
                };
            }
        }
    }
}

/// `C = A · B` where `A` (`[m,k]`, non-transposed) is expected to contain
/// all-zero rows — the masked `Wcode` weight matrix of an ALF block, whose
/// pruned code channels zero out whole rows.
///
/// Scans `A` once, compacts the nonzero rows, runs the dense blocked
/// kernel on the compact problem, and scatters the result back; zero rows
/// of `C` are written directly. Falls back to the dense kernel when fewer
/// than 1/8 of the rows are zero, where the compact-and-scatter copies
/// outweigh the skipped flops (see the `sparse_vs_dense` micro-benchmark
/// in `crates/bench`).
///
/// # Panics
///
/// Panics when a buffer length disagrees with the stated dimensions.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS gemm signature
pub fn gemm_sparse_lhs_into(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    ws: &mut Workspace,
    threads: usize,
) {
    assert_eq!(c.len(), m * n, "gemm_sparse_lhs: C buffer is not [{m}x{n}]");
    assert_eq!(a.len(), m * k, "gemm_sparse_lhs: A buffer is not [{m}x{k}]");
    assert_eq!(b.len(), k * n, "gemm_sparse_lhs: B buffer is not [{k}x{n}]");
    let mut rows = ws.take_idx("gemm_sparse_rows", m);
    for i in 0..m {
        if a[i * k..(i + 1) * k].iter().any(|&v| v != 0.0) {
            rows.push(i);
        }
    }
    let zero_rows = m - rows.len();
    if zero_rows * 8 < m * SPARSE_MIN_ZERO_EIGHTHS {
        ws.give_idx("gemm_sparse_rows", rows);
        gemm_into(c, a, false, b, false, m, k, n, ws, threads);
        return;
    }
    c.fill(0.0);
    if rows.is_empty() || k == 0 || n == 0 {
        ws.give_idx("gemm_sparse_rows", rows);
        return;
    }
    let ma = rows.len();
    let mut aa = ws.take("gemm_sparse_a", ma * k);
    let mut ca = ws.take("gemm_sparse_c", ma * n);
    for (ri, &i) in rows.iter().enumerate() {
        aa[ri * k..(ri + 1) * k].copy_from_slice(&a[i * k..(i + 1) * k]);
    }
    gemm_into(&mut ca, &aa, false, b, false, ma, k, n, ws, threads);
    for (ri, &i) in rows.iter().enumerate() {
        c[i * n..(i + 1) * n].copy_from_slice(&ca[ri * n..(ri + 1) * n]);
    }
    ws.give("gemm_sparse_a", aa);
    ws.give("gemm_sparse_c", ca);
    ws.give_idx("gemm_sparse_rows", rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::ops::reference;
    use crate::rng::Rng;
    use crate::Tensor;

    fn run(a: &Tensor, ta: bool, b: &Tensor, tb: bool, threads: usize) -> Tensor {
        let (m, k) = if ta {
            (a.dims()[1], a.dims()[0])
        } else {
            (a.dims()[0], a.dims()[1])
        };
        let n = if tb { b.dims()[0] } else { b.dims()[1] };
        let mut ws = Workspace::new();
        let mut out = Tensor::zeros(&[m, n]);
        gemm_into(
            out.data_mut(),
            a.data(),
            ta,
            b.data(),
            tb,
            m,
            k,
            n,
            &mut ws,
            threads,
        );
        out
    }

    #[test]
    fn matches_reference_across_shapes_and_transposes() {
        let mut rng = Rng::new(99);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (8, 8, 8),
            (7, 9, 11),
            (17, 33, 5),
            (64, 64, 64),
            (130, 260, 70),
        ] {
            let a = Tensor::randn(&[m, k], Init::Rand, &mut rng);
            let b = Tensor::randn(&[k, n], Init::Rand, &mut rng);
            let expect = reference::matmul(&a, &b).unwrap();
            assert!(
                run(&a, false, &b, false, 1).allclose(&expect, 1e-4),
                "{m}x{k}x{n}"
            );
            let at = a.transpose2().unwrap();
            assert!(
                run(&at, true, &b, false, 1).allclose(&expect, 1e-4),
                "ta {m}x{k}x{n}"
            );
            let bt = b.transpose2().unwrap();
            assert!(
                run(&a, false, &bt, true, 1).allclose(&expect, 1e-4),
                "tb {m}x{k}x{n}"
            );
            assert!(
                run(&at, true, &bt, true, 1).allclose(&expect, 1e-4),
                "ta+tb {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn degenerate_dims_produce_zeros_or_empty() {
        let mut ws = Workspace::new();
        // k == 0: C must be all zeros.
        let mut c = vec![7.0f32; 6];
        gemm_into(&mut c, &[], false, &[], false, 2, 0, 3, &mut ws, 1);
        assert_eq!(c, vec![0.0; 6]);
        // m == 0 / n == 0: empty C, must not panic.
        gemm_into(&mut [], &[], false, &[1.0, 2.0], false, 0, 1, 2, &mut ws, 4);
        gemm_into(&mut [], &[1.0, 2.0], false, &[], false, 2, 1, 0, &mut ws, 4);
    }

    #[test]
    fn bitwise_deterministic_across_thread_counts() {
        let mut rng = Rng::new(5);
        let a = Tensor::randn(&[300, 70], Init::Rand, &mut rng);
        let b = Tensor::randn(&[70, 90], Init::Rand, &mut rng);
        let t1 = run(&a, false, &b, false, 1);
        for threads in [2, 3, 4, 8] {
            let tn = run(&a, false, &b, false, threads);
            assert_eq!(t1.data(), tn.data(), "threads={threads}");
        }
    }

    #[test]
    fn overwrites_stale_output_contents() {
        let a = Tensor::ones(&[4, 4]);
        let b = Tensor::eye(4);
        let mut ws = Workspace::new();
        let mut c = vec![42.0f32; 16];
        gemm_into(
            &mut c,
            a.data(),
            false,
            b.data(),
            false,
            4,
            4,
            4,
            &mut ws,
            1,
        );
        assert_eq!(c, vec![1.0; 16]);
    }

    #[test]
    fn workspace_reuse_is_allocation_free_after_warmup() {
        let mut rng = Rng::new(3);
        let a = Tensor::randn(&[65, 40], Init::Rand, &mut rng);
        let b = Tensor::randn(&[40, 33], Init::Rand, &mut rng);
        let mut ws = Workspace::new();
        let mut c = vec![0.0f32; 65 * 33];
        gemm_into(
            &mut c,
            a.data(),
            false,
            b.data(),
            false,
            65,
            40,
            33,
            &mut ws,
            1,
        );
        let warm = ws.alloc_events();
        ws.freeze();
        for _ in 0..5 {
            gemm_into(
                &mut c,
                a.data(),
                false,
                b.data(),
                false,
                65,
                40,
                33,
                &mut ws,
                1,
            );
        }
        assert_eq!(ws.alloc_events(), warm);
    }

    #[test]
    fn sparse_lhs_matches_dense_on_masked_rows() {
        let mut rng = Rng::new(21);
        for &(m, k, n, stride) in &[(16, 9, 12, 2), (33, 20, 7, 3), (40, 16, 16, 1)] {
            let mut a = Tensor::randn(&[m, k], Init::Rand, &mut rng);
            // Zero every `stride`-th row (stride 1 → all rows zero).
            for i in (0..m).step_by(stride.max(1)) {
                if stride == 1 || i % stride == 0 {
                    for v in a.data_mut()[i * k..(i + 1) * k].iter_mut() {
                        *v = 0.0;
                    }
                }
            }
            let b = Tensor::randn(&[k, n], Init::Rand, &mut rng);
            let expect = reference::matmul(&a, &b).unwrap();
            let mut ws = Workspace::new();
            let mut c = vec![1.0f32; m * n];
            gemm_sparse_lhs_into(&mut c, a.data(), b.data(), m, k, n, &mut ws, 1);
            let got = Tensor::from_vec(c, &[m, n]).unwrap();
            assert!(got.allclose(&expect, 1e-4), "{m}x{k}x{n} stride={stride}");
        }
    }

    #[test]
    fn sparse_lhs_dense_fallback_matches() {
        // No zero rows at all → dense fallback path.
        let mut rng = Rng::new(22);
        let a = Tensor::randn(&[10, 6], Init::Rand, &mut rng);
        let b = Tensor::randn(&[6, 8], Init::Rand, &mut rng);
        let expect = reference::matmul(&a, &b).unwrap();
        let mut ws = Workspace::new();
        let mut c = vec![0.0f32; 80];
        gemm_sparse_lhs_into(&mut c, a.data(), b.data(), 10, 6, 8, &mut ws, 1);
        assert!(Tensor::from_vec(c, &[10, 8])
            .unwrap()
            .allclose(&expect, 1e-4));
    }

    #[test]
    fn auto_threads_stays_single_for_small_products() {
        assert_eq!(auto_threads(8, 8, 8), 1);
        assert_eq!(auto_threads(64, 64, 64), 1);
    }
}
