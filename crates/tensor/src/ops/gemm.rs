//! Cache-blocked, register-tiled, optionally multithreaded GEMM.
//!
//! This is the single compute kernel behind every matrix product in the
//! workspace ([`super::matmul`], [`super::matmul_at`],
//! [`super::matmul_bt`], the conv forward/backward GEMMs in `alf-nn`, and
//! the autoencoder player in `alf-core`). The structure is the classic
//! three-level blocking of Goto/BLIS:
//!
//! * the `n` dimension is split into [`NC`]-wide column strips,
//! * the `k` dimension into [`KC`]-deep slabs — for each `(NC, KC)` pair
//!   the corresponding block of `B` is packed once into contiguous
//!   [`NR`]-column panels sized to stay L2/L3-resident,
//! * each worker packs its whole row range of the `A` slab into
//!   [`MR`]-row panels; a panel is L1-resident while the inner loop
//!   streams the packed `B` strip past it,
//! * an `MR`×`NR` register tile at the core, provided by the
//!   `alf-gemm-kernels` crate. The kernels are safe Rust shaped for
//!   LLVM's loop vectorizer (the workspace forbids `unsafe`, so explicit
//!   intrinsics are off the table; `.cargo/config.toml` builds with
//!   `-C target-cpu=native` to unlock AVX2/AVX-512 codegen), and they
//!   live in their own crate because compiling them next to their
//!   callers flips the vectorizer into a ~3x-slower shuffle-based form —
//!   see that crate's docs for the full story. The tile's `C` write-back
//!   lives *inside* the kernel function: the accumulator never crosses a
//!   call boundary, which keeps it in registers instead of round-tripping
//!   through a return slot on the stack.
//!
//! Transposed operands are handled in the packing routines — `Aᵀ` and
//! `Bᵀ` cost a different read stride during the O(size) pack, never a
//! materialised transpose or a strided inner loop.
//!
//! **Sparsity lives in the packing stage too.** Every entry point funnels
//! into one blocked driver parameterised by an optional row gather (the
//! `m` dimension) and an optional depth gather (the `k` dimension). A
//! gather map shrinks the *logical* problem the driver blocks over:
//! pruned rows or depth slices are never packed, so the micro-kernel
//! never touches a dead panel — elision happens while panels are built,
//! not as a pre-pass copy of a compacted operand. [`ActiveRows`] is the
//! workspace-wide descriptor of which rows survive a clipped ALF mask;
//! [`gemm_active_rows_into`] and [`gemm_active_k_into`] are the sparse
//! entry points, and [`gemm_sparse_lhs_into`] (scan-based, for operands
//! whose sparsity is discovered rather than declared) rides the same
//! driver.
//!
//! Threading partitions the `m` dimension into contiguous multiples of
//! `MC` (one chunk per worker, spawned per `(NC, KC)` block through the
//! crossbeam facade). Workers share the read-only packed `B` and own
//! disjoint `A`-packing buffers and `C` row ranges, so results are
//! **bitwise identical for every thread count**: each `C` element is
//! accumulated by exactly one worker in exactly the order the
//! single-thread loop uses. [`auto_threads`] gates parallelism on a flop
//! threshold so small products (the common case inside per-layer training
//! steps) never pay thread-spawn latency.
//!
//! All scratch (packing panels, sparse-compaction buffers) comes from the
//! caller's [`Workspace`], so steady-state calls are allocation-free.

use super::workspace::Workspace;
use crate::ShapeError;
use alf_gemm_kernels::{microkernel_into, microkernel_into_clipped};

// The micro-kernels and the tile geometry live in `alf-gemm-kernels`, a
// dedicated crate, because their codegen is context-sensitive: compiled in
// the same LLVM module as their callers they come out ~3x slower (see that
// crate's documentation). The blocking parameters below belong to *this*
// layer — they describe how panels are packed and scheduled around the
// fixed MR×NR register tile.
pub use alf_gemm_kernels::{MR, NR};
/// Row granularity of thread partitioning (each worker owns contiguous
/// multiples of `MC` rows of `C`).
pub const MC: usize = 128;
/// Depth of the packed slabs.
pub const KC: usize = 256;
/// Columns of the packed `B` strip (L2/L3 working set: `KC·NC` floats).
pub const NC: usize = 1024;

/// Ceiling on worker threads regardless of core count.
pub const MAX_THREADS: usize = 8;

/// Products below this many flops (`2·m·k·n`) always run single-threaded;
/// at typical single-core throughput this is well under a millisecond of
/// work, where scoped-thread spawn/join overhead would dominate. On a
/// 1-core host the floor is irrelevant — [`auto_threads`] never engages
/// workers there at any size, because extra threads can only time-slice
/// the one core and pay spawn/join on top (the scaling regression the
/// gemm benchmark records as `engaged_threads`).
const PAR_FLOP_THRESHOLD: f64 = 8.0e6;

/// Minimum fraction of all-zero LHS rows (in eighths) for
/// [`gemm_sparse_lhs_into`] to take the gathered path; below this the
/// row-map indirection and `C` scatter cost more than they save.
const SPARSE_MIN_ZERO_EIGHTHS: usize = 1;

/// The set of surviving (unpruned) rows of a masked operand.
///
/// This is the workspace's single descriptor of structured row sparsity:
/// an ALF block computes it once per step from its clipped autoencoder
/// mask (`Mprune = 1{|m| > t}·m`, so "active" means `|m| > t`), caches it,
/// and hands it to every kernel that can skip pruned work — the code-conv
/// forward GEMM and backward weight-gradient GEMM skip inactive `m` rows
/// ([`gemm_active_rows_into`]), the input-gradient and autoencoder decoder
/// GEMMs skip inactive `k` slices ([`gemm_active_k_into`]).
///
/// Indices are strictly increasing and bounded by `total`, the full row
/// count of the operand the descriptor covers; the constructors enforce
/// this so kernels can gather without bounds anxiety.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveRows {
    idx: Vec<usize>,
    total: usize,
}

impl ActiveRows {
    /// Descriptor with every one of `total` rows active.
    pub fn full(total: usize) -> Self {
        Self {
            idx: (0..total).collect(),
            total,
        }
    }

    /// Rows whose mask entry is nonzero (`±0.0` counts as pruned).
    pub fn from_mask(mask: &[f32]) -> Self {
        Self {
            idx: (0..mask.len()).filter(|&i| mask[i] != 0.0).collect(),
            total: mask.len(),
        }
    }

    /// Rows surviving the ALF clip rule: active iff `|mask[i]| > threshold`
    /// (strict, matching `Mprune = 1{|m| > t}·m`). Works on the *raw* mask,
    /// so callers need not materialise the clipped tensor first.
    pub fn from_clipped_mask(mask: &[f32], threshold: f32) -> Self {
        Self {
            idx: (0..mask.len())
                .filter(|&i| mask[i].abs() > threshold)
                .collect(),
            total: mask.len(),
        }
    }

    /// Descriptor from an explicit index list over `total` rows.
    ///
    /// # Errors
    ///
    /// Returns a typed error when the indices are not strictly increasing
    /// or reach `total` — never panics, so callers can surface descriptor
    /// mismatches as ordinary shape errors.
    pub fn from_indices(idx: Vec<usize>, total: usize) -> Result<Self, ShapeError> {
        for w in idx.windows(2) {
            if w[0] >= w[1] {
                return Err(ShapeError::new(
                    "active_rows",
                    format!("indices not strictly increasing at {} >= {}", w[0], w[1]),
                ));
            }
        }
        if let Some(&last) = idx.last() {
            if last >= total {
                return Err(ShapeError::new(
                    "active_rows",
                    format!("index {last} out of range for {total} rows"),
                ));
            }
        }
        Ok(Self { idx, total })
    }

    /// Number of active rows.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// Whether no row is active.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Full row count of the operand this descriptor covers.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Whether every row is active (kernels take the plain dense path).
    pub fn is_all(&self) -> bool {
        self.idx.len() == self.total
    }

    /// The surviving row indices, strictly increasing.
    pub fn indices(&self) -> &[usize] {
        &self.idx
    }

    /// The surviving rows as maximal `(start, len)` runs of consecutive
    /// indices, in increasing order — the run-length form the `alf-dist`
    /// sparse gradient encoding puts on the wire. Concatenating the runs
    /// reproduces [`ActiveRows::indices`] exactly.
    pub fn runs(&self) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = Vec::new();
        for &i in &self.idx {
            match out.last_mut() {
                Some((start, len)) if *start + *len == i => *len += 1,
                _ => out.push((i, 1)),
            }
        }
        out
    }
}

/// Thread count policy for a `[m,k]·[k,n]` product: 1 on single-core
/// hosts and below the flop threshold, otherwise capped by the host's
/// parallelism, [`MAX_THREADS`], and the number of `MC` row blocks. The
/// `ALF_GEMM_THREADS` environment variable overrides the policy (clamped
/// to `[1, MAX_THREADS]`) — useful for benchmarking scaling and for
/// forcing determinism checks across counts.
pub fn auto_threads(m: usize, k: usize, n: usize) -> usize {
    if let Some(t) = thread_override() {
        return t.clamp(1, MAX_THREADS);
    }
    let hw = host_parallelism();
    if hw <= 1 {
        return 1;
    }
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    if flops < PAR_FLOP_THRESHOLD {
        return 1;
    }
    hw.min(MAX_THREADS).min(m.div_ceil(MC)).max(1)
}

/// Cached `std::thread::available_parallelism` (1 when unknown). Cached
/// because it sits on the GEMM dispatch path; public so benchmarks report
/// the same figure the policy actually used.
pub fn host_parallelism() -> usize {
    static HW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, |v| v.get()))
}

fn thread_override() -> Option<usize> {
    static OVERRIDE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    // One shared parser for every ALF_*_THREADS knob (rejects 0 and
    // garbage); cached because this sits on the GEMM dispatch path.
    *OVERRIDE.get_or_init(|| alf_obs::runtime::env_threads("ALF_GEMM_THREADS"))
}

/// Gather maps threaded through the packing stage.
///
/// `rmap` replaces logical row `i` of the blocked problem with physical
/// row `rmap[i]` of `A`; `kmap` replaces logical depth `p` with physical
/// depth `kmap[p]` of both `A` and `B`. `am`/`ak` are the *physical*
/// dimensions of `A` (`[am, ak]` pre-transpose) and the physical depth of
/// `B`; they provide the read strides, which the logical (possibly
/// shrunken) `m`/`k` no longer do. `None` maps degrade to the identity,
/// and with identity maps the packed panels — and therefore the result —
/// are bitwise identical to the plain dense path.
#[derive(Clone, Copy)]
struct Gather<'g> {
    rmap: Option<&'g [usize]>,
    kmap: Option<&'g [usize]>,
    am: usize,
    ak: usize,
}

impl<'g> Gather<'g> {
    fn dense(m: usize, k: usize) -> Self {
        Self {
            rmap: None,
            kmap: None,
            am: m,
            ak: k,
        }
    }
}

/// `C = op(A) · op(B)` into a caller-provided buffer.
///
/// `op` is transpose when the matching flag is set: `A` is stored `[m,k]`
/// (`ta = false`) or `[k,m]` (`ta = true`); `B` is `[k,n]` or `[n,k]`.
/// `C` is always `[m,n]` row-major and is fully overwritten. Scratch comes
/// from `ws`; `threads` is typically [`auto_threads`] and is clamped to
/// the available row blocks.
///
/// # Panics
///
/// Panics when a buffer length disagrees with the stated dimensions.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS gemm signature
pub fn gemm_into(
    c: &mut [f32],
    a: &[f32],
    ta: bool,
    b: &[f32],
    tb: bool,
    m: usize,
    k: usize,
    n: usize,
    ws: &mut Workspace,
    threads: usize,
) {
    assert_eq!(c.len(), m * n, "gemm: C buffer is not [{m}x{n}]");
    assert_eq!(a.len(), m * k, "gemm: A buffer is not [{m}x{k}] (ta={ta})");
    assert_eq!(b.len(), k * n, "gemm: B buffer is not [{k}x{n}] (tb={tb})");
    gemm_driver(c, a, ta, b, tb, m, k, n, ws, threads, Gather::dense(m, k));
}

/// `C = A · op(B)` computing **only** the rows listed in `rows`; every
/// other row of `C` is written as exact `0.0`, regardless of what `A`
/// holds there.
///
/// This is the declared-sparsity sibling of [`gemm_sparse_lhs_into`]: the
/// caller (an ALF block with a clipped mask) already knows which rows
/// survive, so no scan happens and — crucially for the backward pass —
/// the *skipped rows need not be zero in `A`*. The code-conv forward uses
/// it to skip pruned weight rows; the backward weight-gradient GEMM uses
/// it (with `tb = true`) to never compute gradient rows the mask-gated
/// STE would discard anyway.
///
/// Surviving rows are bitwise identical to what the dense kernel would
/// produce for them: the row gather changes *which* rows are packed, not
/// the k-accumulation order of any element. When every row is active this
/// is exactly the dense kernel.
///
/// # Panics
///
/// Panics when a buffer length disagrees with the stated dimensions or
/// `rows.total() != m`.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS gemm signature
pub fn gemm_active_rows_into(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    tb: bool,
    m: usize,
    k: usize,
    n: usize,
    rows: &ActiveRows,
    ws: &mut Workspace,
    threads: usize,
) {
    assert_eq!(
        rows.total(),
        m,
        "gemm_active_rows: descriptor covers {} rows, A has {m}",
        rows.total()
    );
    assert_eq!(
        c.len(),
        m * n,
        "gemm_active_rows: C buffer is not [{m}x{n}]"
    );
    assert_eq!(
        a.len(),
        m * k,
        "gemm_active_rows: A buffer is not [{m}x{k}]"
    );
    assert_eq!(
        b.len(),
        k * n,
        "gemm_active_rows: B buffer is not [{k}x{n}] (tb={tb})"
    );
    if rows.is_all() {
        gemm_driver(
            c,
            a,
            false,
            b,
            tb,
            m,
            k,
            n,
            ws,
            threads,
            Gather::dense(m, k),
        );
        return;
    }
    c.fill(0.0);
    let live = rows.len();
    if live == 0 || k == 0 || n == 0 {
        return;
    }
    // The driver blocks over the compact [live, n] problem — pack_a reads
    // A through the row map, so pruned rows are never packed and the
    // micro-kernel never sees a dead panel — then the compact result is
    // scattered to the surviving rows of C.
    let mut cc = ws.take("gemm_rows_c", live * n);
    let gather = Gather {
        rmap: Some(rows.indices()),
        kmap: None,
        am: m,
        ak: k,
    };
    gemm_driver(&mut cc, a, false, b, tb, live, k, n, ws, threads, gather);
    for (ri, &i) in rows.indices().iter().enumerate() {
        c[i * n..(i + 1) * n].copy_from_slice(&cc[ri * n..(ri + 1) * n]);
    }
    ws.give("gemm_rows_c", cc);
}

/// `C = op(A) · B` accumulating **only** the depth slices listed in
/// `active` (over the full depth `k`); contributions from every other
/// slice are skipped.
///
/// The caller asserts, by using this entry point, that the skipped slices
/// contribute exactly-zero products — true when the `k` dimension ranges
/// over pruned code channels whose weight rows (or code rows) are exact
/// zeros. Under that contract the result is bitwise identical to the
/// dense product: every accumulator starts at `+0.0` and is only ever
/// added to, so it can never become `-0.0`, and adding a `±0.0` product
/// to it is the identity. The conv input-gradient GEMM (`Wᵀ·G`) and the
/// autoencoder decoder GEMM use this to make backward cost track mask
/// occupancy.
///
/// # Panics
///
/// Panics when a buffer length disagrees with the stated dimensions or
/// `active.total() != k`.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS gemm signature
pub fn gemm_active_k_into(
    c: &mut [f32],
    a: &[f32],
    ta: bool,
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    active: &ActiveRows,
    ws: &mut Workspace,
    threads: usize,
) {
    assert_eq!(
        active.total(),
        k,
        "gemm_active_k: descriptor covers {} slices, depth is {k}",
        active.total()
    );
    assert_eq!(c.len(), m * n, "gemm_active_k: C buffer is not [{m}x{n}]");
    assert_eq!(
        a.len(),
        m * k,
        "gemm_active_k: A buffer is not [{m}x{k}] (ta={ta})"
    );
    assert_eq!(b.len(), k * n, "gemm_active_k: B buffer is not [{k}x{n}]");
    if active.is_all() {
        gemm_driver(
            c,
            a,
            ta,
            b,
            false,
            m,
            k,
            n,
            ws,
            threads,
            Gather::dense(m, k),
        );
        return;
    }
    let ke = active.len();
    if ke == 0 || m == 0 || n == 0 {
        c.fill(0.0);
        return;
    }
    let gather = Gather {
        rmap: None,
        kmap: Some(active.indices()),
        am: m,
        ak: k,
    };
    gemm_driver(c, a, ta, b, false, m, ke, n, ws, threads, gather);
}

/// The blocked driver behind every entry point. `m` and `k` are the
/// *logical* (post-gather) dimensions the blocking runs over; `gather`
/// carries the physical strides and optional index maps (see [`Gather`]).
#[allow(clippy::too_many_arguments)]
fn gemm_driver(
    c: &mut [f32],
    a: &[f32],
    ta: bool,
    b: &[f32],
    tb: bool,
    m: usize,
    k: usize,
    n: usize,
    ws: &mut Workspace,
    threads: usize,
    gather: Gather<'_>,
) {
    debug_assert_eq!(c.len(), m * n);
    debug_assert_eq!(a.len(), gather.am * gather.ak);
    debug_assert_eq!(b.len(), gather.ak * n);
    debug_assert_eq!(gather.rmap.map_or(gather.am, <[usize]>::len), m);
    debug_assert_eq!(gather.kmap.map_or(gather.ak, <[usize]>::len), k);
    c.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    let n_blocks = m.div_ceil(MC);
    let threads = threads.clamp(1, n_blocks).min(MAX_THREADS);
    let kmax = k.min(KC);
    let ncmax = n.min(NC).div_ceil(NR) * NR;
    // Contiguous row chunks, each a whole number of MC blocks, so packed
    // panels never straddle a worker boundary.
    let rows_per_chunk = n_blocks.div_ceil(threads) * MC;
    let mut bpack = ws.take("gemm_bpack", kmax * ncmax);
    // Each worker packs its whole row range once per (jc, pc) block, so
    // its buffer spans rows_per_chunk (already an MR multiple) rows.
    let mut apack_all = ws.take("gemm_apack", threads * rows_per_chunk * kmax);

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(&mut bpack, b, tb, n, pc, kc, jc, nc, gather);
            if threads == 1 {
                process_rows(
                    c,
                    0,
                    m,
                    a,
                    ta,
                    n,
                    jc,
                    nc,
                    pc,
                    kc,
                    &bpack,
                    &mut apack_all,
                    gather,
                );
            } else {
                let bref = &bpack;
                crossbeam::thread::scope(|scope| {
                    let chunks = c
                        .chunks_mut(rows_per_chunk * n)
                        .zip(apack_all.chunks_mut(rows_per_chunk * kmax))
                        .enumerate();
                    let handles: Vec<_> = chunks
                        .map(|(t, (c_chunk, apack))| {
                            scope.spawn(move |_| {
                                let row0 = t * rows_per_chunk;
                                let mrows = c_chunk.len() / n;
                                process_rows(
                                    c_chunk, row0, mrows, a, ta, n, jc, nc, pc, kc, bref, apack,
                                    gather,
                                );
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().expect("gemm worker panicked");
                    }
                })
                .expect("gemm thread scope failed");
            }
            pc += kc;
        }
        jc += nc;
    }
    ws.give("gemm_bpack", bpack);
    ws.give("gemm_apack", apack_all);
}

/// One worker's share: all `MC` blocks inside its contiguous row range,
/// against the already-packed `B` strip for `(jc, nc, pc, kc)`.
///
/// `c_rows` holds rows `row0 .. row0 + mrows` of `C` at full stride `n`.
#[allow(clippy::too_many_arguments)]
fn process_rows(
    c_rows: &mut [f32],
    row0: usize,
    mrows: usize,
    a: &[f32],
    ta: bool,
    n: usize,
    jc: usize,
    nc: usize,
    pc: usize,
    kc: usize,
    bpack: &[f32],
    apack: &mut [f32],
    gather: Gather<'_>,
) {
    let j_panels = nc.div_ceil(NR);
    pack_a(apack, a, ta, row0, mrows, pc, kc, gather);
    let i_panels = mrows.div_ceil(MR);
    for ip in 0..i_panels {
        let apanel = &apack[ip * kc * MR..(ip + 1) * kc * MR];
        let rbase = ip * MR;
        let rlim = MR.min(mrows - rbase);
        for jp in 0..j_panels {
            let bpanel = &bpack[jp * kc * NR..(jp + 1) * kc * NR];
            let cbase = jc + jp * NR;
            let clim = NR.min(nc - jp * NR);
            let coff = rbase * n + cbase;
            if rlim == MR && clim == NR {
                let cend = coff + (MR - 1) * n + NR;
                microkernel_into(apanel, bpanel, &mut c_rows[coff..cend], n);
            } else {
                let cend = coff + (rlim - 1) * n + clim;
                microkernel_into_clipped(apanel, bpanel, &mut c_rows[coff..cend], n, rlim, clim);
            }
        }
    }
}

/// Packs `A[i0..i0+mc, p0..p0+kc]` (transpose- and gather-aware) into
/// `MR`-row panels: `apack[(ip·kc + p)·MR + r] = A[rmap(i0 + ip·MR + r),
/// kmap(p0 + p)]`, zero-padding rows past `mc`. This is where row/depth
/// elision physically happens — a pruned row simply has no panel slot.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    apack: &mut [f32],
    a: &[f32],
    ta: bool,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
    gather: Gather<'_>,
) {
    for ip in 0..mc.div_ceil(MR) {
        let panel = &mut apack[ip * kc * MR..(ip + 1) * kc * MR];
        for (p, out) in panel.chunks_exact_mut(MR).enumerate().take(kc) {
            let pk = gather.kmap.map_or(p0 + p, |km| km[p0 + p]);
            for (r, slot) in out.iter_mut().enumerate() {
                let row = i0 + ip * MR + r;
                *slot = if row < i0 + mc {
                    let pr = gather.rmap.map_or(row, |rm| rm[row]);
                    if ta {
                        a[pk * gather.am + pr]
                    } else {
                        a[pr * gather.ak + pk]
                    }
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs `B[p0..p0+kc, j0..j0+nc]` (transpose- and gather-aware) into
/// `NR`-column panels: `bpack[(jp·kc + p)·NR + r] = B[kmap(p0 + p),
/// j0 + jp·NR + r]`, zero-padding columns past `nc`.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    bpack: &mut [f32],
    b: &[f32],
    tb: bool,
    n: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    gather: Gather<'_>,
) {
    for jp in 0..nc.div_ceil(NR) {
        let panel = &mut bpack[jp * kc * NR..(jp + 1) * kc * NR];
        for (p, out) in panel.chunks_exact_mut(NR).enumerate().take(kc) {
            let pk = gather.kmap.map_or(p0 + p, |km| km[p0 + p]);
            for (r, slot) in out.iter_mut().enumerate() {
                let col = j0 + jp * NR + r;
                *slot = if col < j0 + nc {
                    if tb {
                        b[col * gather.ak + pk]
                    } else {
                        b[pk * n + col]
                    }
                } else {
                    0.0
                };
            }
        }
    }
}

/// `C = A · B` where `A` (`[m,k]`, non-transposed) is expected to contain
/// all-zero rows — the masked `Wcode` weight matrix of an ALF block, whose
/// pruned code channels zero out whole rows.
///
/// Scans `A` once for all-zero rows, then runs the blocked driver with a
/// row gather over the survivors — pruned rows are skipped at panel-pack
/// time, exactly like [`gemm_active_rows_into`] — and scatters the compact
/// result back; zero rows of `C` are written directly. Falls back to the
/// dense kernel when fewer than 1/8 of the rows are zero, where the gather
/// indirection and scatter outweigh the skipped flops (see the
/// `sparse_vs_dense` micro-benchmark in `crates/bench`).
///
/// # Panics
///
/// Panics when a buffer length disagrees with the stated dimensions.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS gemm signature
pub fn gemm_sparse_lhs_into(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    ws: &mut Workspace,
    threads: usize,
) {
    assert_eq!(c.len(), m * n, "gemm_sparse_lhs: C buffer is not [{m}x{n}]");
    assert_eq!(a.len(), m * k, "gemm_sparse_lhs: A buffer is not [{m}x{k}]");
    assert_eq!(b.len(), k * n, "gemm_sparse_lhs: B buffer is not [{k}x{n}]");
    let mut rows = ws.take_idx("gemm_sparse_rows", m);
    for i in 0..m {
        if a[i * k..(i + 1) * k].iter().any(|&v| v != 0.0) {
            rows.push(i);
        }
    }
    let zero_rows = m - rows.len();
    if zero_rows * 8 < m * SPARSE_MIN_ZERO_EIGHTHS {
        ws.give_idx("gemm_sparse_rows", rows);
        gemm_into(c, a, false, b, false, m, k, n, ws, threads);
        return;
    }
    c.fill(0.0);
    if rows.is_empty() || k == 0 || n == 0 {
        ws.give_idx("gemm_sparse_rows", rows);
        return;
    }
    let live = rows.len();
    let mut cc = ws.take("gemm_sparse_c", live * n);
    let gather = Gather {
        rmap: Some(&rows),
        kmap: None,
        am: m,
        ak: k,
    };
    gemm_driver(&mut cc, a, false, b, false, live, k, n, ws, threads, gather);
    for (ri, &i) in rows.iter().enumerate() {
        c[i * n..(i + 1) * n].copy_from_slice(&cc[ri * n..(ri + 1) * n]);
    }
    ws.give("gemm_sparse_c", cc);
    ws.give_idx("gemm_sparse_rows", rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::ops::reference;
    use crate::rng::Rng;
    use crate::Tensor;

    fn run(a: &Tensor, ta: bool, b: &Tensor, tb: bool, threads: usize) -> Tensor {
        let (m, k) = if ta {
            (a.dims()[1], a.dims()[0])
        } else {
            (a.dims()[0], a.dims()[1])
        };
        let n = if tb { b.dims()[0] } else { b.dims()[1] };
        let mut ws = Workspace::new();
        let mut out = Tensor::zeros(&[m, n]);
        gemm_into(
            out.data_mut(),
            a.data(),
            ta,
            b.data(),
            tb,
            m,
            k,
            n,
            &mut ws,
            threads,
        );
        out
    }

    fn run_active_rows(
        a: &Tensor,
        b: &Tensor,
        tb: bool,
        rows: &ActiveRows,
        threads: usize,
    ) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = if tb { b.dims()[0] } else { b.dims()[1] };
        let mut ws = Workspace::new();
        let mut out = Tensor::zeros(&[m, n]);
        gemm_active_rows_into(
            out.data_mut(),
            a.data(),
            b.data(),
            tb,
            m,
            k,
            n,
            rows,
            &mut ws,
            threads,
        );
        out
    }

    #[test]
    fn matches_reference_across_shapes_and_transposes() {
        let mut rng = Rng::new(99);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (8, 8, 8),
            (7, 9, 11),
            (17, 33, 5),
            (64, 64, 64),
            (130, 260, 70),
        ] {
            let a = Tensor::randn(&[m, k], Init::Rand, &mut rng);
            let b = Tensor::randn(&[k, n], Init::Rand, &mut rng);
            let expect = reference::matmul(&a, &b).unwrap();
            assert!(
                run(&a, false, &b, false, 1).allclose(&expect, 1e-4),
                "{m}x{k}x{n}"
            );
            let at = a.transpose2().unwrap();
            assert!(
                run(&at, true, &b, false, 1).allclose(&expect, 1e-4),
                "ta {m}x{k}x{n}"
            );
            let bt = b.transpose2().unwrap();
            assert!(
                run(&a, false, &bt, true, 1).allclose(&expect, 1e-4),
                "tb {m}x{k}x{n}"
            );
            assert!(
                run(&at, true, &bt, true, 1).allclose(&expect, 1e-4),
                "ta+tb {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn degenerate_dims_produce_zeros_or_empty() {
        let mut ws = Workspace::new();
        // k == 0: C must be all zeros.
        let mut c = vec![7.0f32; 6];
        gemm_into(&mut c, &[], false, &[], false, 2, 0, 3, &mut ws, 1);
        assert_eq!(c, vec![0.0; 6]);
        // m == 0 / n == 0: empty C, must not panic.
        gemm_into(&mut [], &[], false, &[1.0, 2.0], false, 0, 1, 2, &mut ws, 4);
        gemm_into(&mut [], &[1.0, 2.0], false, &[], false, 2, 1, 0, &mut ws, 4);
    }

    #[test]
    fn bitwise_deterministic_across_thread_counts() {
        let mut rng = Rng::new(5);
        let a = Tensor::randn(&[300, 70], Init::Rand, &mut rng);
        let b = Tensor::randn(&[70, 90], Init::Rand, &mut rng);
        let t1 = run(&a, false, &b, false, 1);
        for threads in [2, 3, 4, 8] {
            let tn = run(&a, false, &b, false, threads);
            assert_eq!(t1.data(), tn.data(), "threads={threads}");
        }
    }

    #[test]
    fn overwrites_stale_output_contents() {
        let a = Tensor::ones(&[4, 4]);
        let b = Tensor::eye(4);
        let mut ws = Workspace::new();
        let mut c = vec![42.0f32; 16];
        gemm_into(
            &mut c,
            a.data(),
            false,
            b.data(),
            false,
            4,
            4,
            4,
            &mut ws,
            1,
        );
        assert_eq!(c, vec![1.0; 16]);
    }

    #[test]
    fn workspace_reuse_is_allocation_free_after_warmup() {
        let mut rng = Rng::new(3);
        let a = Tensor::randn(&[65, 40], Init::Rand, &mut rng);
        let b = Tensor::randn(&[40, 33], Init::Rand, &mut rng);
        let mut ws = Workspace::new();
        let mut c = vec![0.0f32; 65 * 33];
        gemm_into(
            &mut c,
            a.data(),
            false,
            b.data(),
            false,
            65,
            40,
            33,
            &mut ws,
            1,
        );
        let warm = ws.alloc_events();
        ws.freeze();
        for _ in 0..5 {
            gemm_into(
                &mut c,
                a.data(),
                false,
                b.data(),
                false,
                65,
                40,
                33,
                &mut ws,
                1,
            );
        }
        assert_eq!(ws.alloc_events(), warm);
    }

    #[test]
    fn sparse_lhs_matches_dense_on_masked_rows() {
        let mut rng = Rng::new(21);
        for &(m, k, n, stride) in &[(16, 9, 12, 2), (33, 20, 7, 3), (40, 16, 16, 1)] {
            let mut a = Tensor::randn(&[m, k], Init::Rand, &mut rng);
            // Zero every `stride`-th row (stride 1 → all rows zero).
            for i in (0..m).step_by(stride.max(1)) {
                if stride == 1 || i % stride == 0 {
                    for v in a.data_mut()[i * k..(i + 1) * k].iter_mut() {
                        *v = 0.0;
                    }
                }
            }
            let b = Tensor::randn(&[k, n], Init::Rand, &mut rng);
            let expect = reference::matmul(&a, &b).unwrap();
            let mut ws = Workspace::new();
            let mut c = vec![1.0f32; m * n];
            gemm_sparse_lhs_into(&mut c, a.data(), b.data(), m, k, n, &mut ws, 1);
            let got = Tensor::from_vec(c, &[m, n]).unwrap();
            assert!(got.allclose(&expect, 1e-4), "{m}x{k}x{n} stride={stride}");
        }
    }

    #[test]
    fn sparse_lhs_dense_fallback_matches() {
        // No zero rows at all → dense fallback path.
        let mut rng = Rng::new(22);
        let a = Tensor::randn(&[10, 6], Init::Rand, &mut rng);
        let b = Tensor::randn(&[6, 8], Init::Rand, &mut rng);
        let expect = reference::matmul(&a, &b).unwrap();
        let mut ws = Workspace::new();
        let mut c = vec![0.0f32; 80];
        gemm_sparse_lhs_into(&mut c, a.data(), b.data(), 10, 6, 8, &mut ws, 1);
        assert!(Tensor::from_vec(c, &[10, 8])
            .unwrap()
            .allclose(&expect, 1e-4));
    }

    #[test]
    fn sparse_lhs_all_rows_zero_yields_zero_output() {
        let a = Tensor::zeros(&[12, 7]);
        let mut rng = Rng::new(23);
        let b = Tensor::randn(&[7, 9], Init::Rand, &mut rng);
        let mut ws = Workspace::new();
        let mut c = vec![3.0f32; 12 * 9];
        gemm_sparse_lhs_into(&mut c, a.data(), b.data(), 12, 7, 9, &mut ws, 1);
        assert_eq!(c, vec![0.0; 12 * 9]);
    }

    #[test]
    fn sparse_lhs_single_surviving_row() {
        let mut rng = Rng::new(24);
        let mut a = Tensor::zeros(&[20, 5]);
        for v in a.data_mut()[7 * 5..8 * 5].iter_mut() {
            *v = 1.5;
        }
        let b = Tensor::randn(&[5, 6], Init::Rand, &mut rng);
        let expect = reference::matmul(&a, &b).unwrap();
        let mut ws = Workspace::new();
        let mut c = vec![9.0f32; 20 * 6];
        gemm_sparse_lhs_into(&mut c, a.data(), b.data(), 20, 5, 6, &mut ws, 1);
        assert!(Tensor::from_vec(c, &[20, 6])
            .unwrap()
            .allclose(&expect, 1e-5));
    }

    #[test]
    fn active_rows_surviving_rows_match_dense_bitwise() {
        // The row gather must not perturb a single bit of the rows it
        // keeps, even when the skipped rows of A are dense garbage.
        let mut rng = Rng::new(31);
        for &(m, k, n) in &[(16, 9, 12), (40, 32, 24), (130, 64, 48)] {
            let a = Tensor::randn(&[m, k], Init::Rand, &mut rng);
            let b = Tensor::randn(&[k, n], Init::Rand, &mut rng);
            let dense = run(&a, false, &b, false, 1);
            let idx: Vec<usize> = (0..m).filter(|i| i % 3 != 1).collect();
            let rows = ActiveRows::from_indices(idx.clone(), m).unwrap();
            let got = run_active_rows(&a, &b, false, &rows, 1);
            for i in 0..m {
                if idx.contains(&i) {
                    assert_eq!(
                        &got.data()[i * n..(i + 1) * n],
                        &dense.data()[i * n..(i + 1) * n],
                        "{m}x{k}x{n} row {i}"
                    );
                } else {
                    assert_eq!(
                        &got.data()[i * n..(i + 1) * n],
                        vec![0.0; n].as_slice(),
                        "{m}x{k}x{n} skipped row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn active_rows_transposed_b_matches_dense() {
        let mut rng = Rng::new(32);
        let a = Tensor::randn(&[24, 10], Init::Rand, &mut rng);
        let bt = Tensor::randn(&[14, 10], Init::Rand, &mut rng);
        let dense = run(&a, false, &bt, true, 1);
        let rows = ActiveRows::from_indices(vec![0, 5, 11, 23], 24).unwrap();
        let got = run_active_rows(&a, &bt, true, &rows, 1);
        for &i in rows.indices() {
            assert_eq!(
                &got.data()[i * 14..(i + 1) * 14],
                &dense.data()[i * 14..(i + 1) * 14]
            );
        }
    }

    #[test]
    fn active_rows_all_rows_is_dense_bitwise() {
        let mut rng = Rng::new(33);
        let a = Tensor::randn(&[17, 8], Init::Rand, &mut rng);
        let b = Tensor::randn(&[8, 13], Init::Rand, &mut rng);
        let dense = run(&a, false, &b, false, 1);
        let got = run_active_rows(&a, &b, false, &ActiveRows::full(17), 1);
        assert_eq!(dense.data(), got.data());
    }

    #[test]
    fn active_rows_no_rows_zeroes_output() {
        let mut rng = Rng::new(34);
        let a = Tensor::randn(&[9, 4], Init::Rand, &mut rng);
        let b = Tensor::randn(&[4, 5], Init::Rand, &mut rng);
        let rows = ActiveRows::from_indices(vec![], 9).unwrap();
        let mut ws = Workspace::new();
        let mut c = vec![7.0f32; 45];
        gemm_active_rows_into(
            &mut c,
            a.data(),
            b.data(),
            false,
            9,
            4,
            5,
            &rows,
            &mut ws,
            1,
        );
        assert_eq!(c, vec![0.0; 45]);
    }

    #[test]
    fn active_rows_single_surviving_row() {
        let mut rng = Rng::new(35);
        let a = Tensor::randn(&[21, 6], Init::Rand, &mut rng);
        let b = Tensor::randn(&[6, 7], Init::Rand, &mut rng);
        let dense = run(&a, false, &b, false, 1);
        let rows = ActiveRows::from_indices(vec![13], 21).unwrap();
        let got = run_active_rows(&a, &b, false, &rows, 1);
        assert_eq!(&got.data()[13 * 7..14 * 7], &dense.data()[13 * 7..14 * 7]);
        assert!(got.data()[..13 * 7].iter().all(|&v| v == 0.0));
        assert!(got.data()[14 * 7..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn active_rows_bitwise_deterministic_across_thread_counts() {
        let mut rng = Rng::new(36);
        let a = Tensor::randn(&[300, 70], Init::Rand, &mut rng);
        let b = Tensor::randn(&[70, 90], Init::Rand, &mut rng);
        let idx: Vec<usize> = (0..300).filter(|i| i % 4 != 2).collect();
        let rows = ActiveRows::from_indices(idx, 300).unwrap();
        let t1 = run_active_rows(&a, &b, false, &rows, 1);
        for threads in [2, 4, 8] {
            let tn = run_active_rows(&a, &b, false, &rows, threads);
            assert_eq!(t1.data(), tn.data(), "threads={threads}");
        }
    }

    #[test]
    fn active_rows_workspace_reuse_is_allocation_free() {
        let mut rng = Rng::new(37);
        let a = Tensor::randn(&[48, 20], Init::Rand, &mut rng);
        let b = Tensor::randn(&[20, 16], Init::Rand, &mut rng);
        let rows = ActiveRows::from_indices((0..24).map(|i| i * 2).collect(), 48).unwrap();
        let mut ws = Workspace::new();
        let mut c = vec![0.0f32; 48 * 16];
        gemm_active_rows_into(
            &mut c,
            a.data(),
            b.data(),
            false,
            48,
            20,
            16,
            &rows,
            &mut ws,
            1,
        );
        let warm = ws.alloc_events();
        ws.freeze();
        for _ in 0..5 {
            gemm_active_rows_into(
                &mut c,
                a.data(),
                b.data(),
                false,
                48,
                20,
                16,
                &rows,
                &mut ws,
                1,
            );
        }
        assert_eq!(ws.alloc_events(), warm);
    }

    #[test]
    fn active_k_matches_dense_when_skipped_slices_are_zero() {
        // Zero out the inactive k-slices of A so the dense product's
        // skipped contributions are exact ±0 — then active-k elision must
        // be bitwise invisible.
        let mut rng = Rng::new(38);
        let (m, k, n) = (18, 24, 11);
        let mut a = Tensor::randn(&[m, k], Init::Rand, &mut rng);
        let b = Tensor::randn(&[k, n], Init::Rand, &mut rng);
        let keep: Vec<usize> = (0..k).filter(|p| p % 3 == 0).collect();
        for row in 0..m {
            for p in 0..k {
                if !keep.contains(&p) {
                    a.data_mut()[row * k + p] = 0.0;
                }
            }
        }
        let dense = run(&a, false, &b, false, 1);
        let active = ActiveRows::from_indices(keep, k).unwrap();
        let mut ws = Workspace::new();
        let mut c = vec![0.0f32; m * n];
        gemm_active_k_into(
            &mut c,
            a.data(),
            false,
            b.data(),
            m,
            k,
            n,
            &active,
            &mut ws,
            1,
        );
        assert_eq!(c.as_slice(), dense.data());
    }

    #[test]
    fn active_k_transposed_a_matches_dense() {
        // The Wᵀ·G shape of the conv input gradient: A stored [k, m],
        // inactive k rows of A zeroed.
        let mut rng = Rng::new(39);
        let (m, k, n) = (15, 12, 9);
        let mut at = Tensor::randn(&[k, m], Init::Rand, &mut rng);
        let b = Tensor::randn(&[k, n], Init::Rand, &mut rng);
        let keep = vec![0, 2, 3, 7, 10];
        for p in 0..k {
            if !keep.contains(&p) {
                for v in at.data_mut()[p * m..(p + 1) * m].iter_mut() {
                    *v = 0.0;
                }
            }
        }
        let dense = run(&at, true, &b, false, 1);
        let active = ActiveRows::from_indices(keep, k).unwrap();
        let mut ws = Workspace::new();
        let mut c = vec![0.0f32; m * n];
        gemm_active_k_into(
            &mut c,
            at.data(),
            true,
            b.data(),
            m,
            k,
            n,
            &active,
            &mut ws,
            1,
        );
        assert_eq!(c.as_slice(), dense.data());
    }

    #[test]
    fn active_k_empty_zeroes_output() {
        let a = Tensor::ones(&[3, 4]);
        let b = Tensor::ones(&[4, 2]);
        let active = ActiveRows::from_indices(vec![], 4).unwrap();
        let mut ws = Workspace::new();
        let mut c = vec![5.0f32; 6];
        gemm_active_k_into(
            &mut c,
            a.data(),
            false,
            b.data(),
            3,
            4,
            2,
            &active,
            &mut ws,
            1,
        );
        assert_eq!(c, vec![0.0; 6]);
    }

    #[test]
    fn active_rows_descriptor_rejects_bad_indices() {
        // Typed errors, not panics: out-of-range, unsorted, duplicate.
        assert!(ActiveRows::from_indices(vec![0, 3], 3).is_err());
        assert!(ActiveRows::from_indices(vec![2, 1], 4).is_err());
        assert!(ActiveRows::from_indices(vec![1, 1], 4).is_err());
        assert!(ActiveRows::from_indices(vec![0, 1, 3], 4).is_ok());
    }

    #[test]
    fn active_rows_mask_constructors() {
        let rows = ActiveRows::from_mask(&[0.0, 1.0, -0.0, -2.0]);
        assert_eq!(rows.indices(), &[1, 3]);
        assert_eq!(rows.total(), 4);
        // Clip rule is strict: |m| must exceed the threshold.
        let rows = ActiveRows::from_clipped_mask(&[0.05, -0.2, 0.2, 0.0], 0.2);
        assert_eq!(rows.indices(), &[] as &[usize]);
        let rows = ActiveRows::from_clipped_mask(&[0.05, -0.21, 0.2, 0.0], 0.2);
        assert_eq!(rows.indices(), &[1]);
        assert!(!rows.is_all());
        assert!(ActiveRows::full(3).is_all());
    }

    #[test]
    fn active_rows_runs_are_maximal_and_lossless() {
        let rows = ActiveRows::from_indices(vec![0, 1, 2, 5, 7, 8], 10).unwrap();
        assert_eq!(rows.runs(), vec![(0, 3), (5, 1), (7, 2)]);
        // Concatenating runs reproduces the index list exactly.
        let rebuilt: Vec<usize> = rows
            .runs()
            .into_iter()
            .flat_map(|(start, len)| start..start + len)
            .collect();
        assert_eq!(rebuilt, rows.indices());
        assert_eq!(ActiveRows::full(4).runs(), vec![(0, 4)]);
        assert!(ActiveRows::from_indices(vec![], 4)
            .unwrap()
            .runs()
            .is_empty());
    }

    #[test]
    fn auto_threads_stays_single_for_small_products() {
        assert_eq!(auto_threads(8, 8, 8), 1);
        assert_eq!(auto_threads(64, 64, 64), 1);
    }

    #[test]
    fn auto_threads_never_exceeds_host_parallelism() {
        // On a 1-core host even huge products stay single-threaded (the
        // flop floor no longer engages workers that would only time-slice
        // one core); on bigger hosts the cap still applies.
        let t = auto_threads(4096, 4096, 4096);
        assert!(t <= host_parallelism().min(MAX_THREADS));
        if host_parallelism() == 1 {
            assert_eq!(t, 1);
        }
    }
}
