//! AMC-style learned compression policy (He et al., ECCV 2018).
//!
//! AMC exposes layer-wise pruning as a reinforcement-learning problem: an
//! agent proposes per-layer sparsities and is rewarded by an engineered
//! accuracy/efficiency trade-off. The original uses DDPG; this
//! reproduction keeps the role (a *learned* policy with a hand-crafted
//! reward, cf. Table I) but optimises the policy with the cross-entropy
//! method (CEM) — a derivative-free policy search that is deterministic
//! under our seeded RNG and tractable on CPU. Candidates are applied with
//! magnitude ranking (as AMC does for its structured variant) and scored
//! *without* fine-tuning at intermediate stages, matching the paper's
//! description of AMC's fast exploration.

use alf_core::train::evaluate;
use alf_core::{CnnModel, NetworkCost};
use alf_data::{Dataset, Split};
use alf_tensor::rng::Rng;
use serde::{Deserialize, Serialize};

use crate::api::chained_cost;
use crate::Result;

/// Hyper-parameters of the CEM policy search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AmcConfig {
    /// Candidates sampled per iteration.
    pub population: usize,
    /// Elite candidates kept for the distribution update.
    pub elites: usize,
    /// CEM iterations.
    pub iterations: usize,
    /// Lower bound on per-layer keep ratio.
    pub min_keep: f32,
    /// Target compressed-OPs fraction of the baseline (e.g. `0.5` = half
    /// the operations).
    pub ops_target: f32,
    /// Penalty weight on exceeding the OPs target.
    pub ops_penalty: f32,
    /// Evaluation batch size.
    pub eval_batch: usize,
}

impl Default for AmcConfig {
    fn default() -> Self {
        Self {
            population: 12,
            elites: 3,
            iterations: 5,
            min_keep: 0.2,
            ops_target: 0.5,
            ops_penalty: 2.0,
            eval_batch: 64,
        }
    }
}

/// Outcome of an AMC search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AmcOutcome {
    /// Best per-layer keep ratios found.
    pub keep_ratios: Vec<f32>,
    /// Per-layer `(name, kept, total)` under the best ratios.
    pub layer_keep: Vec<(String, usize, usize)>,
    /// Compressed cost (chained accounting).
    pub cost: NetworkCost,
    /// Accuracy of the pruned (not fine-tuned) model.
    pub accuracy: f32,
    /// Best reward per CEM iteration (monotonically non-decreasing).
    pub reward_history: Vec<f32>,
}

/// The CEM-based compression agent.
///
/// # Example
///
/// ```no_run
/// use alf_baselines::{AmcAgent, AmcConfig};
/// use alf_core::models::plain20;
/// use alf_data::SynthVision;
///
/// # fn main() -> alf_baselines::Result<()> {
/// let data = SynthVision::cifar_like(0).with_train_size(128).build()?;
/// let model = plain20(10, 8)?;
/// let mut agent = AmcAgent::new(AmcConfig::default(), 42);
/// let outcome = agent.search(&model, &data)?;
/// println!("kept {:?} of OPs", outcome.cost);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AmcAgent {
    config: AmcConfig,
    rng: Rng,
}

impl AmcAgent {
    /// Creates an agent.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configuration (zero population/elites, elites
    /// exceeding population, `min_keep` outside `(0, 1]`).
    pub fn new(config: AmcConfig, seed: u64) -> Self {
        assert!(config.population > 0 && config.elites > 0);
        assert!(config.elites <= config.population);
        assert!(config.min_keep > 0.0 && config.min_keep <= 1.0);
        Self {
            config,
            rng: Rng::new(seed ^ 0x0a3c_0000),
        }
    }

    /// Applies per-layer keep ratios to a clone of `model` (magnitude
    /// ranking, channel silencing) and reports the per-layer keeps.
    fn apply(model: &CnnModel, ratios: &[f32]) -> (CnnModel, Vec<(String, usize, usize)>) {
        let mut pruned = model.clone();
        let report = crate::api::apply_keep_ratios(&mut pruned, ratios);
        (pruned, report)
    }

    fn reward(
        &self,
        model: &CnnModel,
        data: &Dataset,
        ratios: &[f32],
        baseline_ops: f64,
    ) -> Result<(f32, f32, NetworkCost)> {
        let (pruned, report) = Self::apply(model, ratios);
        let shapes = pruned.conv_shapes(data.image_dims()[1], data.image_dims()[2]);
        let keep: Vec<usize> = report.iter().map(|(_, k, _)| *k).collect();
        let cost = chained_cost(&shapes, &keep);
        let accuracy = evaluate(&pruned, data, Split::Test, self.config.eval_batch)?;
        let ops_ratio = cost.ops() as f64 / baseline_ops;
        let penalty =
            self.config.ops_penalty * (ops_ratio - self.config.ops_target as f64).max(0.0) as f32;
        Ok((accuracy - penalty, accuracy, cost))
    }

    /// Runs the CEM search over per-layer keep ratios.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from model evaluation.
    pub fn search(&mut self, model: &CnnModel, data: &Dataset) -> Result<AmcOutcome> {
        let [_, h, w] = data.image_dims();
        let shapes = model.conv_shapes(h, w);
        let n_layers = shapes.len();
        let baseline_ops = NetworkCost::of_layers(&shapes).ops() as f64;
        let mut mu = vec![0.7f32; n_layers];
        let mut sigma = vec![0.25f32; n_layers];
        let mut best: Option<(f32, Vec<f32>)> = None;
        let mut history = Vec::with_capacity(self.config.iterations);
        for _ in 0..self.config.iterations {
            let mut scored: Vec<(f32, Vec<f32>)> = Vec::with_capacity(self.config.population);
            for _ in 0..self.config.population {
                let candidate: Vec<f32> = mu
                    .iter()
                    .zip(&sigma)
                    .map(|(&m, &s)| self.rng.normal_with(m, s).clamp(self.config.min_keep, 1.0))
                    .collect();
                let (r, _, _) = self.reward(model, data, &candidate, baseline_ops)?;
                scored.push((r, candidate));
            }
            scored.sort_by(|a, b| b.0.total_cmp(&a.0));
            let elites = &scored[..self.config.elites];
            for (d, layer_mu) in mu.iter_mut().enumerate() {
                let mean: f32 = elites.iter().map(|(_, c)| c[d]).sum::<f32>() / elites.len() as f32;
                let var: f32 = elites
                    .iter()
                    .map(|(_, c)| (c[d] - mean) * (c[d] - mean))
                    .sum::<f32>()
                    / elites.len() as f32;
                *layer_mu = mean;
                sigma[d] = (var.sqrt()).max(0.02); // keep exploring
            }
            if best.as_ref().is_none_or(|(r, _)| scored[0].0 > *r) {
                best = Some(scored[0].clone());
            }
            history.push(best.as_ref().map(|(r, _)| *r).unwrap_or(f32::NEG_INFINITY));
        }
        let (_, best_ratios) = best.expect("at least one CEM iteration");
        let (_, accuracy, cost) = self.reward(model, data, &best_ratios, baseline_ops)?;
        let (_, layer_keep) = Self::apply(model, &best_ratios);
        Ok(AmcOutcome {
            keep_ratios: best_ratios,
            layer_keep,
            cost,
            accuracy,
            reward_history: history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alf_core::models::plain20;
    use alf_data::SynthVision;

    fn tiny_data() -> Dataset {
        SynthVision::cifar_like(3)
            .with_image_size(12)
            .with_max_shift(1)
            .with_num_classes(4)
            .with_train_size(32)
            .with_test_size(24)
            .build()
            .unwrap()
    }

    fn tiny_config() -> AmcConfig {
        AmcConfig {
            population: 4,
            elites: 2,
            iterations: 2,
            eval_batch: 12,
            ..AmcConfig::default()
        }
    }

    #[test]
    fn search_is_deterministic() {
        let data = tiny_data();
        let model = plain20(4, 4).unwrap();
        let a = AmcAgent::new(tiny_config(), 7)
            .search(&model, &data)
            .unwrap();
        let b = AmcAgent::new(tiny_config(), 7)
            .search(&model, &data)
            .unwrap();
        assert_eq!(a.keep_ratios, b.keep_ratios);
        assert_eq!(a.accuracy, b.accuracy);
    }

    #[test]
    fn reward_history_is_monotone() {
        let data = tiny_data();
        let model = plain20(4, 4).unwrap();
        let out = AmcAgent::new(tiny_config(), 9)
            .search(&model, &data)
            .unwrap();
        assert_eq!(out.reward_history.len(), 2);
        assert!(out.reward_history[1] >= out.reward_history[0]);
    }

    #[test]
    fn outcome_respects_bounds_and_costs() {
        let data = tiny_data();
        let model = plain20(4, 4).unwrap();
        let out = AmcAgent::new(tiny_config(), 11)
            .search(&model, &data)
            .unwrap();
        assert_eq!(out.keep_ratios.len(), 19);
        assert!(out.keep_ratios.iter().all(|r| (0.2..=1.0).contains(r)));
        let baseline = NetworkCost::of_layers(&model.conv_shapes(12, 12));
        assert!(out.cost.ops() <= baseline.ops());
        assert!((0.0..=1.0).contains(&out.accuracy));
        assert_eq!(out.layer_keep.len(), 19);
    }

    #[test]
    #[should_panic]
    fn rejects_degenerate_config() {
        AmcAgent::new(
            AmcConfig {
                elites: 5,
                population: 4,
                ..AmcConfig::default()
            },
            0,
        );
    }
}
