//! Magnitude-based pruning (Han et al., NeurIPS 2015).
//!
//! Two variants:
//!
//! * **Irregular** ([`prune_weights`]): zero individual weights below a
//!   magnitude threshold chosen to hit a target sparsity. Fast to apply
//!   but produces the irregular sparsity the paper criticises for
//!   embedded deployment.
//! * **Structured** ([`filter_ranking`] + [`prune_filters`]): rank whole
//!   filters by L1 norm and silence the weakest, keeping a fraction per
//!   layer.

use alf_core::model::ConvKind;
use alf_core::CnnModel;
use alf_tensor::Tensor;

/// Zeroes the smallest-magnitude fraction `sparsity ∈ [0, 1]` of the
/// entries of `w`, returning the number of zeroed weights.
///
/// # Panics
///
/// Panics if `sparsity` is outside `[0, 1]`.
pub fn prune_weights(w: &mut Tensor, sparsity: f32) -> usize {
    assert!(
        (0.0..=1.0).contains(&sparsity),
        "sparsity {sparsity} ∉ [0,1]"
    );
    let n = w.len();
    let k = ((n as f32) * sparsity).round() as usize;
    if k == 0 {
        return 0;
    }
    let mut magnitudes: Vec<f32> = w.data().iter().map(|x| x.abs()).collect();
    magnitudes.sort_by(f32::total_cmp);
    let threshold = magnitudes[(k - 1).min(n - 1)];
    let mut zeroed = 0;
    for v in w.data_mut() {
        if v.abs() <= threshold && zeroed < k {
            *v = 0.0;
            zeroed += 1;
        }
    }
    zeroed
}

/// Ranks the filters of a conv weight `[Co, Ci, K, K]` by ascending L1
/// norm; the head of the list is pruned first.
pub fn filter_ranking(w: &Tensor) -> Vec<usize> {
    let co = w.dims()[0];
    let fan = w.len() / co.max(1);
    let mut norms: Vec<(usize, f32)> = (0..co)
        .map(|j| {
            (
                j,
                w.data()[j * fan..(j + 1) * fan]
                    .iter()
                    .map(|x| x.abs())
                    .sum(),
            )
        })
        .collect();
    norms.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    norms.into_iter().map(|(j, _)| j).collect()
}

/// Structured magnitude pruning of a whole model: keeps the strongest
/// `keep_ratio` of filters per conv layer (at least one), silencing the
/// rest. Returns `(layer name, kept, total)` per layer.
///
/// # Panics
///
/// Panics if `keep_ratio` is outside `(0, 1]`.
pub fn prune_filters(model: &mut CnnModel, keep_ratio: f32) -> Vec<(String, usize, usize)> {
    assert!(
        keep_ratio > 0.0 && keep_ratio <= 1.0,
        "keep_ratio {keep_ratio} ∉ (0,1]"
    );
    let mut report = Vec::new();
    for cu in model.conv_units_mut() {
        let ConvKind::Standard(conv) = cu.conv() else {
            continue;
        };
        let total = conv.c_out();
        let kept = ((total as f32 * keep_ratio).round() as usize).clamp(1, total);
        let ranking = filter_ranking(conv.weight());
        let to_prune: Vec<usize> = ranking[..total - kept].to_vec();
        let name = cu.name().to_string();
        cu.zero_output_channels(&to_prune);
        report.push((name, kept, total));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use alf_core::models::plain20;
    use alf_nn::{Layer, RunCtx};
    use alf_tensor::init::Init;
    use alf_tensor::rng::Rng;

    #[test]
    fn prune_weights_hits_target_sparsity() {
        let mut rng = Rng::new(0);
        let mut w = Tensor::randn(&[1000], Init::He, &mut rng);
        let zeroed = prune_weights(&mut w, 0.5);
        assert_eq!(zeroed, 500);
        assert_eq!(w.count_near_zero(0.0), 500);
    }

    #[test]
    fn prune_weights_removes_smallest_first() {
        let mut w = Tensor::from_vec(vec![0.1, -0.5, 0.01, 2.0], &[4]).unwrap();
        prune_weights(&mut w, 0.5);
        assert_eq!(w.data(), &[0.0, -0.5, 0.0, 2.0]);
    }

    #[test]
    fn prune_weights_zero_sparsity_is_noop() {
        let mut w = Tensor::ones(&[4]);
        assert_eq!(prune_weights(&mut w, 0.0), 0);
        assert_eq!(w.sum(), 4.0);
    }

    #[test]
    fn filter_ranking_orders_by_l1() {
        let mut w = Tensor::zeros(&[3, 1, 2, 2]);
        // filter 0 norm 4, filter 1 norm 0.4, filter 2 norm 8.
        for i in 0..4 {
            w.data_mut()[i] = 1.0;
            w.data_mut()[4 + i] = 0.1;
            w.data_mut()[8 + i] = -2.0;
        }
        assert_eq!(filter_ranking(&w), vec![1, 0, 2]);
    }

    #[test]
    fn structured_pruning_silences_channels() {
        let mut model = plain20(4, 4).unwrap();
        let report = prune_filters(&mut model, 0.5);
        assert_eq!(report.len(), 19);
        for (_, kept, total) in &report {
            assert_eq!(*kept, total / 2);
        }
        // Forward still works; silenced channels output zero after BN.
        let y = model
            .forward(&Tensor::ones(&[1, 3, 16, 16]), &mut RunCtx::eval())
            .unwrap();
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn keep_ratio_one_prunes_nothing() {
        let mut model = plain20(4, 4).unwrap();
        let before: Vec<f32> = {
            let mut sums = Vec::new();
            model.visit_params(&mut |p| sums.push(p.value.sum()));
            sums
        };
        prune_filters(&mut model, 1.0);
        let mut after = Vec::new();
        model.visit_params(&mut |p| after.push(p.value.sum()));
        assert_eq!(before, after);
    }
}
