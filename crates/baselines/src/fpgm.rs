//! Filter pruning via geometric median (He et al., CVPR 2019).
//!
//! FPGM's insight: filters close to the *geometric median* of a layer's
//! filter set are the most replaceable (their information is representable
//! by the others), so they are pruned first — regardless of their norm.
//! The geometric median is computed exactly (to tolerance) with the
//! Weiszfeld fixed-point iteration.

use alf_core::model::ConvKind;
use alf_core::CnnModel;
use alf_tensor::Tensor;

/// Computes the geometric median of `points` (rows of length `dim`) with
/// Weiszfeld's algorithm.
///
/// # Panics
///
/// Panics when `points` is empty or rows have inconsistent lengths.
pub fn geometric_median(points: &[Vec<f32>], iterations: usize, tol: f32) -> Vec<f32> {
    assert!(!points.is_empty(), "geometric median of empty set");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "inconsistent point dimensions"
    );
    // Start at the centroid.
    let mut median = vec![0.0f32; dim];
    for p in points {
        for (m, &v) in median.iter_mut().zip(p) {
            *m += v;
        }
    }
    for m in &mut median {
        *m /= points.len() as f32;
    }
    for _ in 0..iterations {
        let mut numer = vec![0.0f32; dim];
        let mut denom = 0.0f32;
        let mut coincident = false;
        for p in points {
            let dist = p
                .iter()
                .zip(&median)
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt();
            if dist < 1e-9 {
                coincident = true;
                continue;
            }
            let w = 1.0 / dist;
            for (n, &v) in numer.iter_mut().zip(p) {
                *n += w * v;
            }
            denom += w;
        }
        if denom == 0.0 {
            break; // all points coincide with the median
        }
        let next: Vec<f32> = numer.iter().map(|&n| n / denom).collect();
        let shift: f32 = next
            .iter()
            .zip(&median)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        median = next;
        if shift < tol && !coincident {
            break;
        }
    }
    median
}

/// Ranks the filters of a conv weight `[Co, Ci, K, K]` by ascending
/// distance to the geometric median of the filter set — the head of the
/// list (closest to the median, most redundant) is pruned first.
pub fn fpgm_ranking(w: &Tensor) -> Vec<usize> {
    let co = w.dims()[0];
    let fan = w.len() / co.max(1);
    let points: Vec<Vec<f32>> = (0..co)
        .map(|j| w.data()[j * fan..(j + 1) * fan].to_vec())
        .collect();
    let median = geometric_median(&points, 100, 1e-6);
    let mut dists: Vec<(usize, f32)> = points
        .iter()
        .enumerate()
        .map(|(j, p)| {
            (
                j,
                p.iter()
                    .zip(&median)
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum::<f32>(),
            )
        })
        .collect();
    dists.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    dists.into_iter().map(|(j, _)| j).collect()
}

/// Applies FPGM to a whole model, silencing the `1 − keep_ratio` most
/// median-like filters of every standard conv layer. Returns
/// `(layer name, kept, total)` per layer.
///
/// # Panics
///
/// Panics if `keep_ratio` is outside `(0, 1]`.
pub fn prune_filters(model: &mut CnnModel, keep_ratio: f32) -> Vec<(String, usize, usize)> {
    assert!(
        keep_ratio > 0.0 && keep_ratio <= 1.0,
        "keep_ratio {keep_ratio} ∉ (0,1]"
    );
    let mut report = Vec::new();
    for cu in model.conv_units_mut() {
        let ConvKind::Standard(conv) = cu.conv() else {
            continue;
        };
        let total = conv.c_out();
        let kept = ((total as f32 * keep_ratio).round() as usize).clamp(1, total);
        let ranking = fpgm_ranking(conv.weight());
        let to_prune: Vec<usize> = ranking[..total - kept].to_vec();
        let name = cu.name().to_string();
        cu.zero_output_channels(&to_prune);
        report.push((name, kept, total));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use alf_core::models::plain20;

    #[test]
    fn median_of_single_point_is_the_point() {
        let m = geometric_median(&[vec![1.0, 2.0]], 50, 1e-6);
        assert!((m[0] - 1.0).abs() < 1e-5 && (m[1] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn median_of_symmetric_points_is_center() {
        let pts = vec![
            vec![1.0, 0.0],
            vec![-1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, -1.0],
        ];
        let m = geometric_median(&pts, 200, 1e-7);
        assert!(m[0].abs() < 1e-3 && m[1].abs() < 1e-3, "{m:?}");
    }

    #[test]
    fn median_is_robust_to_outliers_unlike_mean() {
        // 3 points at the origin cluster, 1 far away: the geometric median
        // stays near the cluster while the mean is dragged out.
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![100.0, 100.0],
        ];
        let m = geometric_median(&pts, 500, 1e-7);
        assert!(m[0] < 1.0 && m[1] < 1.0, "median dragged to {m:?}");
    }

    #[test]
    fn ranking_puts_median_like_filter_first() {
        // Filters: three spread out, one exactly at their median region.
        let mut w = Tensor::zeros(&[4, 1, 1, 2]);
        let vals = [[4.0, 0.0], [-4.0, 0.0], [0.0, 4.0], [0.0, 0.1]];
        for (j, v) in vals.iter().enumerate() {
            w.data_mut()[j * 2] = v[0];
            w.data_mut()[j * 2 + 1] = v[1];
        }
        let ranking = fpgm_ranking(&w);
        assert_eq!(ranking[0], 3, "most median-like filter should rank first");
    }

    #[test]
    fn fpgm_differs_from_magnitude_on_crafted_weights() {
        // A small-norm filter far from the median should be KEPT by FPGM
        // but pruned by magnitude.
        let mut w = Tensor::zeros(&[3, 1, 1, 2]);
        // two big coincident filters + one small orthogonal one.
        let vals = [[5.0, 0.0], [5.0, 0.01], [0.0, 0.2]];
        for (j, v) in vals.iter().enumerate() {
            w.data_mut()[j * 2] = v[0];
            w.data_mut()[j * 2 + 1] = v[1];
        }
        let fpgm = fpgm_ranking(&w);
        let magnitude = crate::magnitude::filter_ranking(&w);
        assert_eq!(magnitude[0], 2, "magnitude prunes the small filter");
        assert_ne!(fpgm[0], 2, "fpgm keeps the distinctive small filter");
    }

    #[test]
    fn model_level_pruning_reports_all_layers() {
        let mut model = plain20(4, 4).unwrap();
        let report = prune_filters(&mut model, 0.75);
        assert_eq!(report.len(), 19);
        for (_, kept, total) in &report {
            assert_eq!(*kept, (*total as f32 * 0.75).round() as usize);
        }
    }
}
