//! Baseline CNN compression methods the paper compares ALF against
//! (Tables II/III).
//!
//! * [`magnitude`] — Han et al.'s magnitude pruning, both irregular
//!   (weight-level) and structured (filter-level) variants.
//! * [`fpgm`] — He et al.'s *filter pruning via geometric median*
//!   (handcrafted policy), with an exact Weiszfeld geometric-median solver.
//! * [`amc`] — an AMC-style *learned* layer-wise sparsity search. The
//!   original uses a DDPG agent; this reproduction uses the cross-entropy
//!   method over per-layer keep-ratios with an accuracy-vs-OPs reward,
//!   which plays the same role (a learning-based policy requiring a
//!   hand-crafted reward) at tractable scale — see `DESIGN.md`.
//! * [`lcnn`] — Bagherinezhad et al.'s lookup-based CNN: a shared filter
//!   dictionary per layer with 1-sparse lookups.
//!
//! All methods operate on a trained [`alf_core::CnnModel`] with standard
//! convolutions, produce per-layer keep decisions, apply them by *channel
//! silencing* (zeroing filters and the BN affine so the channel output is
//! exactly zero — functionally identical to removal without reshaping),
//! and report [`api::chained_cost`]-style Params/OPs accounting where a
//! pruned layer also shrinks the next layer's input channels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amc;
pub mod api;
pub mod fpgm;
pub mod lcnn;
pub mod magnitude;
pub mod sensitivity;

pub use amc::{AmcAgent, AmcConfig};
pub use api::{chained_cost, CompressionResult, Policy};
pub use fpgm::geometric_median;
pub use lcnn::LcnnLayer;
pub use sensitivity::{layer_sensitivity, LayerSensitivity};

/// Crate-wide result alias.
pub type Result<T> = alf_tensor::Result<T>;
