//! Lookup-based CNN (Bagherinezhad et al., CVPR 2017) — the weight-sharing
//! baseline the paper calls closest to ALF.
//!
//! LCNN learns a small *dictionary* of filters per layer; each original
//! filter is expressed as a sparse combination of dictionary entries. At
//! inference the input is convolved with the dictionary once and the
//! layer's outputs are cheap linear lookups into those results. This
//! module implements the 1-sparse variant: k-means over the filter set
//! gives the dictionary, and every filter maps to its nearest entry with a
//! least-squares scale.

use alf_core::model::ConvKind;
use alf_core::{CnnModel, ConvShape, NetworkCost};
use alf_tensor::rng::Rng;
use alf_tensor::{ShapeError, Tensor};

use crate::Result;

/// A layer compressed into dictionary + lookup form.
#[derive(Debug, Clone, PartialEq)]
pub struct LcnnLayer {
    /// Dictionary filters `[d, Ci, K, K]` (flattened rows internally).
    pub dictionary: Vec<Vec<f32>>,
    /// For each original filter: the dictionary index it looks up.
    pub assignments: Vec<usize>,
    /// Per-filter scale applied to the looked-up dictionary response.
    pub scales: Vec<f32>,
}

impl LcnnLayer {
    /// Learns a dictionary of `dict_size` entries for a conv weight
    /// `[Co, Ci, K, K]` via seeded k-means (10 Lloyd iterations), then
    /// assigns each filter to its nearest entry with an optimal scale.
    ///
    /// # Errors
    ///
    /// Returns an error when `dict_size` is zero or exceeds the filter
    /// count, or the weight is not rank 4.
    pub fn learn(w: &Tensor, dict_size: usize, rng: &mut Rng) -> Result<Self> {
        if w.shape().rank() != 4 {
            return Err(ShapeError::new(
                "lcnn",
                format!("expected rank-4 weight, got {}", w.shape()),
            ));
        }
        let co = w.dims()[0];
        if dict_size == 0 || dict_size > co {
            return Err(ShapeError::new(
                "lcnn",
                format!("dict size {dict_size} invalid for {co} filters"),
            ));
        }
        let fan = w.len() / co;
        let filters: Vec<Vec<f32>> = (0..co)
            .map(|j| w.data()[j * fan..(j + 1) * fan].to_vec())
            .collect();
        // k-means++ style seeding: random distinct starting filters.
        let mut order: Vec<usize> = (0..co).collect();
        rng.shuffle(&mut order);
        let mut dictionary: Vec<Vec<f32>> = order[..dict_size]
            .iter()
            .map(|&j| filters[j].clone())
            .collect();
        let mut assignments = vec![0usize; co];
        for _ in 0..10 {
            // Assign.
            for (j, f) in filters.iter().enumerate() {
                assignments[j] = nearest(f, &dictionary);
            }
            // Update.
            for (d, entry) in dictionary.iter_mut().enumerate() {
                let members: Vec<&Vec<f32>> = filters
                    .iter()
                    .zip(&assignments)
                    .filter_map(|(f, &a)| (a == d).then_some(f))
                    .collect();
                if members.is_empty() {
                    continue;
                }
                for (i, e) in entry.iter_mut().enumerate() {
                    *e = members.iter().map(|m| m[i]).sum::<f32>() / members.len() as f32;
                }
            }
        }
        for (j, f) in filters.iter().enumerate() {
            assignments[j] = nearest(f, &dictionary);
        }
        // Least-squares scale per filter: argmin_s ||f − s·d|| = <f,d>/<d,d>.
        let scales: Vec<f32> = filters
            .iter()
            .zip(&assignments)
            .map(|(f, &a)| {
                let d = &dictionary[a];
                let dd: f32 = d.iter().map(|x| x * x).sum();
                if dd == 0.0 {
                    0.0
                } else {
                    f.iter().zip(d).map(|(&a, &b)| a * b).sum::<f32>() / dd
                }
            })
            .collect();
        Ok(Self {
            dictionary,
            assignments,
            scales,
        })
    }

    /// Reconstructs the approximated weight tensor (`filter_j ≈
    /// scale_j · dict[assign_j]`).
    ///
    /// # Errors
    ///
    /// Returns an error when `dims` is inconsistent with the layer.
    pub fn reconstruct(&self, dims: &[usize]) -> Result<Tensor> {
        let co = self.assignments.len();
        if dims.len() != 4 || dims[0] != co {
            return Err(ShapeError::new(
                "lcnn reconstruct",
                format!("dims {dims:?} inconsistent with {co} filters"),
            ));
        }
        let fan: usize = dims[1] * dims[2] * dims[3];
        let mut data = Vec::with_capacity(co * fan);
        for (j, &a) in self.assignments.iter().enumerate() {
            let s = self.scales[j];
            data.extend(self.dictionary[a].iter().map(|&v| s * v));
        }
        Tensor::from_vec(data, dims)
    }

    /// Mean squared reconstruction error versus the original weights.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn reconstruction_error(&self, w: &Tensor) -> Result<f32> {
        let rec = self.reconstruct(w.dims())?;
        Ok(alf_nn::loss::mse_loss(&rec, w)?.0)
    }

    /// Deployed parameter count: dictionary entries plus one
    /// (index, scale) pair per filter (indices counted as one word each).
    pub fn params(&self, fan: usize) -> u64 {
        (self.dictionary.len() * fan + 2 * self.assignments.len()) as u64
    }

    /// Deployed MACs for a layer of geometry `shape`: one convolution with
    /// the dictionary plus a 1-sparse scaled lookup per output channel and
    /// pixel.
    pub fn macs(&self, shape: &ConvShape) -> u64 {
        let hw = (shape.h_out * shape.w_out) as u64;
        let dict_conv =
            (shape.c_in * shape.kernel * shape.kernel * self.dictionary.len()) as u64 * hw;
        let lookup = self.assignments.len() as u64 * hw;
        dict_conv + lookup
    }
}

fn nearest(f: &[f32], dictionary: &[Vec<f32>]) -> usize {
    let mut best = (0usize, f32::INFINITY);
    for (d, entry) in dictionary.iter().enumerate() {
        let dist: f32 = f.iter().zip(entry).map(|(&a, &b)| (a - b) * (a - b)).sum();
        if dist < best.1 {
            best = (d, dist);
        }
    }
    best.0
}

/// Applies LCNN to every standard conv of a model: learns a per-layer
/// dictionary of `⌈dict_ratio·Co⌉` entries and replaces the weights with
/// their reconstruction. Returns the deployed cost.
///
/// # Errors
///
/// Propagates shape errors.
///
/// # Panics
///
/// Panics if `dict_ratio` is outside `(0, 1]`.
pub fn compress_model(
    model: &mut CnnModel,
    dict_ratio: f32,
    h: usize,
    w: usize,
    seed: u64,
) -> Result<NetworkCost> {
    assert!(
        dict_ratio > 0.0 && dict_ratio <= 1.0,
        "dict_ratio {dict_ratio} ∉ (0,1]"
    );
    let shapes = model.conv_shapes(h, w);
    let mut rng = Rng::new(seed ^ 0x1c55);
    let mut cost = NetworkCost::default();
    for (cu, shape) in model.conv_units_mut().into_iter().zip(&shapes) {
        let ConvKind::Standard(conv) = cu.conv_mut() else {
            continue;
        };
        let co = conv.c_out();
        let dict = ((co as f32 * dict_ratio).ceil() as usize).clamp(1, co);
        let layer = LcnnLayer::learn(conv.weight(), dict, &mut rng)?;
        let rec = layer.reconstruct(conv.weight().dims())?;
        let fan = shape.c_in * shape.kernel * shape.kernel;
        cost.params += layer.params(fan);
        cost.macs += layer.macs(shape);
        conv.set_weight(rec)?;
    }
    Ok(cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alf_core::models::plain20;
    use alf_tensor::init::Init;

    fn weight(seed: u64) -> Tensor {
        Tensor::randn(&[8, 2, 3, 3], Init::He, &mut Rng::new(seed))
    }

    #[test]
    fn full_dictionary_reconstructs_exactly() {
        let w = weight(0);
        let layer = LcnnLayer::learn(&w, 8, &mut Rng::new(1)).unwrap();
        let err = layer.reconstruction_error(&w).unwrap();
        assert!(err < 1e-6, "err {err}");
    }

    #[test]
    fn smaller_dictionary_increases_error_monotonically_ish() {
        let w = weight(2);
        let e8 = LcnnLayer::learn(&w, 8, &mut Rng::new(3))
            .unwrap()
            .reconstruction_error(&w)
            .unwrap();
        let e2 = LcnnLayer::learn(&w, 2, &mut Rng::new(3))
            .unwrap()
            .reconstruction_error(&w)
            .unwrap();
        assert!(e2 > e8);
    }

    #[test]
    fn duplicate_filters_compress_losslessly() {
        // 8 filters that are all scaled copies of 2 prototypes → a 2-entry
        // dictionary suffices.
        let mut w = Tensor::zeros(&[8, 1, 2, 2]);
        for j in 0..8 {
            let proto = if j % 2 == 0 {
                [1.0, 2.0, 3.0, 4.0]
            } else {
                [-1.0, 0.5, 0.0, 2.0]
            };
            let scale = 1.0 + j as f32 * 0.5;
            for (i, &p) in proto.iter().enumerate() {
                w.data_mut()[j * 4 + i] = scale * p;
            }
        }
        // k-means on scaled copies won't always find the perfect split from
        // any seed; try a few.
        let best = (0..5)
            .map(|s| {
                LcnnLayer::learn(&w, 4, &mut Rng::new(s))
                    .unwrap()
                    .reconstruction_error(&w)
                    .unwrap()
            })
            .fold(f32::INFINITY, f32::min);
        assert!(best < 0.5, "err {best}");
    }

    #[test]
    fn learn_validates_inputs() {
        let w = weight(4);
        assert!(LcnnLayer::learn(&w, 0, &mut Rng::new(0)).is_err());
        assert!(LcnnLayer::learn(&w, 9, &mut Rng::new(0)).is_err());
        assert!(LcnnLayer::learn(&Tensor::zeros(&[4]), 1, &mut Rng::new(0)).is_err());
    }

    #[test]
    fn cost_accounting_shrinks_with_dictionary() {
        let shape = ConvShape::new("l", 16, 64, 3, 1, 16, 16);
        let w = Tensor::randn(&[64, 16, 3, 3], Init::He, &mut Rng::new(5));
        let small = LcnnLayer::learn(&w, 8, &mut Rng::new(6)).unwrap();
        let large = LcnnLayer::learn(&w, 32, &mut Rng::new(6)).unwrap();
        assert!(small.macs(&shape) < large.macs(&shape));
        assert!(small.macs(&shape) < shape.macs());
        assert!(small.params(16 * 9) < shape.params());
    }

    #[test]
    fn model_level_compression_runs_and_reports_cost() {
        let mut model = plain20(4, 4).unwrap();
        let baseline = NetworkCost::of_layers(&model.conv_shapes(16, 16));
        let cost = compress_model(&mut model, 0.25, 16, 16, 9).unwrap();
        assert!(cost.macs < baseline.macs);
        // The model still runs.
        use alf_nn::{Layer, RunCtx};
        let y = model
            .forward(&Tensor::zeros(&[1, 3, 16, 16]), &mut RunCtx::eval())
            .unwrap();
        assert_eq!(y.dims(), &[1, 4]);
    }
}
