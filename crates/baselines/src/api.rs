//! Shared types and cost accounting for the compression baselines.

use alf_core::model::ConvKind;
use alf_core::{CnnModel, ConvShape, NetworkCost};
use serde::{Deserialize, Serialize};

use crate::magnitude::filter_ranking;

/// The policy class of a compression method (Table I's taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Handcrafted rule (magnitude, FPGM).
    Handcrafted,
    /// Learned agent with an engineered reward (AMC).
    RlAgent,
    /// Automatic — learned during task training with no agent (LCNN, ALF).
    Automatic,
}

impl Policy {
    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Handcrafted => "Handcrafted",
            Policy::RlAgent => "RL-Agent",
            Policy::Automatic => "Automatic",
        }
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome of applying a compression method to a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionResult {
    /// Method name (`magnitude`, `fpgm`, `amc`, `lcnn`, `alf`).
    pub method: String,
    /// Policy class.
    pub policy: Policy,
    /// Per-layer `(name, kept, total)` filter counts.
    pub layer_keep: Vec<(String, usize, usize)>,
    /// Compressed cost (chained accounting).
    pub cost: NetworkCost,
    /// Uncompressed baseline cost.
    pub baseline_cost: NetworkCost,
    /// Post-compression accuracy, when measured.
    pub accuracy: Option<f32>,
}

impl CompressionResult {
    /// `(params-reduction %, ops-reduction %)` versus the baseline.
    pub fn reduction(&self) -> (f64, f64) {
        self.cost.reduction_vs(&self.baseline_cost)
    }
}

/// Chained Params/MACs accounting for structured filter pruning: layer
/// `i`'s kept filters become layer `i+1`'s input channels (the coupling the
/// paper calls out as the difficulty of removing filters).
///
/// `keep[i]` must be `1..=shapes[i].c_out`. The first layer's input
/// channels are the raw image channels and are never pruned.
///
/// # Panics
///
/// Panics when `keep.len() != shapes.len()` or a keep count is out of
/// range.
pub fn chained_cost(shapes: &[ConvShape], keep: &[usize]) -> NetworkCost {
    assert_eq!(shapes.len(), keep.len(), "keep list length mismatch");
    let mut cost = NetworkCost::default();
    let mut prev_kept: Option<usize> = None;
    for (shape, &k) in shapes.iter().zip(keep) {
        assert!(
            k >= 1 && k <= shape.c_out,
            "keep {k} out of range for {} ({} filters)",
            shape.name,
            shape.c_out
        );
        let c_in = prev_kept.unwrap_or(shape.c_in).min(shape.c_in);
        let params = (c_in * k * shape.kernel * shape.kernel) as u64;
        cost.params += params;
        cost.macs += params * (shape.h_out * shape.w_out) as u64;
        prev_kept = Some(k);
    }
    cost
}

/// Applies per-layer keep ratios to a model in place (magnitude ranking,
/// channel silencing), returning `(name, kept, total)` per conv layer.
/// Layers beyond the ratio list keep everything. Re-invoking after a
/// fine-tuning epoch re-silences channels that training revived.
///
/// # Panics
///
/// Panics when a ratio is outside `(0, 1]`.
pub fn apply_keep_ratios(model: &mut CnnModel, ratios: &[f32]) -> Vec<(String, usize, usize)> {
    let mut report = Vec::new();
    for (i, cu) in model.conv_units_mut().into_iter().enumerate() {
        let ratio = ratios.get(i).copied().unwrap_or(1.0);
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "keep ratio {ratio} ∉ (0,1] for layer {i}"
        );
        let ConvKind::Standard(conv) = cu.conv() else {
            report.push((cu.name().to_string(), cu.conv().c_out(), cu.conv().c_out()));
            continue;
        };
        let total = conv.c_out();
        let kept = ((total as f32 * ratio).round() as usize).clamp(1, total);
        let ranking = filter_ranking(conv.weight());
        let to_prune: Vec<usize> = ranking[..total - kept].to_vec();
        let name = cu.name().to_string();
        cu.zero_output_channels(&to_prune);
        report.push((name, kept, total));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> Vec<ConvShape> {
        vec![
            ConvShape::new("a", 3, 8, 3, 1, 8, 8),
            ConvShape::new("b", 8, 8, 3, 1, 8, 8),
        ]
    }

    #[test]
    fn unpruned_chain_matches_plain_cost() {
        let s = shapes();
        let full = chained_cost(&s, &[8, 8]);
        assert_eq!(full, NetworkCost::of_layers(&s));
    }

    #[test]
    fn pruning_first_layer_shrinks_second_layer_inputs() {
        let s = shapes();
        let pruned = chained_cost(&s, &[4, 8]);
        // layer a: 3·4·9; layer b: 4·8·9 (inputs shrank from 8 to 4).
        assert_eq!(pruned.params, (3 * 4 * 9 + 4 * 8 * 9) as u64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_zero_keep() {
        chained_cost(&shapes(), &[0, 8]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_length_mismatch() {
        chained_cost(&shapes(), &[8]);
    }

    #[test]
    fn reduction_helper() {
        let s = shapes();
        let r = CompressionResult {
            method: "x".into(),
            policy: Policy::Handcrafted,
            layer_keep: vec![],
            cost: chained_cost(&s, &[4, 4]),
            baseline_cost: NetworkCost::of_layers(&s),
            accuracy: None,
        };
        let (dp, dm) = r.reduction();
        assert!(dp > 0.0 && dm > 0.0);
    }

    #[test]
    fn policy_labels() {
        assert_eq!(Policy::Handcrafted.to_string(), "Handcrafted");
        assert_eq!(Policy::RlAgent.to_string(), "RL-Agent");
        assert_eq!(Policy::Automatic.to_string(), "Automatic");
    }
}
