//! Per-layer pruning-sensitivity analysis (Han et al., NeurIPS 2015).
//!
//! The classic handcrafted-pruning workflow measures, for each layer in
//! isolation, how accuracy degrades as that layer's filters are pruned —
//! the "pruning sensitivity" that the paper's `νprune` schedule adopts
//! adaptively (§III-B). This module reproduces the static analysis so the
//! two can be compared.

use alf_core::model::ConvKind;
use alf_core::train::evaluate;
use alf_core::CnnModel;
use alf_data::{Dataset, Split};
use serde::{Deserialize, Serialize};

use crate::magnitude::filter_ranking;
use crate::Result;

/// Sensitivity curve of one layer: accuracy at each probed keep-ratio.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSensitivity {
    /// Layer name.
    pub name: String,
    /// `(keep_ratio, accuracy)` points, in the probe order.
    pub points: Vec<(f32, f32)>,
}

impl LayerSensitivity {
    /// The smallest probed keep-ratio whose accuracy stays within
    /// `tolerance` of the dense accuracy (`points` with ratio 1.0 must be
    /// present) — the layer's prunability under this tolerance.
    pub fn max_safe_pruning(&self, tolerance: f32) -> Option<f32> {
        let dense = self
            .points
            .iter()
            .find(|(r, _)| *r >= 1.0)
            .map(|(_, a)| *a)?;
        self.points
            .iter()
            .filter(|(_, a)| *a >= dense - tolerance)
            .map(|(r, _)| *r)
            .fold(None, |m: Option<f32>, r| Some(m.map_or(r, |mv| mv.min(r))))
    }
}

/// Probes each conv layer of `model` in isolation: prunes it (magnitude
/// ranking, channel silencing) to every ratio in `keep_ratios` while all
/// other layers stay dense, and measures test accuracy.
///
/// # Errors
///
/// Propagates evaluation shape errors.
///
/// # Panics
///
/// Panics if any ratio is outside `(0, 1]`.
pub fn layer_sensitivity(
    model: &CnnModel,
    data: &Dataset,
    keep_ratios: &[f32],
    eval_batch: usize,
) -> Result<Vec<LayerSensitivity>> {
    assert!(
        keep_ratios.iter().all(|r| *r > 0.0 && *r <= 1.0),
        "keep ratios must lie in (0, 1]"
    );
    // Collect layer names/kinds up front.
    let mut probe = model.clone();
    let layer_info: Vec<(usize, String)> = probe
        .conv_units_mut()
        .into_iter()
        .enumerate()
        .filter(|(_, cu)| matches!(cu.conv(), ConvKind::Standard(_)))
        .map(|(i, cu)| (i, cu.name().to_string()))
        .collect();
    let mut out = Vec::with_capacity(layer_info.len());
    for (index, name) in layer_info {
        let mut points = Vec::with_capacity(keep_ratios.len());
        for &ratio in keep_ratios {
            let mut pruned = model.clone();
            {
                let mut units = pruned.conv_units_mut();
                let cu = &mut units[index];
                if let ConvKind::Standard(conv) = cu.conv() {
                    let total = conv.c_out();
                    let kept = ((total as f32 * ratio).round() as usize).clamp(1, total);
                    let ranking = filter_ranking(conv.weight());
                    let to_prune: Vec<usize> = ranking[..total - kept].to_vec();
                    cu.zero_output_channels(&to_prune);
                }
            }
            let acc = evaluate(&pruned, data, Split::Test, eval_batch)?;
            points.push((ratio, acc));
        }
        out.push(LayerSensitivity { name, points });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alf_core::models::plain20;
    use alf_data::SynthVision;

    fn data() -> Dataset {
        SynthVision::cifar_like(17)
            .with_image_size(12)
            .with_max_shift(1)
            .with_num_classes(4)
            .with_train_size(16)
            .with_test_size(24)
            .build()
            .unwrap()
    }

    #[test]
    fn full_keep_matches_dense_accuracy() {
        let data = data();
        let model = plain20(4, 4).unwrap();
        let dense = evaluate(&model, &data, Split::Test, 12).unwrap();
        let curves = layer_sensitivity(&model, &data, &[1.0], 12).unwrap();
        assert_eq!(curves.len(), 19);
        for c in &curves {
            assert_eq!(c.points, vec![(1.0, dense)], "{}", c.name);
        }
    }

    #[test]
    fn analysis_is_deterministic() {
        let data = data();
        let model = plain20(4, 4).unwrap();
        let a = layer_sensitivity(&model, &data, &[0.5, 1.0], 12).unwrap();
        let b = layer_sensitivity(&model, &data, &[0.5, 1.0], 12).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn max_safe_pruning_finds_smallest_tolerated_ratio() {
        let s = LayerSensitivity {
            name: "l".into(),
            points: vec![(0.25, 0.4), (0.5, 0.68), (0.75, 0.7), (1.0, 0.7)],
        };
        assert_eq!(s.max_safe_pruning(0.05), Some(0.5));
        assert_eq!(s.max_safe_pruning(0.5), Some(0.25));
        assert_eq!(s.max_safe_pruning(0.0), Some(0.75));
        let empty = LayerSensitivity {
            name: "e".into(),
            points: vec![(0.5, 0.5)],
        };
        assert_eq!(empty.max_safe_pruning(0.1), None); // no dense point
    }

    #[test]
    #[should_panic(expected = "keep ratios")]
    fn rejects_zero_ratio() {
        let data = data();
        let model = plain20(4, 4).unwrap();
        let _ = layer_sensitivity(&model, &data, &[0.0], 12);
    }
}
