//! Property test: any document written through [`JsonWriter`] parses back
//! to the same value through an independent recursive-descent JSON reader
//! defined in this file.
//!
//! The generator covers the full scalar surface (strings with quotes,
//! backslashes, control characters and non-ASCII; extreme integers;
//! subnormal / negative-zero / non-finite floats) and nests objects and
//! arrays to a bounded depth. The checker is deliberately strict: it
//! accepts exactly the RFC 8259 grammar, rejects trailing garbage, and
//! decodes escapes independently of [`alf_obs::json::json_escape`].

use alf_obs::json::JsonWriter;
use proptest::prelude::*;

/// Model of a JSON document: what we ask the writer to produce.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    /// A number, held as the exact token the writer must emit.
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

// ---- generator ---------------------------------------------------------

/// Splitmix64 step; the proptest stub hands us one seed per case and the
/// document is derived from it deterministically.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Random string biased toward characters that stress the escaper.
fn gen_string(state: &mut u64) -> String {
    let len = (next(state) % 12) as usize;
    let mut s = String::new();
    for _ in 0..len {
        match next(state) % 8 {
            0 => s.push('"'),
            1 => s.push('\\'),
            2 => s.push(char::from_u32((next(state) % 0x20) as u32).unwrap()),
            3 => s.push('é'),
            4 => s.push('\u{1F600}'),
            5 => s.push('\u{7f}'), // DEL: not a JSON control, passes through
            _ => s.push(char::from_u32(0x20 + (next(state) % 0x5e) as u32).unwrap()),
        }
    }
    s
}

/// Random float whose emitted token we can predict: finite values emit
/// their shortest `Display` form, non-finite emit `null`.
fn gen_f64(state: &mut u64) -> f64 {
    match next(state) % 8 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        4 => f64::MIN_POSITIVE,
        5 => f64::from_bits(next(state) % (1 << 52)), // subnormal-ish
        _ => (next(state) as f64 / u64::MAX as f64 - 0.5) * 1e6,
    }
}

fn gen_value(state: &mut u64, depth: usize) -> Value {
    let container_ok = depth < 3;
    match next(state) % if container_ok { 8 } else { 6 } {
        0 => Value::Null,
        1 => Value::Bool(next(state).is_multiple_of(2)),
        2 => {
            let v = next(state);
            Value::Num(v.to_string())
        }
        3 => {
            let v = next(state) as i64;
            Value::Num(v.to_string())
        }
        4 => {
            let v = gen_f64(state);
            if v.is_finite() {
                Value::Num(format!("{v}"))
            } else {
                Value::Null
            }
        }
        5 => Value::Str(gen_string(state)),
        6 => {
            let n = (next(state) % 4) as usize;
            Value::Arr((0..n).map(|_| gen_value(state, depth + 1)).collect())
        }
        _ => {
            let n = (next(state) % 4) as usize;
            Value::Obj(
                (0..n)
                    .map(|_| (gen_string(state), gen_value(state, depth + 1)))
                    .collect(),
            )
        }
    }
}

/// Writes the model through the API under test. Numbers are re-parsed from
/// their token so every numeric entry point (`value_u64`, `value_i64`,
/// `value_f64`) gets exercised on the tokens it produced.
fn write_value(w: &mut JsonWriter, v: &Value) {
    match v {
        Value::Null => w.value_null(),
        Value::Bool(b) => w.value_bool(*b),
        Value::Num(tok) => {
            // Integer entry points only when they reproduce the exact
            // token ("-0" must go through the float path).
            if let Ok(u) = tok.parse::<u64>().map(|u| (u, u.to_string() == *tok)) {
                if u.1 {
                    w.value_u64(u.0);
                    return;
                }
            }
            if let Ok(i) = tok.parse::<i64>().map(|i| (i, i.to_string() == *tok)) {
                if i.1 {
                    w.value_i64(i.0);
                    return;
                }
            }
            w.value_f64(tok.parse::<f64>().expect("numeric token"));
        }
        Value::Str(s) => w.value_str(s),
        Value::Arr(items) => {
            w.begin_array();
            for item in items {
                write_value(w, item);
            }
            w.end_array();
        }
        Value::Obj(fields) => {
            w.begin_object();
            for (k, item) in fields {
                w.key(k);
                write_value(w, item);
            }
            w.end_object();
        }
    }
}

// ---- recursive-descent checker -----------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null").map(|()| Value::Null),
            Some(b't') => self.eat_lit("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(format!("empty integer part at byte {start}"));
        }
        // RFC 8259: no leading zeros on a multi-digit integer part.
        if self.bytes[int_start] == b'0' && self.pos - int_start > 1 {
            return Err(format!("leading zero at byte {int_start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(format!("empty fraction at byte {frac_start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(format!("empty exponent at byte {exp_start}"));
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        Ok(Value::Num(tok.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
            let mut chars = rest.char_indices();
            let (_, c) = chars.next().ok_or("unterminated string")?;
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self.bytes.get(self.pos).copied().ok_or("dangling escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // The writer only \u-escapes C0 controls, which
                            // are never surrogate halves.
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                c if (c as u32) < 0x20 => {
                    return Err(format!("raw control {:#x} in string", c as u32));
                }
                c => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected , or ] but found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => return Err(format!("expected , or }} but found {other:?}")),
            }
        }
    }

    /// Parses one complete document and rejects trailing bytes.
    fn document(mut self) -> Result<Value, String> {
        let v = self.value()?;
        if self.pos != self.bytes.len() {
            return Err(format!(
                "trailing garbage at byte {}: {:?}",
                self.pos,
                &self.bytes[self.pos..]
            ));
        }
        Ok(v)
    }
}

// ---- properties --------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn written_documents_parse_back_identically(seed in 0u64..u64::MAX) {
        let mut state = seed;
        let model = gen_value(&mut state, 0);
        let mut w = JsonWriter::new();
        write_value(&mut w, &model);
        let text = w.finish();
        let parsed = Parser::new(&text).document();
        prop_assert_eq!(parsed.as_ref(), Ok(&model), "document: {}", text);
    }

    #[test]
    fn float_tokens_reparse_to_the_same_bits(seed in 0u64..u64::MAX) {
        let mut state = seed;
        for _ in 0..16 {
            let v = gen_f64(&mut state);
            let mut w = JsonWriter::new();
            w.value_f64(v);
            let text = w.finish();
            if v.is_finite() {
                let back: f64 = text.parse().map_err(|e| {
                    TestCaseError::fail(format!("`{text}` does not reparse: {e}"))
                })?;
                prop_assert_eq!(back.to_bits(), v.to_bits(), "token {}", text);
            } else {
                prop_assert_eq!(text.as_str(), "null");
            }
        }
    }
}
