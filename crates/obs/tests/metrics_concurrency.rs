//! Concurrency test: eight threads hammer one [`MetricsRegistry`] —
//! racing get-or-create on shared names, incrementing counters and
//! recording into a shared histogram — and the final snapshot must hold
//! the exact totals (atomics lose nothing, and re-registration hands
//! every thread the same cells).

use std::sync::Arc;

use alf_obs::metrics::{HistogramSpec, MetricsRegistry};

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 10_000;

#[test]
fn eight_threads_produce_exact_totals() {
    let registry = MetricsRegistry::new();
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = registry.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                // Every thread resolves the same names itself, so the
                // get-or-create path races for real.
                let shared = registry.counter("test.shared");
                let own = registry.counter(&format!("test.thread{t}"));
                let gauge = registry.gauge(&format!("test.gauge{t}"));
                let hist = registry.histogram("test.hist", HistogramSpec::latency_ns());
                barrier.wait();
                for i in 0..OPS_PER_THREAD {
                    shared.inc();
                    own.add(2);
                    gauge.set(i as f64);
                    // Spread records across buckets; exact placement does
                    // not matter, only that none are lost.
                    hist.record(1 + (t as u64 * OPS_PER_THREAD + i) % 1_000_000);
                }
            });
        }
    });

    let snap = registry.snapshot();
    let total = THREADS as u64 * OPS_PER_THREAD;
    assert_eq!(snap.counter("test.shared"), Some(total));
    for t in 0..THREADS {
        assert_eq!(
            snap.counter(&format!("test.thread{t}")),
            Some(2 * OPS_PER_THREAD)
        );
        assert_eq!(
            snap.gauge(&format!("test.gauge{t}")),
            Some((OPS_PER_THREAD - 1) as f64)
        );
    }
    let hist = snap.histogram("test.hist").expect("histogram registered");
    assert_eq!(hist.total, total);
    assert_eq!(hist.counts.iter().sum::<u64>(), total);
}

#[test]
fn racing_registration_returns_the_same_cells() {
    let registry = MetricsRegistry::new();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let registry = registry.clone();
            scope.spawn(move || {
                for _ in 0..1_000 {
                    registry.counter("race.counter").inc();
                    registry
                        .histogram("race.hist", HistogramSpec::latency_ns())
                        .record(42);
                }
            });
        }
    });
    let snap = registry.snapshot();
    let total = THREADS as u64 * 1_000;
    assert_eq!(snap.counter("race.counter"), Some(total));
    assert_eq!(
        snap.histogram("race.hist").expect("registered").total,
        total
    );
}
