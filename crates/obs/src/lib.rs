//! `alf-obs` — zero-dependency observability for the ALF workspace.
//!
//! This crate is the telemetry trunk the rest of the workspace hangs off:
//!
//! * [`json`] — the single JSON writer ([`json::JsonWriter`]) and string
//!   escaper ([`json::json_escape`]) for every emitter in the workspace
//!   (profiler reports, server stats, bench reports, event records).
//! * [`metrics`] — a [`MetricsRegistry`] of named atomic [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket log2 [`Histogram`]s, shareable across
//!   threads and snapshottable to JSON without stopping the world.
//! * [`events`] — a structured [`EventLog`] producing JSON-lines records
//!   through a pluggable [`TelemetrySink`] (in-memory ring for tests,
//!   buffered file for runs, null sink compiled to near-nothing).
//! * [`runtime`] — the shared `ALF_*_THREADS` worker-count parser
//!   ([`resolve_threads`]).
//! * [`crc`] — the workspace's single CRC-32 ([`crc32`]) shared by every
//!   checksummed byte format (campaign manifest, dist wire frames).
//!
//! It deliberately has **no dependencies** (std only) so that every crate
//! in the workspace — including `alf-tensor` at the bottom of the stack —
//! can depend on it without cycles.
//!
//! # Overhead discipline
//!
//! Telemetry must never perturb training. Two rules enforce that:
//!
//! 1. **Off is one branch.** A disabled [`EventLog`] answers `None` from
//!    [`EventLog::event`] before any field is formatted, and registry
//!    handles are plain relaxed atomics.
//! 2. **Collection is read-only.** Emitters observe values the
//!    computation already produced (losses, mask stats, grad norms); they
//!    never reorder or re-run arithmetic, so trained weights are bitwise
//!    identical with telemetry on or off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod events;
pub mod json;
pub mod metrics;
pub mod runtime;

pub use crc::crc32;
pub use events::{Event, EventLog, FileSink, MemoryHandle, MemorySink, NullSink, TelemetrySink};
pub use json::{json_escape, JsonWriter};
pub use metrics::{Counter, Gauge, Histogram, HistogramSpec, MetricsRegistry, MetricsSnapshot};
pub use runtime::{env_threads, resolve_threads};
