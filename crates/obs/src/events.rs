//! Structured JSONL event tracing through pluggable sinks.
//!
//! An [`EventLog`] turns telemetry points (one training step, one epoch,
//! one swap) into JSON-lines records: one JSON object per line, each
//! carrying the event kind, a monotone sequence number, the wall-time
//! delta since the log was opened, and whatever typed key/value fields the
//! emitter adds. Lines travel through a [`TelemetrySink`]:
//!
//! * [`NullSink`] — drops everything. A disabled log short-circuits
//!   *before* any formatting happens, so telemetry-off costs one branch
//!   per potential event (the same discipline as the profiler-off path in
//!   `alf-nn`).
//! * [`MemorySink`] — bounded in-memory ring, for tests and for the last-N
//!   events of a live system. Read through the [`MemoryHandle`] it hands
//!   out.
//! * [`FileSink`] — buffered appender for real runs; flushed on drop.
//!
//! The emitting pattern keeps the off-path free and the on-path
//! allocation-free in steady state (the line buffer is reused):
//!
//! ```
//! use alf_obs::events::{EventLog, MemorySink};
//!
//! let (sink, handle) = MemorySink::bounded(16);
//! let mut log = EventLog::new(Box::new(sink));
//! if let Some(mut ev) = log.event("train.step") {
//!     ev.field_u64("step", 3);
//!     ev.field_f32("loss", 1.25);
//!     ev.field_f32s("occupancy", [1.0, 0.5]);
//! } // emitted on drop
//! let lines = handle.lines();
//! assert_eq!(lines.len(), 1);
//! assert!(lines[0].starts_with("{\"event\":\"train.step\",\"seq\":0,\"t_ms\":"));
//! assert!(lines[0].ends_with("\"step\":3,\"loss\":1.25,\"occupancy\":[1,0.5]}"));
//! ```

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::JsonWriter;

/// Destination for serialised JSONL records. `line` arrives *without* a
/// trailing newline; the sink owns framing.
pub trait TelemetrySink: Send {
    /// Accepts one serialised event.
    fn write_line(&mut self, line: &str);

    /// Pushes any buffered lines to durable storage. Default: no-op.
    fn flush(&mut self) {}
}

/// Sink that drops every line.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn write_line(&mut self, _line: &str) {}
}

/// Bounded in-memory ring of recent lines, shared with [`MemoryHandle`]s.
#[derive(Debug)]
pub struct MemorySink {
    shared: Arc<Mutex<Ring>>,
}

#[derive(Debug)]
struct Ring {
    lines: VecDeque<String>,
    capacity: usize,
    /// Total lines ever written (≥ `lines.len()` once the ring wraps).
    written: u64,
}

/// Read side of a [`MemorySink`]; stays valid after the sink (inside an
/// [`EventLog`]) is dropped.
#[derive(Debug, Clone)]
pub struct MemoryHandle {
    shared: Arc<Mutex<Ring>>,
}

impl MemorySink {
    /// Creates a ring holding the most recent `capacity` lines, plus the
    /// handle to read them back.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn bounded(capacity: usize) -> (Self, MemoryHandle) {
        assert!(capacity > 0, "MemorySink capacity must be >= 1");
        let shared = Arc::new(Mutex::new(Ring {
            lines: VecDeque::with_capacity(capacity),
            capacity,
            written: 0,
        }));
        (
            Self {
                shared: Arc::clone(&shared),
            },
            MemoryHandle { shared },
        )
    }
}

impl TelemetrySink for MemorySink {
    fn write_line(&mut self, line: &str) {
        let mut ring = self.shared.lock().expect("memory sink poisoned");
        if ring.lines.len() == ring.capacity {
            ring.lines.pop_front();
        }
        ring.lines.push_back(line.to_string());
        ring.written += 1;
    }
}

impl MemoryHandle {
    /// Copy of the retained lines, oldest first.
    pub fn lines(&self) -> Vec<String> {
        self.shared
            .lock()
            .expect("memory sink poisoned")
            .lines
            .iter()
            .cloned()
            .collect()
    }

    /// Total lines ever written to the sink (including ones the ring has
    /// since evicted).
    pub fn written(&self) -> u64 {
        self.shared.lock().expect("memory sink poisoned").written
    }
}

/// Buffered JSONL file appender. Lines are newline-framed; the buffer is
/// flushed on [`TelemetrySink::flush`] and on drop.
#[derive(Debug)]
pub struct FileSink {
    writer: std::io::BufWriter<std::fs::File>,
}

impl FileSink {
    /// Creates (truncating) `path` for writing.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self {
            writer: std::io::BufWriter::new(std::fs::File::create(path)?),
        })
    }

    /// Opens `path` for appending (creating it if missing), so a resumed
    /// run extends the same JSONL stream instead of truncating it.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be opened.
    pub fn append(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self {
            writer: std::io::BufWriter::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ),
        })
    }
}

impl TelemetrySink for FileSink {
    fn write_line(&mut self, line: &str) {
        // Telemetry must never abort a training run; a full disk degrades
        // to dropped events.
        let _ = self.writer.write_all(line.as_bytes());
        let _ = self.writer.write_all(b"\n");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// A JSONL event stream over a [`TelemetrySink`].
///
/// Holders embed one `EventLog` per subsystem (trainer, server) and ask it
/// for an [`Event`] at each telemetry point; a disabled log answers `None`
/// before any field is formatted. See the module docs for the pattern.
pub struct EventLog {
    sink: Box<dyn TelemetrySink>,
    enabled: bool,
    start: Instant,
    /// Reused line buffer: steady-state emission allocates nothing.
    buf: String,
    seq: u64,
    /// Scope fields stamped into every record (after `t_ms`), in
    /// insertion order. Used by job-structured emitters (the `alf-lab`
    /// campaign runner) so each line carries its job identity without
    /// every call site repeating it.
    scope: Vec<(String, String)>,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("enabled", &self.enabled)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl Default for EventLog {
    fn default() -> Self {
        Self::disabled()
    }
}

impl EventLog {
    /// Enabled log writing into `sink`.
    pub fn new(sink: Box<dyn TelemetrySink>) -> Self {
        Self {
            sink,
            enabled: true,
            start: Instant::now(),
            buf: String::new(),
            seq: 0,
            scope: Vec::new(),
        }
    }

    /// Disabled log ([`NullSink`], `enabled = false`): every
    /// [`EventLog::event`] call returns `None` after one branch.
    pub fn disabled() -> Self {
        Self {
            sink: Box::new(NullSink),
            enabled: false,
            start: Instant::now(),
            buf: String::new(),
            seq: 0,
            scope: Vec::new(),
        }
    }

    /// Sets (or replaces) a scope field: every subsequent record carries
    /// `"key":"value"` right after its `t_ms` field. Scope keys persist
    /// until [`EventLog::clear_scope`]; re-setting a key updates it in
    /// place, preserving insertion order.
    pub fn set_scope(&mut self, key: &str, value: &str) {
        match self.scope.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => {
                v.clear();
                v.push_str(value);
            }
            None => self.scope.push((key.to_string(), value.to_string())),
        }
    }

    /// Removes one scope field (no-op when the key is not set).
    pub fn clear_scope(&mut self, key: &str) {
        self.scope.retain(|(k, _)| k != key);
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Events emitted so far.
    pub fn events_written(&self) -> u64 {
        self.seq
    }

    /// Opens an event of the given kind, or `None` when the log is
    /// disabled. The record is emitted when the returned [`Event`] drops.
    #[inline]
    pub fn event(&mut self, kind: &str) -> Option<Event<'_>> {
        if !self.enabled {
            return None;
        }
        Some(Event::open(self, kind))
    }

    /// Flushes the sink.
    pub fn flush(&mut self) {
        self.sink.flush();
    }
}

/// One in-flight JSONL record; fields are appended through the typed
/// `field_*` methods and the line is emitted when the event drops.
pub struct Event<'a> {
    log: &'a mut EventLog,
    writer: JsonWriter,
}

impl<'a> Event<'a> {
    fn open(log: &'a mut EventLog, kind: &str) -> Self {
        let mut writer = JsonWriter::reusing(std::mem::take(&mut log.buf));
        writer.begin_object();
        writer.field_str("event", kind);
        writer.field_u64("seq", log.seq);
        writer.field_f64(
            "t_ms",
            log.start.elapsed().as_secs_f64() * 1e3, // wall-time delta
        );
        for (k, v) in &log.scope {
            writer.field_str(k, v);
        }
        Self { log, writer }
    }

    /// Adds a string field (escaped).
    pub fn field_str(&mut self, key: &str, v: &str) {
        self.writer.field_str(key, v);
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.writer.field_u64(key, v);
    }

    /// Adds an `f64` field (`null` when non-finite).
    pub fn field_f64(&mut self, key: &str, v: f64) {
        self.writer.field_f64(key, v);
    }

    /// Adds an `f32` field (`null` when non-finite).
    pub fn field_f32(&mut self, key: &str, v: f32) {
        self.writer.field_f32(key, v);
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, v: bool) {
        self.writer.field_bool(key, v);
    }

    /// Adds an array-of-`f32` field (each under the NaN policy).
    pub fn field_f32s(&mut self, key: &str, vals: impl IntoIterator<Item = f32>) {
        self.writer.field_f32s(key, vals);
    }

    /// Adds an array-of-`u64` field.
    pub fn field_u64s(&mut self, key: &str, vals: impl IntoIterator<Item = u64>) {
        self.writer.field_u64s(key, vals);
    }
}

impl Drop for Event<'_> {
    fn drop(&mut self) {
        self.writer.end_object();
        let line = std::mem::take(&mut self.writer).finish();
        self.log.sink.write_line(&line);
        self.log.seq += 1;
        // Hand the allocation back for the next event.
        self.log.buf = line;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_emits_nothing() {
        let mut log = EventLog::disabled();
        assert!(!log.is_enabled());
        assert!(log.event("x").is_none());
        assert_eq!(log.events_written(), 0);
    }

    #[test]
    fn events_are_jsonl_with_seq_and_time() {
        let (sink, handle) = MemorySink::bounded(8);
        let mut log = EventLog::new(Box::new(sink));
        for i in 0..3u64 {
            let mut ev = log.event("tick").expect("enabled");
            ev.field_u64("i", i);
        }
        log.flush();
        let lines = handle.lines();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with(&format!("{{\"event\":\"tick\",\"seq\":{i},\"t_ms\":")));
            assert!(line.ends_with(&format!("\"i\":{i}}}")));
            assert!(!line.contains('\n'));
        }
        assert_eq!(log.events_written(), 3);
    }

    #[test]
    fn scope_fields_stamp_every_record_in_order() {
        let (sink, handle) = MemorySink::bounded(8);
        let mut log = EventLog::new(Box::new(sink));
        log.set_scope("campaign", "smoke");
        log.set_scope("job", "table2");
        log.event("job.start").expect("enabled").field_u64("n", 1);
        log.set_scope("job", "fig3"); // re-set updates in place
        log.event("job.start").expect("enabled").field_u64("n", 2);
        log.clear_scope("job");
        log.event("campaign.end").expect("enabled");
        let lines = handle.lines();
        assert!(lines[0].contains("\"campaign\":\"smoke\",\"job\":\"table2\",\"n\":1"));
        assert!(lines[1].contains("\"campaign\":\"smoke\",\"job\":\"fig3\",\"n\":2"));
        assert!(lines[2].contains("\"campaign\":\"smoke\"}"));
        assert!(!lines[2].contains("\"job\""));
    }

    #[test]
    fn ring_keeps_only_the_most_recent_lines() {
        let (sink, handle) = MemorySink::bounded(2);
        let mut log = EventLog::new(Box::new(sink));
        for i in 0..5u64 {
            log.event("e").expect("enabled").field_u64("i", i);
        }
        let lines = handle.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"i\":3"));
        assert!(lines[1].contains("\"i\":4"));
        assert_eq!(handle.written(), 5);
    }

    #[test]
    fn file_sink_round_trips_lines() {
        let path =
            std::env::temp_dir().join(format!("alf_obs_events_{}.jsonl", std::process::id()));
        {
            let sink = FileSink::create(&path).expect("create sink");
            let mut log = EventLog::new(Box::new(sink));
            log.event("a").expect("enabled").field_u64("v", 1);
            log.event("b").expect("enabled").field_f64("v", 0.5);
        } // drop flushes
        let body = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"a\""));
        assert!(lines[1].contains("\"v\":0.5"));
        let _ = std::fs::remove_file(&path);
    }
}
