//! The metrics registry: named counters, gauges and fixed-bucket log2
//! histograms, all atomic and shareable across threads.
//!
//! A [`MetricsRegistry`] is a cheap-to-clone handle (`Arc` inside) that
//! hands out lock-free instruments:
//!
//! * [`Counter`] — monotone `u64`, `fetch_add` on the hot path;
//! * [`Gauge`] — last-write-wins `f64` (stored as bits in an `AtomicU64`);
//! * [`Histogram`] — fixed-bucket log2 histogram of `u64` samples
//!   (latencies in nanoseconds, sizes in bytes, …). The bucket layout is
//!   decided at construction, so [`Histogram::record`] is a branch, a
//!   `log2` and two relaxed increments — no allocation, no locks.
//!
//! Registration (`counter` / `gauge` / `histogram`) takes a short mutex to
//! get-or-create the named instrument; hot paths hold the returned handle
//! and never touch the registry again. [`MetricsRegistry::snapshot`]
//! produces a point-in-time copy that serialises through the workspace
//! JSON writer.
//!
//! # Example
//!
//! ```
//! use alf_obs::metrics::{HistogramSpec, MetricsRegistry};
//!
//! let registry = MetricsRegistry::new();
//! let requests = registry.counter("serve.submitted");
//! requests.inc();
//! requests.add(2);
//! let depth = registry.gauge("serve.queue_depth");
//! depth.set(3.0);
//! let latency = registry.histogram("serve.latency_ns", HistogramSpec::latency_ns());
//! latency.record(12_000);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("serve.submitted"), Some(3));
//! assert!(snap.to_json().contains("\"serve.queue_depth\":3"));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::JsonWriter;

/// A monotone counter. Clones share the same underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge. Clones share the same underlying cell.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Bucket layout of a [`Histogram`]: `sub_buckets` buckets per octave
/// (power of two) starting above `first_bucket_max`, covering `octaves`
/// octaves, with a final catch-all bucket.
///
/// Quarter-octave resolution (`sub_buckets = 4`) bounds the relative
/// quantile error at `2^(1/4) − 1 ≈ 19%` of the reported value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSpec {
    /// Inclusive upper bound of bucket 0, in the caller's unit.
    pub first_bucket_max: u64,
    /// Buckets per octave.
    pub sub_buckets: usize,
    /// Octaves covered above bucket 0.
    pub octaves: usize,
}

impl HistogramSpec {
    /// The serving-latency layout: bucket 0 at ≤ 1 µs, quarter octaves,
    /// 30 octaves (catch-all above `1 µs · 2^30 ≈ 18 min`) — samples in
    /// nanoseconds.
    pub fn latency_ns() -> Self {
        Self {
            first_bucket_max: 1_000,
            sub_buckets: 4,
            octaves: 30,
        }
    }

    fn buckets(&self) -> usize {
        self.sub_buckets * self.octaves
    }
}

/// Fixed-bucket, log-scale histogram over `u64` samples with atomic
/// buckets (safe to record from any thread through a shared handle).
///
/// Generalised from the serving latency histogram: the unit is the
/// caller's (nanoseconds for latencies, bytes for sizes); quantiles come
/// back in the same unit as the upper bound of the containing bucket.
#[derive(Debug)]
pub struct Histogram {
    spec: HistogramSpec,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
}

impl Histogram {
    /// Empty histogram with the given bucket layout.
    pub fn new(spec: HistogramSpec) -> Self {
        let mut counts = Vec::with_capacity(spec.buckets());
        counts.resize_with(spec.buckets(), AtomicU64::default);
        Self {
            spec,
            counts,
            total: AtomicU64::new(0),
        }
    }

    /// The bucket layout.
    pub fn spec(&self) -> HistogramSpec {
        self.spec
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[self.bucket(value)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the bucket counts.
    pub fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Upper bound (in the sample unit) of the bucket containing the
    /// `q`-quantile sample; 0.0 for an empty histogram. `q` is clamped to
    /// `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                return self.upper_bound(i);
            }
        }
        self.upper_bound(self.counts.len() - 1)
    }

    fn bucket(&self, value: u64) -> usize {
        if value <= self.spec.first_bucket_max {
            return 0;
        }
        let octaves = (value as f64 / self.spec.first_bucket_max as f64).log2();
        ((octaves * self.spec.sub_buckets as f64) as usize).min(self.counts.len() - 1)
    }

    fn upper_bound(&self, bucket: usize) -> f64 {
        self.spec.first_bucket_max as f64
            * 2f64.powf((bucket + 1) as f64 / self.spec.sub_buckets as f64)
    }
}

impl Clone for Histogram {
    /// Snapshot clone: the new histogram starts from a point-in-time copy
    /// of the counts and shares nothing with the original.
    fn clone(&self) -> Self {
        let h = Histogram::new(self.spec);
        for (dst, src) in h.counts.iter().zip(&self.counts) {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        h.total.store(self.total(), Ordering::Relaxed);
        h
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec && self.total() == other.total() && self.counts() == other.counts()
    }
}

impl Eq for Histogram {}

#[derive(Debug, Default)]
struct Registered {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Arc<Histogram>)>,
}

/// A shareable registry of named instruments. Cloning the registry (or an
/// instrument handle) is cheap and refers to the same underlying cells.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Registered>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut reg = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, c)) = reg.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::default();
        reg.counters.push((name.to_string(), c.clone()));
        c
    }

    /// Gets or creates the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut reg = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, g)) = reg.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::default();
        reg.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// Gets or creates the histogram named `name`.
    ///
    /// # Panics
    ///
    /// Panics when the name exists with a different bucket layout — two
    /// subsystems disagreeing about a histogram's meaning is a bug worth
    /// failing loudly on.
    pub fn histogram(&self, name: &str, spec: HistogramSpec) -> Arc<Histogram> {
        let mut reg = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, h)) = reg.histograms.iter().find(|(n, _)| n == name) {
            assert_eq!(
                h.spec(),
                spec,
                "histogram {name:?} re-registered with a different bucket layout"
            );
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new(spec));
        reg.histograms.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// Point-in-time copy of every registered instrument, in name order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let reg = self.inner.lock().expect("metrics registry poisoned");
        let mut counters: Vec<(String, u64)> = reg
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let mut gauges: Vec<(String, f64)> = reg
            .gauges
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let mut histograms: Vec<(String, HistogramSnapshot)> = reg
            .histograms
            .iter()
            .map(|(n, h)| {
                (
                    n.clone(),
                    HistogramSnapshot {
                        total: h.total(),
                        counts: h.counts(),
                        p50: h.quantile(0.50),
                        p95: h.quantile(0.95),
                        p99: h.quantile(0.99),
                    },
                )
            })
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Point-in-time copy of one histogram, with precomputed quantile bounds
/// (in the sample unit).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub total: u64,
    /// Per-bucket counts.
    pub counts: Vec<u64>,
    /// Median upper bound.
    pub p50: f64,
    /// 95th-percentile upper bound.
    pub p95: f64,
    /// 99th-percentile upper bound.
    pub p99: f64,
}

/// Point-in-time copy of a whole [`MetricsRegistry`], name-sorted.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, f64)>,
    /// Histogram copies.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of the counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of the gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Serialises the snapshot into an open [`JsonWriter`] as three nested
    /// objects (`counters`, `gauges`, `histograms`). Histograms skip
    /// trailing empty buckets to keep the payload proportional to the data.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("counters");
        w.begin_object();
        for (name, v) in &self.counters {
            w.field_u64(name, *v);
        }
        w.end_object();
        w.key("gauges");
        w.begin_object();
        for (name, v) in &self.gauges {
            w.field_f64(name, *v);
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for (name, h) in &self.histograms {
            w.key(name);
            w.begin_object();
            w.field_u64("total", h.total);
            w.field_f64("p50", h.p50);
            w.field_f64("p95", h.p95);
            w.field_f64("p99", h.p99);
            let used = h.counts.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
            w.field_u64s("counts", h.counts[..used].iter().copied());
            w.end_object();
        }
        w.end_object();
        w.end_object();
    }

    /// The snapshot as one JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_cells_across_clones() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("x").get(), 3);
        let g = registry.gauge("y");
        registry.gauge("y").set(1.5);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new(HistogramSpec::latency_ns());
        for ms in 1..=100u64 {
            h.record(ms * 1_000_000);
        }
        let p50 = h.quantile(0.50) / 1e6;
        let p99 = h.quantile(0.99) / 1e6;
        assert!((50.0..=60.0).contains(&p50), "p50 {p50}");
        assert!((99.0..=119.0).contains(&p99), "p99 {p99}");
        assert_eq!(h.total(), 100);
    }

    #[test]
    fn histogram_extremes_stay_in_range() {
        let h = Histogram::new(HistogramSpec::latency_ns());
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.total(), 2);
        assert!(h.quantile(0.0) > 0.0);
        assert!(h.quantile(1.0).is_finite());
    }

    #[test]
    fn snapshot_lookup_and_json() {
        let registry = MetricsRegistry::new();
        registry.counter("a.count").add(7);
        registry.gauge("b.gauge").set(0.5);
        registry
            .histogram("c.hist", HistogramSpec::latency_ns())
            .record(5_000);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("a.count"), Some(7));
        assert_eq!(snap.gauge("b.gauge"), Some(0.5));
        assert_eq!(snap.histogram("c.hist").unwrap().total, 1);
        assert_eq!(snap.counter("missing"), None);
        let json = snap.to_json();
        assert!(json.contains("\"a.count\":7"));
        assert!(json.contains("\"b.gauge\":0.5"));
        assert!(json.contains("\"c.hist\":{\"total\":1"));
    }

    #[test]
    #[should_panic(expected = "different bucket layout")]
    fn histogram_relayout_is_refused() {
        let registry = MetricsRegistry::new();
        registry.histogram("h", HistogramSpec::latency_ns());
        registry.histogram(
            "h",
            HistogramSpec {
                first_bucket_max: 1,
                sub_buckets: 1,
                octaves: 8,
            },
        );
    }

    #[test]
    fn histogram_clone_is_a_snapshot() {
        let h = Histogram::new(HistogramSpec::latency_ns());
        h.record(10);
        let copy = h.clone();
        h.record(20);
        assert_eq!(copy.total(), 1);
        assert_eq!(h.total(), 2);
        assert_ne!(copy, h);
    }
}
