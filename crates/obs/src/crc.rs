//! The workspace's one CRC-32 implementation (IEEE 802.3, reflected,
//! polynomial `0xEDB8_8320`).
//!
//! Both durable byte formats that frame payloads with a checksum — the
//! `alf-lab` campaign manifest (`ALFLAB01`) and the `alf-dist` gradient
//! wire protocol (`ALFDIST1`) — call [`crc32`]. Keeping a single
//! table here (rather than a hand-rolled copy per crate) is a
//! compatibility guarantee: the two formats can never drift onto
//! different polynomials, and `scripts/verify.sh` grep-gates that this
//! stays the only definition in the workspace.
//!
//! The check value pins the exact variant: `crc32(b"123456789") ==
//! 0xCBF4_3926`.

use std::sync::OnceLock;

/// The byte-indexed lookup table for the reflected `0xEDB8_8320`
/// polynomial, built once on first use.
fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 (IEEE 802.3) of `data`: init `!0`, reflected table updates,
/// final complement.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_and_sensitivity() {
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"alf"), crc32(b"alg"));
        assert_ne!(crc32(b"\x00"), crc32(b"\x00\x00"));
    }

    #[test]
    fn table_agrees_with_bitwise_reference() {
        // The pre-table implementation this module replaced, kept as an
        // executable cross-check of the table construction.
        fn bitwise(data: &[u8]) -> u32 {
            let mut crc = !0u32;
            for &b in data {
                crc ^= u32::from(b);
                for _ in 0..8 {
                    let mask = (crc & 1).wrapping_neg();
                    crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
                }
            }
            !crc
        }
        let blob: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        assert_eq!(crc32(&blob), bitwise(&blob));
    }
}
