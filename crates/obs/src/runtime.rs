//! Runtime environment knobs shared across the workspace.
//!
//! Every threaded subsystem in this workspace exposes the same
//! three-level worker-count knob — explicit constructor argument, then a
//! positive integer in an environment variable, then host parallelism —
//! and every one of them (`ALF_GEMM_THREADS` in `alf-tensor`,
//! `ALF_EVAL_THREADS` in `alf-core`, `ALF_DP_THREADS` in `alf-dp`) is
//! purely a resource knob: all threaded paths are bitwise deterministic,
//! so a thread count never changes results. This module is the single
//! parser for that convention.

/// Parses a positive worker count from `env_var`.
///
/// Returns `None` when the variable is unset, empty, non-numeric, or
/// zero; surrounding whitespace is tolerated. This is the shared parsing
/// half of [`resolve_threads`], exposed separately for call sites (like
/// the GEMM pool in `alf-tensor`) that cache the result and apply their
/// own fallback.
pub fn env_threads(env_var: &str) -> Option<usize> {
    std::env::var(env_var)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// Resolves a worker-thread count from the standard three-level knob:
/// an explicit constructor argument wins (clamped to at least 1), then a
/// positive integer in the `env_var` environment variable, then the
/// host's available parallelism.
///
/// Used by `alf-core`'s `Evaluator` (`ALF_EVAL_THREADS`), the `alf-dp`
/// training engine (`ALF_DP_THREADS`), and — through [`env_threads`] —
/// the GEMM thread pool in `alf-tensor` (`ALF_GEMM_THREADS`).
pub fn resolve_threads(explicit: Option<usize>, env_var: &str) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Some(n) = env_threads(env_var) {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses a distinct variable name so the unsafe-free
    // read-only std::env::var path needs no set_var coordination.

    #[test]
    fn explicit_wins_and_is_clamped() {
        assert_eq!(resolve_threads(Some(3), "ALF_OBS_TEST_UNSET_A"), 3);
        assert_eq!(resolve_threads(Some(0), "ALF_OBS_TEST_UNSET_A"), 1);
    }

    #[test]
    fn unset_env_falls_back_to_host_parallelism() {
        assert!(resolve_threads(None, "ALF_OBS_TEST_UNSET_B") >= 1);
    }

    #[test]
    fn env_threads_rejects_garbage() {
        assert_eq!(env_threads("ALF_OBS_TEST_UNSET_C"), None);
        // Exercise the parse/filter pipeline directly on representative
        // raw values, mirroring the env path.
        let parse = |v: &str| v.trim().parse::<usize>().ok().filter(|&n| n >= 1);
        assert_eq!(parse(" 4 "), Some(4));
        assert_eq!(parse("0"), None);
        assert_eq!(parse(""), None);
        assert_eq!(parse("four"), None);
        assert_eq!(parse("-2"), None);
    }
}
