//! The workspace's single JSON writer.
//!
//! Every JSON emitter in the workspace — the profiler report, server
//! statistics, the bench binaries' `BENCH_*.json` files and the JSONL
//! event log — routes through [`JsonWriter`], so escaping and number
//! formatting are defined in exactly one place (`scripts/verify.sh`
//! grep-gates that [`json_escape`] stays the only escape implementation).
//!
//! Formatting policy:
//!
//! * **Strings** are escaped per RFC 8259: `"` and `\` are backslash
//!   escaped, the common control characters use their short forms
//!   (`\n`, `\r`, `\t`), all other control characters become `\u00XX`.
//!   Non-ASCII characters pass through verbatim (the output is UTF-8).
//! * **Floats** use Rust's shortest round-trip `Display` form, which is
//!   always a valid JSON number (no exponent, no trailing `.`). Non-finite
//!   values (`NaN`, `±∞`) have no JSON representation and are written as
//!   `null` — consumers must treat a null metric as "not a number" rather
//!   than drop the record.
//! * **Commas and colons** are managed by the writer; callers only state
//!   structure (`begin_object` … `key` … values … `end_object`).
//!
//! The writer is append-only and infallible: misuse (a value in an object
//! position without a [`JsonWriter::key`], mismatched `end_*`) panics in
//! debug builds via `debug_assert` and produces well-formed-but-wrong JSON
//! in release builds rather than aborting a long training run.
//!
//! # Example
//!
//! ```
//! use alf_obs::json::JsonWriter;
//!
//! let mut w = JsonWriter::new();
//! w.begin_object();
//! w.field_str("name", "conv1");
//! w.field_u64("flops", 1500);
//! w.key("per_block");
//! w.begin_array();
//! w.value_f64(0.5);
//! w.value_f64(f64::NAN); // -> null
//! w.end_array();
//! w.end_object();
//! assert_eq!(
//!     w.finish(),
//!     r#"{"name":"conv1","flops":1500,"per_block":[0.5,null]}"#
//! );
//! ```

/// Escapes `s` into `out` as the *interior* of a JSON string literal
/// (no surrounding quotes). This is the workspace's only escape
/// implementation; see the module docs for the exact policy.
pub fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xF;
                    out.push(char::from_digit(digit, 16).expect("hex digit"));
                }
            }
            c => out.push(c),
        }
    }
}

/// What the writer is currently inside of, for comma/colon management.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Frame {
    Object,
    Array,
}

/// Streaming JSON writer over an owned `String`. See the module docs for
/// the formatting policy and an example.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    stack: Vec<Frame>,
    /// Whether the current container already holds at least one item.
    needs_comma: Vec<bool>,
    /// A `key(..)` was written and its value has not arrived yet.
    pending_key: bool,
}

impl JsonWriter {
    /// Fresh writer with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer reusing `buf`'s allocation (cleared first). The event log
    /// uses this to serialise one record per step without per-step heap
    /// traffic.
    pub fn reusing(mut buf: String) -> Self {
        buf.clear();
        Self {
            out: buf,
            ..Self::default()
        }
    }

    /// The JSON produced so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the writer, returning the JSON. Debug-asserts that every
    /// opened container was closed.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed JSON container");
        debug_assert!(!self.pending_key, "key without a value");
        self.out
    }

    // ---- structure -----------------------------------------------------

    /// Opens a `{`. Valid at the root, after a `key`, or inside an array.
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.stack.push(Frame::Object);
        self.needs_comma.push(false);
    }

    /// Closes the innermost `{`.
    pub fn end_object(&mut self) {
        debug_assert_eq!(self.stack.last(), Some(&Frame::Object), "not in an object");
        debug_assert!(!self.pending_key, "key without a value");
        self.stack.pop();
        self.needs_comma.pop();
        self.out.push('}');
    }

    /// Opens a `[`. Valid at the root, after a `key`, or inside an array.
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.stack.push(Frame::Array);
        self.needs_comma.push(false);
    }

    /// Closes the innermost `[`.
    pub fn end_array(&mut self) {
        debug_assert_eq!(self.stack.last(), Some(&Frame::Array), "not in an array");
        self.stack.pop();
        self.needs_comma.pop();
        self.out.push(']');
    }

    /// Writes an object key (escaped) and its `:`; the next write supplies
    /// the value.
    pub fn key(&mut self, name: &str) {
        debug_assert_eq!(
            self.stack.last(),
            Some(&Frame::Object),
            "key outside an object"
        );
        debug_assert!(!self.pending_key, "two keys in a row");
        if let Some(nc) = self.needs_comma.last_mut() {
            if *nc {
                self.out.push(',');
            }
            *nc = true;
        }
        self.out.push('"');
        json_escape(&mut self.out, name);
        self.out.push_str("\":");
        self.pending_key = true;
    }

    // ---- scalar values -------------------------------------------------

    /// Writes a string value (escaped, quoted).
    pub fn value_str(&mut self, s: &str) {
        self.before_value();
        self.out.push('"');
        json_escape(&mut self.out, s);
        self.out.push('"');
    }

    /// Writes an unsigned integer value.
    pub fn value_u64(&mut self, v: u64) {
        self.before_value();
        self.out.push_str(itoa_buffer(v, false).as_str());
    }

    /// Writes a signed integer value.
    pub fn value_i64(&mut self, v: i64) {
        self.before_value();
        if v < 0 {
            self.out
                .push_str(itoa_buffer(v.unsigned_abs(), true).as_str());
        } else {
            self.out.push_str(itoa_buffer(v as u64, false).as_str());
        }
    }

    /// Writes an `f64` value: shortest round-trip decimal for finite
    /// values, `null` for `NaN`/`±∞` (the workspace NaN policy).
    pub fn value_f64(&mut self, v: f64) {
        self.before_value();
        if v.is_finite() {
            // Rust's float Display is the shortest decimal that parses
            // back to the same bits and never uses exponent notation, so
            // it is always a valid JSON number.
            let mut buf = String::new();
            fmt_push(&mut buf, format_args!("{v}"));
            self.out.push_str(&buf);
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes an `f32` value under the same policy as
    /// [`JsonWriter::value_f64`] (formatted at `f32` precision, so the
    /// text round-trips through `f32` exactly).
    pub fn value_f32(&mut self, v: f32) {
        self.before_value();
        if v.is_finite() {
            let mut buf = String::new();
            fmt_push(&mut buf, format_args!("{v}"));
            self.out.push_str(&buf);
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a boolean value.
    pub fn value_bool(&mut self, v: bool) {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes a `null`.
    pub fn value_null(&mut self) {
        self.before_value();
        self.out.push_str("null");
    }

    // ---- key/value conveniences ---------------------------------------

    /// `key` + [`JsonWriter::value_str`].
    pub fn field_str(&mut self, key: &str, v: &str) {
        self.key(key);
        self.value_str(v);
    }

    /// `key` + [`JsonWriter::value_u64`].
    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.key(key);
        self.value_u64(v);
    }

    /// `key` + [`JsonWriter::value_i64`].
    pub fn field_i64(&mut self, key: &str, v: i64) {
        self.key(key);
        self.value_i64(v);
    }

    /// `key` + [`JsonWriter::value_f64`].
    pub fn field_f64(&mut self, key: &str, v: f64) {
        self.key(key);
        self.value_f64(v);
    }

    /// `key` + [`JsonWriter::value_f32`].
    pub fn field_f32(&mut self, key: &str, v: f32) {
        self.key(key);
        self.value_f32(v);
    }

    /// `key` + [`JsonWriter::value_bool`].
    pub fn field_bool(&mut self, key: &str, v: bool) {
        self.key(key);
        self.value_bool(v);
    }

    /// `key` + an array of `u64`s.
    pub fn field_u64s(&mut self, key: &str, vals: impl IntoIterator<Item = u64>) {
        self.key(key);
        self.begin_array();
        for v in vals {
            self.value_u64(v);
        }
        self.end_array();
    }

    /// `key` + an array of `f64`s (each under the NaN policy).
    pub fn field_f64s(&mut self, key: &str, vals: impl IntoIterator<Item = f64>) {
        self.key(key);
        self.begin_array();
        for v in vals {
            self.value_f64(v);
        }
        self.end_array();
    }

    /// `key` + an array of `f32`s (each under the NaN policy).
    pub fn field_f32s(&mut self, key: &str, vals: impl IntoIterator<Item = f32>) {
        self.key(key);
        self.begin_array();
        for v in vals {
            self.value_f32(v);
        }
        self.end_array();
    }

    // ---- internals -----------------------------------------------------

    fn before_value(&mut self) {
        match self.stack.last() {
            Some(Frame::Object) => {
                debug_assert!(self.pending_key, "object value without a key");
                self.pending_key = false;
            }
            Some(Frame::Array) => {
                if let Some(nc) = self.needs_comma.last_mut() {
                    if *nc {
                        self.out.push(',');
                    }
                    *nc = true;
                }
            }
            None => {}
        }
    }
}

/// Formats into a stack-adjacent `String` via `fmt::Write` (infallible for
/// `String`).
fn fmt_push(buf: &mut String, args: std::fmt::Arguments<'_>) {
    use std::fmt::Write as _;
    buf.write_fmt(args).expect("String fmt is infallible");
}

/// Allocation-light integer formatting (one small String; the hot path is
/// the event log, where the buffer is reused anyway).
fn itoa_buffer(v: u64, negative: bool) -> String {
    let mut s = String::with_capacity(21);
    if negative {
        s.push('-');
    }
    fmt_push(&mut s, format_args!("{v}"));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_object_with_every_scalar() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("s", "a\"b\\c\nd");
        w.field_u64("u", u64::MAX);
        w.field_i64("i", -42);
        w.field_f64("f", 0.25);
        w.field_bool("b", true);
        w.key("n");
        w.value_null();
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"s":"a\"b\\c\nd","u":18446744073709551615,"i":-42,"f":0.25,"b":true,"n":null}"#
        );
    }

    #[test]
    fn nested_arrays_and_objects_manage_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("rows");
        w.begin_array();
        for i in 0..2u64 {
            w.begin_object();
            w.field_u64("i", i);
            w.end_object();
        }
        w.value_u64(7);
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), r#"{"rows":[{"i":0},{"i":1},7]}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.value_f64(f64::NAN);
        w.value_f64(f64::INFINITY);
        w.value_f32(f32::NEG_INFINITY);
        w.value_f64(1.5);
        w.end_array();
        assert_eq!(w.finish(), "[null,null,null,1.5]");
    }

    #[test]
    fn control_characters_use_u_escapes() {
        let mut out = String::new();
        json_escape(&mut out, "\u{1}\u{1f}\t");
        assert_eq!(out, "\\u0001\\u001f\\t");
    }

    #[test]
    fn root_scalar_is_valid() {
        let mut w = JsonWriter::new();
        w.value_str("just a string");
        assert_eq!(w.finish(), r#""just a string""#);
    }

    #[test]
    fn reusing_clears_previous_content() {
        let w = JsonWriter::reusing(String::from("garbage"));
        assert_eq!(w.as_str(), "");
    }

    #[test]
    fn float_display_round_trips() {
        for v in [0.1f64, 1e-9, 123456789.123456, f64::MIN_POSITIVE, -0.0] {
            let mut w = JsonWriter::new();
            w.value_f64(v);
            let s = w.finish();
            let back: f64 = s.parse().expect("parses back");
            assert_eq!(back.to_bits(), v.to_bits(), "{s}");
        }
    }
}
