//! Socket plumbing: connect-with-backoff, accept deadlines, and the
//! per-connection configuration every rank applies symmetrically.
//!
//! Workers usually start before the master's listener is up, so
//! [`connect_with_backoff`] retries with exponential backoff inside a
//! total budget instead of failing on the first `ECONNREFUSED`. Once a
//! stream exists, [`configure_stream`] pins `TCP_NODELAY` (frames are
//! latency-bound request/response pairs) and the read/write deadlines
//! that turn a hung peer into a typed [`DistError::RankLost`] instead
//! of a wedged process.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use crate::error::{DistError, Result};

/// Applies the collective's socket discipline: no Nagle, and
/// `read_timeout` as both the read and write deadline.
pub fn configure_stream(stream: &TcpStream, read_timeout: Duration) -> Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_write_timeout(Some(read_timeout))?;
    Ok(())
}

/// Connects to `addr`, retrying with exponential backoff (10 ms
/// doubling to 500 ms) until `budget` is exhausted.
///
/// # Errors
///
/// [`DistError::Io`] carrying the last connect failure once the budget
/// runs out.
pub fn connect_with_backoff(addr: SocketAddr, budget: Duration) -> Result<TcpStream> {
    let deadline = Instant::now() + budget;
    let mut backoff = Duration::from_millis(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() + backoff >= deadline {
                    return Err(DistError::Io(io::Error::new(
                        e.kind(),
                        format!("connect to master at {addr} failed after {budget:?}: {e}"),
                    )));
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(500));
            }
        }
    }
}

/// Accepts one connection within `budget`, polling a nonblocking
/// listener so a worker that never starts cannot wedge the master.
///
/// # Errors
///
/// [`DistError::Io`] with kind `TimedOut` when the budget expires.
pub fn accept_with_deadline(listener: &TcpListener, budget: Duration) -> Result<TcpStream> {
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + budget;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                return Ok(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(DistError::Io(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("no worker connected within {budget:?}"),
                    )));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(DistError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_backoff_times_out_with_context() {
        // A port from the ephemeral range nobody is listening on: bind
        // then drop to learn one.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let err = connect_with_backoff(addr, Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, DistError::Io(_)), "{err}");
        assert!(err.to_string().contains("connect to master"), "{err}");
    }

    #[test]
    fn accept_deadline_expires_typed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let err = accept_with_deadline(&listener, Duration::from_millis(40)).unwrap_err();
        let DistError::Io(io) = &err else {
            panic!("expected Io, got {err}");
        };
        assert_eq!(io.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn connect_succeeds_once_listener_appears() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = connect_with_backoff(addr, Duration::from_secs(2)).unwrap();
        configure_stream(&stream, Duration::from_millis(100)).unwrap();
        assert!(stream.nodelay().unwrap());
    }
}
