//! Per-rank training runtime: the loop one `alf dist-rank` process
//! runs.
//!
//! Every rank holds a full [`DpTrainer`] — model, optimizer momentum,
//! epoch/step counters — and drives it through
//! [`DpTrainer::advance_step_with`] with either the [`LocalReducer`]
//! (`world == 1`, the single-process reference) or a [`DistReducer`]
//! over sockets. Because the broadcast reduced gradient, loss fold and
//! correct count are bit-identical on every rank, all ranks replay the
//! identical optimizer and autoencoder moves and stay in bitwise
//! lockstep; rank 0 additionally writes checkpoints (atomically:
//! `tmp` + rename) so a killed collective resumes bitwise.
//!
//! [`DpTrainer::advance_step_with`]: alf_dp::DpTrainer::advance_step_with

use std::net::TcpListener;
use std::path::{Path, PathBuf};

use alf_core::{CnnModel, EpochStats};
use alf_data::Dataset;
use alf_dp::{DpConfig, DpTrainer, LocalReducer, Reducer};
use alf_obs::MetricsRegistry;

use crate::error::{DistError, Result};
use crate::reducer::{DistConfig, DistReducer};

/// Exit code of the `--die-after` fault-injection hook, distinct from
/// generic failure so the smoke test can tell a scripted death from an
/// accidental one.
pub const DIE_EXIT_CODE: i32 = 13;

/// What one rank process should run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Epochs to complete (counted from the trainer's resumed position).
    pub epochs: usize,
    /// Rank 0 writes a checkpoint every this many steps.
    pub ckpt_every: Option<u64>,
    /// Periodic checkpoint target (rank 0 only).
    pub ckpt_path: Option<PathBuf>,
    /// Final checkpoint target, written once training completes (rank 0
    /// only).
    pub out: Option<PathBuf>,
    /// Fault-injection hook: terminate this process with
    /// [`DIE_EXIT_CODE`] after completing this many steps.
    pub die_after_steps: Option<u64>,
    /// Checkpoint blob to resume from instead of fresh weights.
    pub resume: Option<Vec<u8>>,
}

impl RunOptions {
    /// Runs `epochs` epochs with no checkpointing or fault injection.
    pub fn new(epochs: usize) -> Self {
        Self {
            epochs,
            ckpt_every: None,
            ckpt_path: None,
            out: None,
            die_after_steps: None,
            resume: None,
        }
    }
}

/// What a completed rank hands back: the trainer (with its final
/// weights) and the per-epoch statistics.
#[derive(Debug)]
pub struct RankOutcome {
    /// The trainer after the run — every rank's weights are bitwise
    /// identical.
    pub trainer: DpTrainer,
    /// Statistics of the epochs completed in this run.
    pub epochs: Vec<EpochStats>,
}

/// Writes `bytes` to `path` atomically: a sibling `.tmp` file, flushed,
/// then renamed over the target so readers never observe a torn
/// checkpoint.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Runs one rank of the collective to completion.
///
/// `world == 1` short-circuits to the [`LocalReducer`] — no sockets,
/// byte-for-byte the plain `DpTrainer` path — which is what the bitwise
/// gates compare multi-rank runs against. Otherwise rank 0 binds
/// `dist.addr` and masters the collective while ranks `1..world`
/// connect as workers.
///
/// # Errors
///
/// Handshake, wire and socket failures as typed [`DistError`]s; trainer
/// shape errors as [`DistError::Train`].
pub fn run_rank(
    dist: &DistConfig,
    model: CnnModel,
    dp: DpConfig,
    data: &Dataset,
    opts: &RunOptions,
    registry: Option<&MetricsRegistry>,
) -> Result<RankOutcome> {
    let mut trainer = match &opts.resume {
        Some(blob) => DpTrainer::resume(model, dp, blob).map_err(DistError::Train)?,
        None => DpTrainer::new(model, dp).map_err(DistError::Train)?,
    };
    let mut reducer: Box<dyn Reducer> = if dist.world <= 1 {
        Box::new(LocalReducer)
    } else if dist.rank == 0 {
        let listener = TcpListener::bind(dist.addr)?;
        Box::new(DistReducer::master(
            dist.clone(),
            trainer.model(),
            &listener,
            registry,
        )?)
    } else {
        Box::new(DistReducer::worker(
            dist.clone(),
            trainer.model(),
            registry,
        )?)
    };
    let mut epochs = Vec::with_capacity(opts.epochs);
    let mut steps_done: u64 = 0;
    while epochs.len() < opts.epochs {
        let stats = trainer
            .advance_step_with(data, reducer.as_mut())
            .map_err(DistError::from_reduce)?;
        steps_done += 1;
        if let Some(s) = stats {
            epochs.push(s);
        }
        if dist.rank == 0 {
            if let (Some(every), Some(path)) = (opts.ckpt_every, &opts.ckpt_path) {
                if every > 0 && steps_done.is_multiple_of(every) {
                    write_atomic(path, &trainer.checkpoint())?;
                }
            }
        }
        if let Some(k) = opts.die_after_steps {
            if steps_done >= k {
                // Scripted fault: drop the socket mid-collective so the
                // surviving ranks observe a typed RankLost.
                eprintln!(
                    "dist-rank {}: fault injection, dying after step {steps_done}",
                    dist.rank
                );
                std::process::exit(DIE_EXIT_CODE);
            }
        }
    }
    if dist.rank == 0 {
        if let Some(out) = &opts.out {
            write_atomic(out, &trainer.checkpoint())?;
        }
    }
    Ok(RankOutcome { trainer, epochs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_without_leaving_tmp() {
        let dir = std::env::temp_dir().join(format!(
            "alf-dist-atomic-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("ckpt.bin");
        write_atomic(&target, b"one").unwrap();
        write_atomic(&target, b"two").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"two");
        assert!(!target.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
