//! Dense and sparse gradient encodings for the wire.
//!
//! A gradient travels as one tensor-segment sequence in the model's
//! flat `visit_params` order. Each segment is self-describing:
//!
//! ```text
//! segment := 0u8 | f32 value*                            (dense)
//!          | 1u8 | u32 live | u32 nruns
//!            | (u32 start, u32 len)*                     (row runs)
//!            | f32 row-payload*                          (live rows only)
//! ```
//!
//! The sparse form is keyed off each ALF block's `ActiveRows`
//! descriptor ([`alf_core::CnnModel::param_active_rows`]): the gated
//! STE zeroes pruned filter rows of the weight gradient *exactly*, so
//! eliding them is lossless — the decoder zero-fills and scatters the
//! live rows back, reproducing the dense bits. The encoder still
//! verifies the elided rows are bit-zero (falling back to dense if
//! not), so losslessness never rests on an invariant going stale.
//!
//! Per tensor, the encoder takes whichever form is smaller
//! (`density cutover`): a fully-live tensor always goes dense, and as
//! mask occupancy falls the weight segments — the bulk of the gradient
//! — shrink proportionally, which is what makes bytes-on-wire strictly
//! decrease across an occupancy sweep.

use alf_core::CnnModel;
use alf_nn::layer::Layer;
use alf_tensor::ops::ActiveRows;
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{DistError, Result};

const MODE_DENSE: u8 = 0;
const MODE_SPARSE: u8 = 1;

/// The flat gradient's tensor-segment geometry: `(rows, row_len)` per
/// parameter in `visit_params` order. Both ends derive it from their
/// (identical) model, so it never travels on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GradLayout {
    tensors: Vec<(usize, usize)>,
    total_len: usize,
}

impl GradLayout {
    /// Reads the layout off a model: each parameter contributes its
    /// leading-dimension row count and row length.
    pub fn of_model(model: &CnnModel) -> Self {
        let mut tensors = Vec::new();
        let mut total_len = 0usize;
        model.visit_params_ref(&mut |p| {
            let len = p.value.len();
            let rows = match p.value.dims().first() {
                Some(&r) if r > 0 && len % r == 0 => r,
                _ => 1,
            };
            tensors.push((rows, len / rows));
            total_len += len;
        });
        Self { tensors, total_len }
    }

    /// Total flat gradient length.
    pub fn total_len(&self) -> usize {
        self.total_len
    }

    /// Number of tensor segments.
    pub fn num_tensors(&self) -> usize {
        self.tensors.len()
    }
}

/// What one [`encode_grad`] call did, for the `dist.*` counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EncodeStats {
    /// Segments that took the sparse row form.
    pub sparse_tensors: usize,
    /// Segments that took the dense form.
    pub dense_tensors: usize,
    /// Segments whose descriptor promised zero rows that weren't
    /// bit-zero, forcing the dense fallback. Always 0 while the gated
    /// STE holds its exact-zero guarantee.
    pub fallbacks: usize,
}

/// Encodes `grad` into `out`, choosing per tensor between the dense and
/// sparse forms. `sparse[i]` is the live-row descriptor for tensor `i`
/// (`None` ⇒ dense), as produced by
/// [`alf_core::CnnModel::param_active_rows`].
///
/// # Panics
///
/// Panics when `grad` or `sparse` disagree with `layout` — those are
/// same-process programming errors, not wire conditions.
pub fn encode_grad(
    grad: &[f32],
    layout: &GradLayout,
    sparse: &[Option<ActiveRows>],
    out: &mut BytesMut,
) -> EncodeStats {
    assert_eq!(grad.len(), layout.total_len, "grad/layout length mismatch");
    assert_eq!(
        sparse.len(),
        layout.tensors.len(),
        "descriptor/layout tensor-count mismatch"
    );
    let mut stats = EncodeStats::default();
    let mut off = 0usize;
    for ((rows, row_len), desc) in layout.tensors.iter().zip(sparse) {
        let seg = &grad[off..off + rows * row_len];
        off += rows * row_len;
        let taken = desc
            .as_ref()
            .filter(|d| d.total() == *rows && !d.is_all())
            .and_then(|d| try_encode_sparse(seg, *row_len, d, out));
        match taken {
            Some(()) => stats.sparse_tensors += 1,
            None => {
                if desc
                    .as_ref()
                    .is_some_and(|d| d.total() == *rows && !d.is_all())
                {
                    // A descriptor applied but a "pruned" row carried
                    // nonzero bits — dense keeps the wire lossless.
                    stats.fallbacks += 1;
                }
                out.put_u8(MODE_DENSE);
                for &g in seg {
                    out.put_f32_le(g);
                }
                stats.dense_tensors += 1;
            }
        }
    }
    stats
}

/// Writes the sparse form of `seg` if it is both smaller than dense and
/// provably lossless (all elided rows bit-zero); otherwise writes
/// nothing and returns `None`.
fn try_encode_sparse(
    seg: &[f32],
    row_len: usize,
    desc: &ActiveRows,
    out: &mut BytesMut,
) -> Option<()> {
    let runs = desc.runs();
    let live = desc.len();
    let sparse_bytes = 1 + 8 + 8 * runs.len() + 4 * live * row_len;
    let dense_bytes = 1 + 4 * desc.total() * row_len;
    if sparse_bytes >= dense_bytes {
        return None;
    }
    // Losslessness check: every elided row must be exactly +0.0 bits.
    let mut next_live = desc.indices().iter().copied().peekable();
    for row in 0..desc.total() {
        if next_live.peek() == Some(&row) {
            next_live.next();
            continue;
        }
        let r = &seg[row * row_len..(row + 1) * row_len];
        if r.iter().any(|g| g.to_bits() != 0) {
            return None;
        }
    }
    out.put_u8(MODE_SPARSE);
    out.put_u32_le(live as u32);
    out.put_u32_le(runs.len() as u32);
    for &(start, len) in &runs {
        out.put_u32_le(start as u32);
        out.put_u32_le(len as u32);
    }
    for &row in desc.indices() {
        for &g in &seg[row * row_len..(row + 1) * row_len] {
            out.put_f32_le(g);
        }
    }
    Some(())
}

/// Decodes a gradient encoded by [`encode_grad`] back to its dense flat
/// form. Self-describing: needs only the layout, not the encoder's
/// descriptors.
///
/// # Errors
///
/// [`DistError::FrameCorrupt`] when the byte stream is truncated or the
/// sparse row structure is invalid for the layout.
pub fn decode_grad(bytes: &[u8], layout: &GradLayout) -> Result<Vec<f32>> {
    let mut buf = Bytes::copy_from_slice(bytes);
    let mut out = vec![0.0f32; layout.total_len];
    let mut off = 0usize;
    for &(rows, row_len) in &layout.tensors {
        let seg_len = rows * row_len;
        let seg = &mut out[off..off + seg_len];
        off += seg_len;
        let mode = take_u8(&mut buf)?;
        match mode {
            MODE_DENSE => {
                need(&buf, 4 * seg_len, "dense segment")?;
                for slot in seg.iter_mut() {
                    *slot = buf.get_f32_le();
                }
            }
            MODE_SPARSE => {
                need(&buf, 8, "sparse segment header")?;
                let live = buf.get_u32_le() as usize;
                let nruns = buf.get_u32_le() as usize;
                need(&buf, 8 * nruns, "sparse run table")?;
                let mut expanded = 0usize;
                let mut prev_end = 0usize;
                let mut run_list = Vec::with_capacity(nruns);
                for i in 0..nruns {
                    let start = buf.get_u32_le() as usize;
                    let len = buf.get_u32_le() as usize;
                    if len == 0 || (i > 0 && start <= prev_end) || start + len > rows {
                        return Err(DistError::FrameCorrupt {
                            detail: format!(
                                "sparse run {i} ({start},{len}) invalid for {rows} rows"
                            ),
                        });
                    }
                    // Runs must be maximal-disjoint and increasing; a
                    // run touching the previous one would be the same
                    // bytes as one merged run, so reject ambiguity.
                    prev_end = start + len;
                    expanded += len;
                    run_list.push((start, len));
                }
                if expanded != live {
                    return Err(DistError::FrameCorrupt {
                        detail: format!(
                            "sparse run table covers {expanded} rows, header says {live}"
                        ),
                    });
                }
                need(&buf, 4 * live * row_len, "sparse row payload")?;
                for (start, len) in run_list {
                    for row in start..start + len {
                        for slot in seg[row * row_len..(row + 1) * row_len].iter_mut() {
                            *slot = buf.get_f32_le();
                        }
                    }
                }
            }
            other => {
                return Err(DistError::FrameCorrupt {
                    detail: format!("unknown gradient segment mode {other}"),
                })
            }
        }
    }
    if buf.remaining() != 0 {
        return Err(DistError::FrameCorrupt {
            detail: format!("{} trailing bytes after gradient", buf.remaining()),
        });
    }
    Ok(out)
}

fn take_u8(buf: &mut Bytes) -> Result<u8> {
    need(buf, 1, "segment mode byte")?;
    Ok(buf.get_u8())
}

fn need(buf: &Bytes, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        return Err(DistError::FrameCorrupt {
            detail: format!(
                "gradient truncated: need {n} bytes for {what}, have {}",
                buf.remaining()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout_of(tensors: &[(usize, usize)]) -> GradLayout {
        GradLayout {
            tensors: tensors.to_vec(),
            total_len: tensors.iter().map(|(r, l)| r * l).sum(),
        }
    }

    #[test]
    fn dense_round_trip_is_bitwise() {
        let layout = layout_of(&[(3, 4), (1, 5)]);
        let grad: Vec<f32> = (0..17).map(|i| (i as f32 * 0.37).sin() * 1e-3).collect();
        let mut wire = BytesMut::new();
        let stats = encode_grad(&grad, &layout, &[None, None], &mut wire);
        assert_eq!(stats.dense_tensors, 2);
        assert_eq!(stats.sparse_tensors, 0);
        let back = decode_grad(&wire.freeze().to_vec(), &layout).unwrap();
        assert!(grad
            .iter()
            .zip(&back)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn sparse_round_trip_elides_zero_rows_bitwise() {
        // 8 rows of 16, rows {0,1,5} live — the rest exactly zero.
        let layout = layout_of(&[(8, 16)]);
        let mut grad = vec![0.0f32; 128];
        for &row in &[0usize, 1, 5] {
            for c in 0..16 {
                grad[row * 16 + c] = (row * 16 + c) as f32 * 0.01 - 0.3;
            }
        }
        let desc = ActiveRows::from_indices(vec![0, 1, 5], 8).unwrap();
        let mut wire = BytesMut::new();
        let stats = encode_grad(&grad, &layout, &[Some(desc)], &mut wire);
        assert_eq!(stats.sparse_tensors, 1);
        assert_eq!(stats.fallbacks, 0);
        // 1 + 8 + 2 runs * 8 + 3*16*4 = 217 < dense 513.
        let wire = wire.freeze().to_vec();
        assert_eq!(wire.len(), 217);
        let back = decode_grad(&wire, &layout).unwrap();
        assert!(grad
            .iter()
            .zip(&back)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn nonzero_pruned_row_falls_back_to_dense() {
        let layout = layout_of(&[(4, 2)]);
        let mut grad = vec![0.0f32; 8];
        grad[0] = 1.0;
        grad[7] = -0.0; // bit pattern 0x8000_0000: NOT exactly zero
        let desc = ActiveRows::from_indices(vec![0], 4).unwrap();
        let mut wire = BytesMut::new();
        let stats = encode_grad(&grad, &layout, &[Some(desc)], &mut wire);
        assert_eq!(stats.fallbacks, 1);
        assert_eq!(stats.dense_tensors, 1);
        let back = decode_grad(&wire.freeze().to_vec(), &layout).unwrap();
        assert!(grad
            .iter()
            .zip(&back)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn fully_live_descriptor_takes_the_dense_form() {
        let layout = layout_of(&[(4, 4)]);
        let grad: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut wire = BytesMut::new();
        let stats = encode_grad(&grad, &layout, &[Some(ActiveRows::full(4))], &mut wire);
        assert_eq!(stats.dense_tensors, 1);
        assert_eq!(
            stats.fallbacks, 0,
            "is_all is the dense path, not a fallback"
        );
    }

    #[test]
    fn bytes_shrink_as_occupancy_falls() {
        let layout = layout_of(&[(32, 27)]);
        let grad = vec![1.0f32; 32 * 27];
        let mut sizes = Vec::new();
        for live in [32usize, 22, 13] {
            let desc = ActiveRows::from_indices((0..live).collect(), 32).unwrap();
            let mut g = vec![0.0f32; 32 * 27];
            g[..live * 27].copy_from_slice(&grad[..live * 27]);
            let mut wire = BytesMut::new();
            encode_grad(&g, &layout, &[Some(desc)], &mut wire);
            sizes.push(wire.len());
        }
        assert!(sizes[0] > sizes[1] && sizes[1] > sizes[2], "{sizes:?}");
    }

    #[test]
    fn corrupt_streams_are_typed_errors() {
        let layout = layout_of(&[(2, 2)]);
        // Truncated dense payload.
        let err = decode_grad(&[MODE_DENSE, 0, 0], &layout).unwrap_err();
        assert!(matches!(err, DistError::FrameCorrupt { .. }), "{err}");
        // Unknown mode.
        let err = decode_grad(&[7], &layout).unwrap_err();
        assert!(matches!(err, DistError::FrameCorrupt { .. }), "{err}");
        // Sparse run past the row count.
        let mut wire = BytesMut::new();
        wire.put_u8(MODE_SPARSE);
        wire.put_u32_le(1);
        wire.put_u32_le(1);
        wire.put_u32_le(5); // start 5 of 2 rows
        wire.put_u32_le(1);
        wire.put_slice(&[0; 8]);
        let err = decode_grad(&wire.freeze().to_vec(), &layout).unwrap_err();
        assert!(matches!(err, DistError::FrameCorrupt { .. }), "{err}");
    }

    #[test]
    fn layout_reads_model_geometry() {
        let model = alf_core::models::plain20_alf(
            4,
            4,
            alf_core::block::AlfBlockConfig::paper_default(),
            3,
        )
        .unwrap();
        let layout = GradLayout::of_model(&model);
        let descs = model.param_active_rows();
        assert_eq!(layout.num_tensors(), descs.len());
        let mut expected = 0usize;
        model.visit_params_ref(&mut |p| expected += p.value.len());
        assert_eq!(layout.total_len(), expected);
    }
}
