//! Length-prefixed CRC framing over a TCP stream.
//!
//! The wire format follows the checkpoint-v2 / campaign-manifest
//! container style: each direction of a connection starts with the
//! 8-byte magic `ALFDIST1`, then carries frames of
//!
//! ```text
//! frame := u32 len | payload (len bytes) | u32 crc32(payload)
//! ```
//!
//! all little-endian, with the CRC from the workspace's shared
//! [`alf_obs::crc32`]. Framing errors are typed: a bad magic is a
//! [`DistError::ProtocolMismatch`], a CRC or length violation is a
//! [`DistError::FrameCorrupt`], and EOF / an expired read deadline is a
//! [`DistError::RankLost`] naming the peer the stream belongs to.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use alf_obs::crc32;
use alf_obs::{Counter, Histogram, HistogramSpec, MetricsRegistry};

use crate::error::{DistError, Result};

/// Connection preamble, one per stream direction.
pub const MAGIC: &[u8; 8] = b"ALFDIST1";

/// Frames larger than this are rejected as corruption, not allocated.
pub const MAX_FRAME: u32 = 256 << 20;

/// Shared handles to the `dist.*` metrics: bytes and frames in both
/// directions, gradient payload bytes, sparse-tensor counts, and the
/// reduce round-trip histogram. Registered against a caller-provided
/// [`MetricsRegistry`] (or a private one) so `alf dist` runs can expose
/// wire telemetry through the standard snapshot path.
#[derive(Debug, Clone)]
pub struct WireMetrics {
    /// Frame bytes written (length prefix + payload + CRC).
    pub bytes_tx: Counter,
    /// Frame bytes read.
    pub bytes_rx: Counter,
    /// Frames written.
    pub frames_tx: Counter,
    /// Frames read.
    pub frames_rx: Counter,
    /// Encoded gradient payload bytes shipped (subtree roots up,
    /// reduced broadcast down) — the quantity the occupancy sweep gates.
    pub grad_bytes_tx: Counter,
    /// Tensors that took the sparse row encoding.
    pub tensors_sparse: Counter,
    /// Tensors that took the dense encoding.
    pub tensors_dense: Counter,
    /// End-to-end reduce round-trip, nanoseconds.
    pub reduce_ns: Arc<Histogram>,
}

impl WireMetrics {
    /// Registers (or re-attaches to) the `dist.*` instruments in `reg`.
    pub fn register(reg: &MetricsRegistry) -> Self {
        Self {
            bytes_tx: reg.counter("dist.bytes_tx"),
            bytes_rx: reg.counter("dist.bytes_rx"),
            frames_tx: reg.counter("dist.frames_tx"),
            frames_rx: reg.counter("dist.frames_rx"),
            grad_bytes_tx: reg.counter("dist.grad_bytes_tx"),
            tensors_sparse: reg.counter("dist.tensors_sparse"),
            tensors_dense: reg.counter("dist.tensors_dense"),
            reduce_ns: reg.histogram("dist.reduce_ns", HistogramSpec::latency_ns()),
        }
    }

    /// Standalone instruments over a private registry, for callers that
    /// only want [`WireMetrics`] accessors (tests, the bench sweep).
    pub fn standalone() -> Self {
        Self::register(&MetricsRegistry::new())
    }
}

/// One framed stream to a known peer rank.
#[derive(Debug)]
pub struct FrameStream {
    stream: TcpStream,
    peer_rank: u32,
    metrics: WireMetrics,
}

impl FrameStream {
    /// Wraps a configured socket. `peer_rank` names the rank on the far
    /// end for [`DistError::RankLost`] attribution.
    pub fn new(stream: TcpStream, peer_rank: u32, metrics: WireMetrics) -> Self {
        Self {
            stream,
            peer_rank,
            metrics,
        }
    }

    /// The rank on the far end of this stream.
    pub fn peer_rank(&self) -> u32 {
        self.peer_rank
    }

    /// Re-attributes the stream once the peer's rank is learned from
    /// its `HELLO` (accept order is arbitrary, so the master wraps the
    /// socket before it knows who connected).
    pub fn set_peer_rank(&mut self, rank: u32) {
        self.peer_rank = rank;
    }

    /// Writes this direction's `ALFDIST1` preamble.
    pub fn send_magic(&mut self) -> Result<()> {
        self.stream.write_all(MAGIC).map_err(|e| self.lost(&e))?;
        self.metrics.bytes_tx.add(MAGIC.len() as u64);
        Ok(())
    }

    /// Reads and validates the peer's preamble.
    pub fn expect_magic(&mut self) -> Result<()> {
        let mut got = [0u8; 8];
        self.stream
            .read_exact(&mut got)
            .map_err(|e| self.lost(&e))?;
        self.metrics.bytes_rx.add(got.len() as u64);
        if &got != MAGIC {
            return Err(DistError::ProtocolMismatch {
                detail: format!(
                    "bad connection magic {:02x?} from rank {} (expected ALFDIST1)",
                    got, self.peer_rank
                ),
            });
        }
        Ok(())
    }

    /// Writes one `len | payload | crc` frame.
    pub fn write_frame(&mut self, payload: &[u8]) -> Result<()> {
        let len = u32::try_from(payload.len()).map_err(|_| DistError::FrameCorrupt {
            detail: format!("frame payload of {} bytes exceeds u32", payload.len()),
        })?;
        if len > MAX_FRAME {
            return Err(DistError::FrameCorrupt {
                detail: format!("frame payload of {len} bytes exceeds cap {MAX_FRAME}"),
            });
        }
        let mut wire = Vec::with_capacity(payload.len() + 8);
        wire.extend_from_slice(&len.to_le_bytes());
        wire.extend_from_slice(payload);
        wire.extend_from_slice(&crc32(payload).to_le_bytes());
        self.stream.write_all(&wire).map_err(|e| self.lost(&e))?;
        self.metrics.bytes_tx.add(wire.len() as u64);
        self.metrics.frames_tx.inc();
        Ok(())
    }

    /// Reads one frame, validating length and CRC, honouring the
    /// socket's read deadline.
    pub fn read_frame(&mut self) -> Result<Vec<u8>> {
        let mut raw_len = [0u8; 4];
        self.stream
            .read_exact(&mut raw_len)
            .map_err(|e| self.lost(&e))?;
        let len = u32::from_le_bytes(raw_len);
        if len > MAX_FRAME {
            return Err(DistError::FrameCorrupt {
                detail: format!("frame length {len} exceeds cap {MAX_FRAME}"),
            });
        }
        let mut payload = vec![0u8; len as usize];
        self.stream
            .read_exact(&mut payload)
            .map_err(|e| self.lost(&e))?;
        let mut raw_crc = [0u8; 4];
        self.stream
            .read_exact(&mut raw_crc)
            .map_err(|e| self.lost(&e))?;
        let want = u32::from_le_bytes(raw_crc);
        let got = crc32(&payload);
        if want != got {
            return Err(DistError::FrameCorrupt {
                detail: format!(
                    "frame CRC mismatch from rank {}: stored {want:#010x}, computed {got:#010x}",
                    self.peer_rank
                ),
            });
        }
        self.metrics.bytes_rx.add(u64::from(len) + 8);
        self.metrics.frames_rx.inc();
        Ok(payload)
    }

    /// Maps a socket-level failure to the typed loss of this peer.
    /// EOF, an expired deadline (`WouldBlock`/`TimedOut`) and any other
    /// mid-frame I/O failure all mean the same thing at the collective
    /// level: this rank can no longer be reduced with.
    fn lost(&self, e: &std::io::Error) -> DistError {
        DistError::RankLost {
            rank: self.peer_rank,
            detail: e.to_string(),
        }
    }
}
