//! Typed failures of the distributed collective.
//!
//! Every way the socket collective can fail maps to one variant, so the
//! rank runtime (and `scripts/verify.sh`) can distinguish "a peer died"
//! from "the wire is corrupt" from "these processes disagree about the
//! run" without parsing strings. A killed worker surfaces as
//! [`DistError::RankLost`] on the master, which relays a
//! [`DistError::Fault`] to the surviving workers before exiting — every
//! rank fails loudly, and the run resumes from the last checkpoint.

use std::fmt;
use std::io;

use alf_tensor::ShapeError;

/// Any failure of the distributed training collective.
#[derive(Debug)]
#[non_exhaustive]
pub enum DistError {
    /// A peer rank disappeared: its socket hit EOF, a read deadline
    /// expired, or a write failed mid-frame.
    RankLost {
        /// The rank that was lost (as this side knows it).
        rank: u32,
        /// What the socket reported.
        detail: String,
    },
    /// The peers disagree about the run: wrong magic, protocol version,
    /// world size, model fingerprint, or a reduction-plan desync
    /// (unexpected message, wrong step coordinates, wrong subtree roots).
    ProtocolMismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// A frame failed its CRC-32 or structural validation — bytes
    /// arrived, but not the bytes that were sent.
    FrameCorrupt {
        /// What failed to validate.
        detail: String,
    },
    /// The master reported a failure elsewhere in the collective; this
    /// rank is intact but the step cannot complete.
    Fault {
        /// The master's description of the root cause.
        detail: String,
    },
    /// Local training arithmetic failed (the `DpTrainer` contract).
    Train(ShapeError),
    /// Plain I/O around the collective: bind/connect/spawn failures.
    Io(io::Error),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::RankLost { rank, detail } => {
                write!(f, "RankLost: rank {rank} ({detail})")
            }
            DistError::ProtocolMismatch { detail } => {
                write!(f, "ProtocolMismatch: {detail}")
            }
            DistError::FrameCorrupt { detail } => write!(f, "FrameCorrupt: {detail}"),
            DistError::Fault { detail } => write!(f, "Fault relayed by master: {detail}"),
            DistError::Train(e) => e.fmt(f),
            DistError::Io(e) => write!(f, "dist i/o: {e}"),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Train(e) => Some(e),
            DistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DistError {
    fn from(e: io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<ShapeError> for DistError {
    fn from(e: ShapeError) -> Self {
        DistError::Train(e)
    }
}

impl From<DistError> for alf_dp::ReduceError {
    /// Crosses the `Reducer` seam: `alf-dp` cannot name this crate, so
    /// the typed error travels boxed and is recovered with
    /// [`DistError::from_reduce`].
    fn from(e: DistError) -> Self {
        alf_dp::ReduceError::Transport(Box::new(e))
    }
}

impl DistError {
    /// Recovers the typed error from the `Reducer` seam: a boxed
    /// [`DistError`] comes back intact, anything else maps to its
    /// closest variant.
    pub fn from_reduce(e: alf_dp::ReduceError) -> Self {
        match e {
            alf_dp::ReduceError::Shape(s) => DistError::Train(s),
            alf_dp::ReduceError::Transport(b) => match b.downcast::<DistError>() {
                Ok(d) => *d,
                Err(other) => DistError::ProtocolMismatch {
                    detail: other.to_string(),
                },
            },
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DistError>;
