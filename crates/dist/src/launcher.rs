//! Local multi-process launcher: resolve one address, fan out rank
//! processes, join their exit codes.
//!
//! The `alf dist` subcommand uses this to run rank 0 in-process (so the
//! master's progress output and exit code surface directly) while ranks
//! `1..world` run as `alf dist-rank` children of the same executable.
//! Any child left unjoined when the [`Launcher`] drops is killed, so an
//! error on the master path cannot leak orphan rank processes.

use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command};

use crate::error::{DistError, Result};

/// Picks a free loopback address by binding port 0 and dropping the
/// listener. The port is then passed to every rank, which re-binds
/// (master) or connects with backoff (workers) — the tiny window in
/// which another process could steal it is acceptable for a local
/// launcher.
pub fn ephemeral_addr() -> Result<SocketAddr> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    Ok(listener.local_addr()?)
}

/// Child rank processes, joined as a unit.
#[derive(Debug, Default)]
pub struct Launcher {
    children: Vec<(usize, Child)>,
}

/// Exit status of one joined rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankExit {
    /// The rank the process ran.
    pub rank: usize,
    /// Its exit code; `None` when killed by a signal.
    pub code: Option<i32>,
}

impl RankExit {
    /// Whether the rank exited cleanly.
    pub fn ok(&self) -> bool {
        self.code == Some(0)
    }
}

impl Launcher {
    /// An empty launcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spawns `cmd` as the process for `rank` and tracks it for join.
    ///
    /// # Errors
    ///
    /// [`DistError::Io`] when the spawn itself fails.
    pub fn spawn_rank(&mut self, rank: usize, cmd: &mut Command) -> Result<()> {
        let child = cmd.spawn().map_err(|e| {
            DistError::Io(std::io::Error::new(
                e.kind(),
                format!("failed to spawn rank {rank}: {e}"),
            ))
        })?;
        self.children.push((rank, child));
        Ok(())
    }

    /// Waits for every spawned rank, in spawn order, returning each exit
    /// status. Waiting never short-circuits: even when an early rank
    /// fails, the rest are joined so the caller sees the full picture
    /// (and no zombies remain).
    ///
    /// # Errors
    ///
    /// [`DistError::Io`] when a wait fails at the OS level.
    pub fn join(mut self) -> Result<Vec<RankExit>> {
        let mut exits = Vec::with_capacity(self.children.len());
        for (rank, mut child) in self.children.drain(..) {
            let status = child.wait()?;
            exits.push(RankExit {
                rank,
                code: status.code(),
            });
        }
        Ok(exits)
    }
}

impl Drop for Launcher {
    fn drop(&mut self) {
        for (_, child) in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Folds joined exits into a single verdict: `Ok` when every rank
/// exited 0, else a typed [`DistError::RankLost`] naming the first
/// failed rank.
pub fn check_exits(exits: &[RankExit]) -> Result<()> {
    for e in exits {
        if !e.ok() {
            return Err(DistError::RankLost {
                rank: e.rank as u32,
                detail: match e.code {
                    Some(c) => format!("rank process exited with code {c}"),
                    None => "rank process killed by signal".to_string(),
                },
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ephemeral_addr_is_loopback_nonzero_port() {
        let addr = ephemeral_addr().unwrap();
        assert!(addr.ip().is_loopback());
        assert_ne!(addr.port(), 0);
    }

    #[test]
    fn join_reports_exit_codes_in_spawn_order() {
        let mut launcher = Launcher::new();
        launcher
            .spawn_rank(1, Command::new("true").arg("--"))
            .unwrap();
        launcher
            .spawn_rank(2, Command::new("false").arg("--"))
            .unwrap();
        let exits = launcher.join().unwrap();
        assert_eq!(exits.len(), 2);
        assert_eq!(
            exits[0],
            RankExit {
                rank: 1,
                code: Some(0)
            }
        );
        assert_eq!(exits[1].rank, 2);
        assert!(!exits[1].ok());
        let err = check_exits(&exits).unwrap_err();
        assert!(matches!(err, DistError::RankLost { rank: 2, .. }), "{err}");
        assert!(check_exits(&exits[..1]).is_ok());
    }
}
