//! `alf-dist`: multi-process data-parallel training over TCP sockets,
//! bitwise-identical to the single-process [`alf_dp::DpTrainer`].
//!
//! # Design
//!
//! A collective of `world` rank processes trains one model. Every rank
//! holds a **full replica** of the trainer state; only per-sample
//! gradients cross the wire. Each step:
//!
//! 1. Every rank computes gradient leaves for its contiguous batch
//!    shard (`shard_range`), exactly as one `DpTrainer` worker would.
//! 2. Each rank executes the adds of the global stride-doubling tree
//!    ([`alf_dp::allreduce`]) whose operand span fits inside its shard,
//!    and ships the surviving subtree roots to rank 0.
//! 3. Rank 0 executes the boundary-crossing adds in global stride
//!    order and broadcasts the reduced gradient (plus the slot-order
//!    `f64` loss fold as raw bits and the correct count) to all ranks.
//! 4. Every rank replays the identical batch-mean scale, clip, SGD step
//!    and autoencoder move — so all replicas stay in bitwise lockstep.
//!
//! The same floating-point adds happen on the same operand bits in the
//! same dependency order as `tree_reduce_into_first`, so results are
//! **bitwise identical to a single process at any rank count** — gated
//! by `tests/dist.rs` and `train_bench`'s dist section.
//!
//! # Wire format
//!
//! Connections speak the [`frame`] protocol: an `ALFDIST1` preamble per
//! direction, then `u32 len | payload | u32 crc32` frames (the CRC is
//! the workspace-shared [`alf_obs::crc32`]) carrying [`protocol`]
//! messages. Gradients use the [`codec`] sparse/dense per-tensor
//! cutover: when the gated STE zeroes pruned channels' rows, the sparse
//! run-length row encoding (keyed off
//! [`alf_core::CnnModel::param_active_rows`]) elides them losslessly,
//! so bytes-on-wire shrink as mask occupancy falls.
//!
//! Failures are typed [`DistError`]s: a dead or hung peer is
//! [`DistError::RankLost`], a version/architecture mismatch is
//! [`DistError::ProtocolMismatch`], a CRC or length violation is
//! [`DistError::FrameCorrupt`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod frame;
pub mod launcher;
pub mod net;
pub mod protocol;
pub mod reducer;
pub mod runtime;

pub use codec::{decode_grad, encode_grad, EncodeStats, GradLayout};
pub use error::{DistError, Result};
pub use frame::{FrameStream, WireMetrics, MAGIC, MAX_FRAME};
pub use launcher::{check_exits, ephemeral_addr, Launcher, RankExit};
pub use protocol::{model_fingerprint, Message, PROTOCOL_VERSION};
pub use reducer::{DistConfig, DistReducer};
pub use runtime::{run_rank, write_atomic, RankOutcome, RunOptions, DIE_EXIT_CODE};
