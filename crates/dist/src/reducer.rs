//! The socket-backed [`Reducer`]: rank-0 master, N−1 workers, one
//! bitwise-identical tree.
//!
//! Each rank owns the contiguous batch shard `shard_range(b, rank,
//! world)` and executes exactly the adds of the global stride-doubling
//! tree whose operand span fits its shard
//! ([`alf_dp::allreduce::local_adds`]). Workers ship the surviving
//! subtree roots to the master, which executes the remaining
//! boundary-crossing adds in global stride order
//! ([`alf_dp::allreduce::cross_adds`]) and broadcasts the reduced
//! gradient (plus the slot-order loss fold, as `f64` bits) back. Every
//! add of `tree_reduce_into_first` thus happens exactly once, on
//! identical operand bits, in a dependency-respecting order — so any
//! rank count reproduces the single-process `DpTrainer` bitwise, which
//! `tests/dist.rs` and the `train_bench` dist section gate.
//!
//! Only gradients cross the wire: every rank replays the identical
//! batch-mean scale, clip, optimizer step and autoencoder move from the
//! broadcast, keeping full trainer state in lockstep.

use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use alf_core::CnnModel;
use alf_data::plan::shard_range;
use alf_dp::allreduce::{cross_adds, local_adds, local_roots};
use alf_dp::{ReduceError, ReducedStep, Reducer, StepContext};
use alf_obs::MetricsRegistry;
use alf_tensor::ops::ActiveRows;
use bytes::BytesMut;

use crate::codec::{decode_grad, encode_grad, GradLayout};
use crate::error::{DistError, Result};
use crate::frame::{FrameStream, WireMetrics};
use crate::net::{accept_with_deadline, configure_stream, connect_with_backoff};
use crate::protocol::PROTOCOL_VERSION;
use crate::protocol::{model_fingerprint, Hello, Message, Partials, Reduced, Welcome};

/// Shape of one collective: who this process is and how patient its
/// sockets are.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Total rank count (rank 0 is the master).
    pub world: usize,
    /// This process's rank, `0..world`.
    pub rank: usize,
    /// The master's listen/connect address.
    pub addr: std::net::SocketAddr,
    /// Per-frame read (and write) deadline; an expired deadline is a
    /// typed [`DistError::RankLost`].
    pub read_timeout: Duration,
    /// Total budget for the connect/accept handshake, covering worker
    /// process startup skew (connect retries with backoff inside it).
    pub connect_timeout: Duration,
}

impl DistConfig {
    /// Configuration with default deadlines (60 s frame reads, 30 s
    /// handshake).
    pub fn new(world: usize, rank: usize, addr: std::net::SocketAddr) -> Self {
        Self {
            world,
            rank,
            addr,
            read_timeout: Duration::from_secs(60),
            connect_timeout: Duration::from_secs(30),
        }
    }
}

enum Role {
    /// Rank 0: holds one framed stream per worker, indexed `rank - 1`.
    Master { conns: Vec<FrameStream> },
    /// Ranks 1..world: one framed stream to the master.
    Worker { conn: FrameStream },
}

/// Socket-backed gradient reduction for [`alf_dp::DpTrainer`], plugged
/// in through [`DpTrainer::advance_step_with`].
///
/// [`DpTrainer::advance_step_with`]: alf_dp::DpTrainer::advance_step_with
pub struct DistReducer {
    cfg: DistConfig,
    role: Role,
    layout: GradLayout,
    metrics: WireMetrics,
}

impl DistReducer {
    /// Rank-0 constructor: accepts and handshakes `world - 1` workers
    /// on `listener` (bound by the caller, so tests can use an
    /// ephemeral port). Registers `dist.*` metrics in `registry` when
    /// given.
    ///
    /// # Errors
    ///
    /// Accept timeouts, and any handshake violation as a typed
    /// [`DistError::ProtocolMismatch`].
    pub fn master(
        cfg: DistConfig,
        model: &CnnModel,
        listener: &TcpListener,
        registry: Option<&MetricsRegistry>,
    ) -> Result<Self> {
        assert_eq!(cfg.rank, 0, "master must be rank 0");
        let metrics = match registry {
            Some(reg) => WireMetrics::register(reg),
            None => WireMetrics::standalone(),
        };
        let fingerprint = model_fingerprint(model, cfg.world as u32);
        let mut pending: Vec<Option<FrameStream>> = (1..cfg.world).map(|_| None).collect();
        for _ in 1..cfg.world {
            let stream = accept_with_deadline(listener, cfg.connect_timeout)?;
            configure_stream(&stream, cfg.read_timeout)?;
            let mut conn = FrameStream::new(stream, u32::MAX, metrics.clone());
            conn.expect_magic()?;
            let hello = match Message::decode(&conn.read_frame()?)? {
                Message::Hello(h) => h,
                other => {
                    return Err(DistError::ProtocolMismatch {
                        detail: format!("expected HELLO, got {}", other.kind()),
                    })
                }
            };
            if hello.version != PROTOCOL_VERSION {
                return Err(DistError::ProtocolMismatch {
                    detail: format!(
                        "protocol version {} from rank {}, master speaks {PROTOCOL_VERSION}",
                        hello.version, hello.rank
                    ),
                });
            }
            if hello.world != cfg.world as u32 || hello.fingerprint != fingerprint {
                return Err(DistError::ProtocolMismatch {
                    detail: format!(
                        "rank {} joined a different run (world {} fp {:#018x}, master world {} fp {:#018x})",
                        hello.rank, hello.world, hello.fingerprint, cfg.world, fingerprint
                    ),
                });
            }
            let slot = (hello.rank as usize)
                .checked_sub(1)
                .filter(|s| *s < pending.len())
                .ok_or_else(|| DistError::ProtocolMismatch {
                    detail: format!("rank {} outside 1..{}", hello.rank, cfg.world),
                })?;
            if pending[slot].is_some() {
                return Err(DistError::ProtocolMismatch {
                    detail: format!("rank {} connected twice", hello.rank),
                });
            }
            conn.set_peer_rank(hello.rank);
            conn.send_magic()?;
            conn.write_frame(
                &Message::Welcome(Welcome {
                    version: PROTOCOL_VERSION,
                    world: cfg.world as u32,
                    fingerprint,
                })
                .encode(),
            )?;
            pending[slot] = Some(conn);
        }
        let conns = pending.into_iter().flatten().collect();
        Ok(Self {
            layout: GradLayout::of_model(model),
            cfg,
            role: Role::Master { conns },
            metrics,
        })
    }

    /// Worker constructor: connects to the master with retry/backoff
    /// and completes the `HELLO`/`WELCOME` handshake.
    ///
    /// # Errors
    ///
    /// Connect failures after the backoff budget, and handshake
    /// violations as typed [`DistError::ProtocolMismatch`].
    pub fn worker(
        cfg: DistConfig,
        model: &CnnModel,
        registry: Option<&MetricsRegistry>,
    ) -> Result<Self> {
        assert!(
            cfg.rank >= 1 && cfg.rank < cfg.world,
            "worker rank must be 1..world"
        );
        let metrics = match registry {
            Some(reg) => WireMetrics::register(reg),
            None => WireMetrics::standalone(),
        };
        let fingerprint = model_fingerprint(model, cfg.world as u32);
        let stream: TcpStream = connect_with_backoff(cfg.addr, cfg.connect_timeout)?;
        configure_stream(&stream, cfg.read_timeout)?;
        let mut conn = FrameStream::new(stream, 0, metrics.clone());
        conn.send_magic()?;
        conn.write_frame(
            &Message::Hello(Hello {
                version: PROTOCOL_VERSION,
                world: cfg.world as u32,
                rank: cfg.rank as u32,
                fingerprint,
            })
            .encode(),
        )?;
        conn.expect_magic()?;
        let welcome = match Message::decode(&conn.read_frame()?)? {
            Message::Welcome(w) => w,
            Message::Fault(f) => return Err(DistError::Fault { detail: f.detail }),
            other => {
                return Err(DistError::ProtocolMismatch {
                    detail: format!("expected WELCOME, got {}", other.kind()),
                })
            }
        };
        if welcome.version != PROTOCOL_VERSION
            || welcome.world != cfg.world as u32
            || welcome.fingerprint != fingerprint
        {
            return Err(DistError::ProtocolMismatch {
                detail: format!(
                    "master runs a different collective (version {} world {} fp {:#018x})",
                    welcome.version, welcome.world, welcome.fingerprint
                ),
            });
        }
        Ok(Self {
            layout: GradLayout::of_model(model),
            cfg,
            role: Role::Worker { conn },
            metrics,
        })
    }

    /// Total rank count.
    pub fn world(&self) -> usize {
        self.cfg.world
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.cfg.rank
    }

    /// Live handles to the `dist.*` wire instruments.
    pub fn metrics(&self) -> &WireMetrics {
        &self.metrics
    }

    /// Encodes one flat gradient vector with the sparse/dense cutover,
    /// bumping the wire counters.
    fn encode(&self, grad: &[f32], sparse: &[Option<ActiveRows>]) -> Vec<u8> {
        let mut out = BytesMut::new();
        let stats = encode_grad(grad, &self.layout, sparse, &mut out);
        self.metrics.tensors_sparse.add(stats.sparse_tensors as u64);
        self.metrics.tensors_dense.add(stats.dense_tensors as u64);
        let bytes = out.freeze().to_vec();
        self.metrics.grad_bytes_tx.add(bytes.len() as u64);
        bytes
    }

    fn reduce_impl(
        &mut self,
        leaves: &mut [Vec<f32>],
        losses: &[f32],
        corrects: &[u8],
        ctx: &StepContext<'_>,
    ) -> Result<ReducedStep> {
        let b = ctx.batch;
        let world = self.cfg.world;
        let shard = shard_range(b, self.cfg.rank, world);
        if leaves.len() != shard.len() {
            return Err(DistError::Train(alf_tensor::ShapeError::new(
                "dist_reduce",
                format!("{} leaves for a shard of {}", leaves.len(), shard.len()),
            )));
        }
        // Execute this rank's span-contained slice of the global tree.
        for (dst, src) in local_adds(b, &shard) {
            let (d, s) = (dst - shard.start, src - shard.start);
            let (head, tail) = leaves.split_at_mut(s);
            for (a, v) in head[d].iter_mut().zip(tail[0].iter()) {
                *a += *v;
            }
        }
        let roots = local_roots(b, &shard);
        let sparse = ctx.model.param_active_rows();
        let own_correct: u32 = corrects.iter().map(|&c| u32::from(c)).sum();
        match &mut self.role {
            Role::Worker { .. } => {
                let mut encoded_roots = Vec::with_capacity(roots.len());
                for &r in &roots {
                    encoded_roots.push((r as u32, self.encode(&leaves[r - shard.start], &sparse)));
                }
                let Role::Worker { conn } = &mut self.role else {
                    unreachable!("role checked above")
                };
                conn.write_frame(
                    &Message::Partials(Partials {
                        epoch: ctx.epoch,
                        step: ctx.step,
                        roots: encoded_roots,
                        losses: losses.to_vec(),
                        correct: own_correct,
                    })
                    .encode(),
                )?;
                let reduced = match Message::decode(&conn.read_frame()?)? {
                    Message::Reduced(r) => r,
                    Message::Fault(f) => return Err(DistError::Fault { detail: f.detail }),
                    other => {
                        return Err(DistError::ProtocolMismatch {
                            detail: format!("expected REDUCED, got {}", other.kind()),
                        })
                    }
                };
                if reduced.epoch != ctx.epoch || reduced.step != ctx.step {
                    return Err(DistError::ProtocolMismatch {
                        detail: format!(
                            "REDUCED for ({}, {}), this rank is at ({}, {})",
                            reduced.epoch, reduced.step, ctx.epoch, ctx.step
                        ),
                    });
                }
                let grad = decode_grad(&reduced.grad, &self.layout)?;
                Ok(ReducedStep {
                    grad,
                    loss_sum: f64::from_bits(reduced.loss_sum_bits),
                    correct: reduced.correct as usize,
                })
            }
            Role::Master { .. } => {
                // Park this rank's roots, then fill in every peer's.
                let mut slots: Vec<Option<Vec<f32>>> = vec![None; b];
                for &r in &roots {
                    slots[r] = Some(std::mem::take(&mut leaves[r - shard.start]));
                }
                let mut rank_losses: Vec<Vec<f32>> = Vec::with_capacity(world);
                rank_losses.push(losses.to_vec());
                let mut correct_total = own_correct as u64;
                let Role::Master { conns } = &mut self.role else {
                    unreachable!("role checked above")
                };
                for conn in conns.iter_mut() {
                    let peer = conn.peer_rank() as usize;
                    let partials = match Message::decode(&conn.read_frame()?)? {
                        Message::Partials(p) => p,
                        other => {
                            return Err(DistError::ProtocolMismatch {
                                detail: format!(
                                    "expected PARTIALS from rank {peer}, got {}",
                                    other.kind()
                                ),
                            })
                        }
                    };
                    if partials.epoch != ctx.epoch || partials.step != ctx.step {
                        return Err(DistError::ProtocolMismatch {
                            detail: format!(
                                "rank {peer} is at step ({}, {}), master at ({}, {})",
                                partials.epoch, partials.step, ctx.epoch, ctx.step
                            ),
                        });
                    }
                    let peer_shard = shard_range(b, peer, world);
                    let expected_roots = local_roots(b, &peer_shard);
                    let got: Vec<usize> = partials.roots.iter().map(|(i, _)| *i as usize).collect();
                    if got != expected_roots {
                        return Err(DistError::ProtocolMismatch {
                            detail: format!(
                                "rank {peer} shipped roots {got:?}, plan expects {expected_roots:?}"
                            ),
                        });
                    }
                    if partials.losses.len() != peer_shard.len() {
                        return Err(DistError::ProtocolMismatch {
                            detail: format!(
                                "rank {peer} shipped {} losses for a shard of {}",
                                partials.losses.len(),
                                peer_shard.len()
                            ),
                        });
                    }
                    for (idx, bytes) in &partials.roots {
                        slots[*idx as usize] = Some(decode_grad(bytes, &self.layout)?);
                    }
                    rank_losses.push(partials.losses);
                    correct_total += u64::from(partials.correct);
                }
                // Finish the tree: the boundary-crossing adds, in the
                // global stride order.
                for (dst, src) in cross_adds(b, world) {
                    let s = slots[src].take().ok_or_else(|| plan_desync(src))?;
                    let d = slots[dst].as_mut().ok_or_else(|| plan_desync(dst))?;
                    for (a, v) in d.iter_mut().zip(s.iter()) {
                        *a += *v;
                    }
                }
                let grad = slots[0].take().ok_or_else(|| plan_desync(0))?;
                // Slot-order loss fold: contiguous ascending shards make
                // rank order the batch-slot order.
                let mut loss_sum = 0.0f64;
                for rl in &rank_losses {
                    for &l in rl {
                        loss_sum += f64::from(l);
                    }
                }
                let encoded = self.encode(&grad, &sparse);
                let reply = Message::Reduced(Reduced {
                    epoch: ctx.epoch,
                    step: ctx.step,
                    grad: encoded,
                    loss_sum_bits: loss_sum.to_bits(),
                    correct: correct_total,
                })
                .encode();
                let Role::Master { conns } = &mut self.role else {
                    unreachable!("role checked above")
                };
                for conn in conns.iter_mut() {
                    conn.write_frame(&reply)?;
                }
                Ok(ReducedStep {
                    grad,
                    loss_sum,
                    correct: correct_total as usize,
                })
            }
        }
    }

    /// Best-effort relay of a master-side failure so surviving workers
    /// fail with the root cause instead of a bare deadline.
    fn broadcast_fault(&mut self, detail: &str) {
        if let Role::Master { conns } = &mut self.role {
            let frame = Message::Fault(crate::protocol::Fault {
                detail: detail.to_string(),
            })
            .encode();
            for conn in conns.iter_mut() {
                let _ = conn.write_frame(&frame);
            }
        }
    }
}

fn plan_desync(slot: usize) -> DistError {
    DistError::ProtocolMismatch {
        detail: format!("reduction plan desync: leaf slot {slot} not live"),
    }
}

impl Reducer for DistReducer {
    fn partition(&self, batch: usize) -> std::ops::Range<usize> {
        shard_range(batch, self.cfg.rank, self.cfg.world)
    }

    fn reduce(
        &mut self,
        leaves: &mut [Vec<f32>],
        losses: &[f32],
        corrects: &[u8],
        ctx: &StepContext<'_>,
    ) -> std::result::Result<ReducedStep, ReduceError> {
        let start = Instant::now();
        match self.reduce_impl(leaves, losses, corrects, ctx) {
            Ok(step) => {
                self.metrics
                    .reduce_ns
                    .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
                Ok(step)
            }
            Err(e) => {
                self.broadcast_fault(&e.to_string());
                Err(e.into())
            }
        }
    }
}
