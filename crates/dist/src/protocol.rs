//! Message layer: what travels inside each frame.
//!
//! Every frame payload is one tagged message, little-endian throughout:
//!
//! ```text
//! message := u32 tag | body
//! HELLO    (1, worker→master): u32 version | u32 world | u32 rank | u64 fingerprint
//! WELCOME  (2, master→worker): u32 version | u32 world | u64 fingerprint
//! PARTIALS (3, worker→master): u64 epoch | u64 step | u32 nroots
//!                              | (u32 root_idx | u32 nbytes | grad-bytes)*
//!                              | u32 nlosses | f32 loss* | u32 correct
//! REDUCED  (4, master→worker): u64 epoch | u64 step | u32 nbytes | grad-bytes
//!                              | u64 loss_sum_bits | u64 correct
//! FAULT    (5, master→worker): u32 len | utf8 detail
//! ```
//!
//! `grad-bytes` are [`crate::codec`] segment sequences. The handshake
//! fingerprint ([`model_fingerprint`]) pins the model geometry and
//! world size so two runs that would silently diverge fail with a
//! [`DistError::ProtocolMismatch`] at connect time instead.

use alf_core::CnnModel;
use alf_nn::layer::Layer;
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{DistError, Result};

/// Wire protocol revision; bumped on any frame- or message-layout change.
pub const PROTOCOL_VERSION: u32 = 1;

const TAG_HELLO: u32 = 1;
const TAG_WELCOME: u32 = 2;
const TAG_PARTIALS: u32 = 3;
const TAG_REDUCED: u32 = 4;
const TAG_FAULT: u32 = 5;

/// Worker's opening claim: who it is and what run it believes it is in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// [`PROTOCOL_VERSION`] of the sender.
    pub version: u32,
    /// Total rank count the sender was launched with.
    pub world: u32,
    /// The sender's rank (1..world; rank 0 is the master).
    pub rank: u32,
    /// [`model_fingerprint`] of the sender's model and world.
    pub fingerprint: u64,
}

/// Master's acceptance of a [`Hello`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Welcome {
    /// [`PROTOCOL_VERSION`] of the master.
    pub version: u32,
    /// Master's world size.
    pub world: u32,
    /// Master's [`model_fingerprint`].
    pub fingerprint: u64,
}

/// One rank's contribution to one step: the roots of its locally
/// complete subtrees (encoded gradients) plus its per-sample stats.
#[derive(Debug, Clone, PartialEq)]
pub struct Partials {
    /// Epoch coordinate of the step (lockstep check).
    pub epoch: u64,
    /// Step coordinate within the epoch.
    pub step: u64,
    /// `(leaf_index, encoded partial sum)` for each shipped subtree
    /// root, in increasing leaf order.
    pub roots: Vec<(u32, Vec<u8>)>,
    /// Per-sample losses for this rank's batch slice, in slot order.
    pub losses: Vec<f32>,
    /// Correctly-classified samples in this rank's slice.
    pub correct: u32,
}

/// The finished reduction, broadcast identically to every worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reduced {
    /// Epoch coordinate of the step.
    pub epoch: u64,
    /// Step coordinate within the epoch.
    pub step: u64,
    /// Encoded tree-reduced gradient (unscaled sum over all leaves).
    pub grad: Vec<u8>,
    /// `f64::to_bits` of the slot-order loss fold — shipped as bits so
    /// every rank reconstructs the identical double.
    pub loss_sum_bits: u64,
    /// Total correct across the batch.
    pub correct: u64,
}

/// Master-relayed failure: the collective broke somewhere else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Description of the root cause (usually a rendered `DistError`).
    pub detail: String,
}

/// Any message of the dist protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// See [`Hello`].
    Hello(Hello),
    /// See [`Welcome`].
    Welcome(Welcome),
    /// See [`Partials`].
    Partials(Partials),
    /// See [`Reduced`].
    Reduced(Reduced),
    /// See [`Fault`].
    Fault(Fault),
}

impl Message {
    /// Serialises into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = BytesMut::new();
        match self {
            Message::Hello(h) => {
                out.put_u32_le(TAG_HELLO);
                out.put_u32_le(h.version);
                out.put_u32_le(h.world);
                out.put_u32_le(h.rank);
                out.put_u64_le(h.fingerprint);
            }
            Message::Welcome(w) => {
                out.put_u32_le(TAG_WELCOME);
                out.put_u32_le(w.version);
                out.put_u32_le(w.world);
                out.put_u64_le(w.fingerprint);
            }
            Message::Partials(p) => {
                out.put_u32_le(TAG_PARTIALS);
                out.put_u64_le(p.epoch);
                out.put_u64_le(p.step);
                out.put_u32_le(p.roots.len() as u32);
                for (idx, bytes) in &p.roots {
                    out.put_u32_le(*idx);
                    out.put_u32_le(bytes.len() as u32);
                    out.put_slice(bytes);
                }
                out.put_u32_le(p.losses.len() as u32);
                for &l in &p.losses {
                    out.put_f32_le(l);
                }
                out.put_u32_le(p.correct);
            }
            Message::Reduced(r) => {
                out.put_u32_le(TAG_REDUCED);
                out.put_u64_le(r.epoch);
                out.put_u64_le(r.step);
                out.put_u32_le(r.grad.len() as u32);
                out.put_slice(&r.grad);
                out.put_u64_le(r.loss_sum_bits);
                out.put_u64_le(r.correct);
            }
            Message::Fault(f) => {
                out.put_u32_le(TAG_FAULT);
                out.put_u32_le(f.detail.len() as u32);
                out.put_slice(f.detail.as_bytes());
            }
        }
        out.freeze().to_vec()
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// [`DistError::ProtocolMismatch`] for an unknown tag or a body that
    /// does not parse — the frame CRC already passed, so malformed bytes
    /// here mean the peers are speaking different dialects.
    pub fn decode(payload: &[u8]) -> Result<Message> {
        let mut buf = Bytes::copy_from_slice(payload);
        need(&buf, 4, "message tag")?;
        let tag = buf.get_u32_le();
        let msg = match tag {
            TAG_HELLO => {
                need(&buf, 4 + 4 + 4 + 8, "HELLO body")?;
                Message::Hello(Hello {
                    version: buf.get_u32_le(),
                    world: buf.get_u32_le(),
                    rank: buf.get_u32_le(),
                    fingerprint: buf.get_u64_le(),
                })
            }
            TAG_WELCOME => {
                need(&buf, 4 + 4 + 8, "WELCOME body")?;
                Message::Welcome(Welcome {
                    version: buf.get_u32_le(),
                    world: buf.get_u32_le(),
                    fingerprint: buf.get_u64_le(),
                })
            }
            TAG_PARTIALS => {
                need(&buf, 8 + 8 + 4, "PARTIALS header")?;
                let epoch = buf.get_u64_le();
                let step = buf.get_u64_le();
                let nroots = buf.get_u32_le() as usize;
                let mut roots = Vec::with_capacity(nroots.min(1024));
                for _ in 0..nroots {
                    need(&buf, 8, "PARTIALS root header")?;
                    let idx = buf.get_u32_le();
                    let nbytes = buf.get_u32_le() as usize;
                    need(&buf, nbytes, "PARTIALS root payload")?;
                    let mut bytes = vec![0u8; nbytes];
                    buf.copy_to_slice(&mut bytes);
                    roots.push((idx, bytes));
                }
                need(&buf, 4, "PARTIALS loss count")?;
                let nlosses = buf.get_u32_le() as usize;
                need(&buf, 4 * nlosses + 4, "PARTIALS losses")?;
                let mut losses = Vec::with_capacity(nlosses);
                for _ in 0..nlosses {
                    losses.push(buf.get_f32_le());
                }
                let correct = buf.get_u32_le();
                Message::Partials(Partials {
                    epoch,
                    step,
                    roots,
                    losses,
                    correct,
                })
            }
            TAG_REDUCED => {
                need(&buf, 8 + 8 + 4, "REDUCED header")?;
                let epoch = buf.get_u64_le();
                let step = buf.get_u64_le();
                let nbytes = buf.get_u32_le() as usize;
                need(&buf, nbytes + 8 + 8, "REDUCED body")?;
                let mut grad = vec![0u8; nbytes];
                buf.copy_to_slice(&mut grad);
                Message::Reduced(Reduced {
                    epoch,
                    step,
                    grad,
                    loss_sum_bits: buf.get_u64_le(),
                    correct: buf.get_u64_le(),
                })
            }
            TAG_FAULT => {
                need(&buf, 4, "FAULT length")?;
                let len = buf.get_u32_le() as usize;
                need(&buf, len, "FAULT detail")?;
                let mut raw = vec![0u8; len];
                buf.copy_to_slice(&mut raw);
                Message::Fault(Fault {
                    detail: String::from_utf8_lossy(&raw).into_owned(),
                })
            }
            other => {
                return Err(DistError::ProtocolMismatch {
                    detail: format!("unknown message tag {other}"),
                })
            }
        };
        if buf.remaining() != 0 {
            return Err(DistError::ProtocolMismatch {
                detail: format!("{} trailing bytes after message", buf.remaining()),
            });
        }
        Ok(msg)
    }

    /// Short name for mismatch diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Hello(_) => "HELLO",
            Message::Welcome(_) => "WELCOME",
            Message::Partials(_) => "PARTIALS",
            Message::Reduced(_) => "REDUCED",
            Message::Fault(_) => "FAULT",
        }
    }
}

/// Fingerprint of the run's shared identity: FNV-1a over the model's
/// parameter geometry and the world size. Two processes with different
/// architectures (or launched with different `--ranks`) cannot complete
/// the handshake.
pub fn model_fingerprint(model: &CnnModel, world: u32) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    mix(u64::from(world));
    model.visit_params_ref(&mut |p| {
        mix(p.value.dims().len() as u64);
        for &d in p.value.dims() {
            mix(d as u64);
        }
    });
    h
}

fn need(buf: &Bytes, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        return Err(DistError::ProtocolMismatch {
            detail: format!("truncated {what}: need {n} bytes, have {}", buf.remaining()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_round_trip() {
        let msgs = vec![
            Message::Hello(Hello {
                version: 1,
                world: 4,
                rank: 2,
                fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            }),
            Message::Welcome(Welcome {
                version: 1,
                world: 4,
                fingerprint: 7,
            }),
            Message::Partials(Partials {
                epoch: 3,
                step: 11,
                roots: vec![(4, vec![0, 1, 2]), (6, vec![9])],
                losses: vec![0.25, -1.5],
                correct: 1,
            }),
            Message::Reduced(Reduced {
                epoch: 3,
                step: 11,
                grad: vec![1, 2, 3, 4],
                loss_sum_bits: 1.75f64.to_bits(),
                correct: 9,
            }),
            Message::Fault(Fault {
                detail: "RankLost: rank 2 (read timed out)".into(),
            }),
        ];
        for msg in msgs {
            let wire = msg.encode();
            let back = Message::decode(&wire).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_mismatches() {
        let err = Message::decode(&99u32.to_le_bytes()).unwrap_err();
        assert!(matches!(err, DistError::ProtocolMismatch { .. }), "{err}");
        let mut wire = Message::Fault(Fault { detail: "x".into() }).encode();
        wire.push(0);
        let err = Message::decode(&wire).unwrap_err();
        assert!(matches!(err, DistError::ProtocolMismatch { .. }), "{err}");
    }

    #[test]
    fn fingerprint_separates_architectures_and_world() {
        let cfg = alf_core::block::AlfBlockConfig::paper_default();
        let a = alf_core::models::plain20_alf(4, 4, cfg, 3).unwrap();
        let b = alf_core::models::plain20_alf(4, 8, cfg, 3).unwrap();
        assert_ne!(model_fingerprint(&a, 2), model_fingerprint(&b, 2));
        assert_ne!(model_fingerprint(&a, 2), model_fingerprint(&a, 4));
        assert_eq!(model_fingerprint(&a, 2), model_fingerprint(&a, 2));
    }
}
