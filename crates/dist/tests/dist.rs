//! Integration gates for the socket collective: multi-rank runs must be
//! bitwise-identical to the single-process `DpTrainer`, failures must be
//! typed, and the sparse gradient wire must engage on pruned models.
//!
//! Ranks run as in-process threads over real loopback TCP sockets —
//! same wire, same framing, same reducer as `alf dist`, minus the
//! process boundary (which `scripts/verify.sh` covers end to end).

use std::net::TcpListener;
use std::thread;
use std::time::Duration;

use alf_core::block::AlfBlockConfig;
use alf_core::models::plain20_alf;
use alf_core::{AlfHyper, CnnModel};
use alf_data::{Dataset, SynthVision};
use alf_dist::{run_rank, DistConfig, DistError, DistReducer, RunOptions};
use alf_dp::{DpConfig, DpTrainer};
use alf_nn::LrSchedule;

fn small_data(seed: u64) -> Dataset {
    SynthVision::cifar_like(seed)
        .with_image_size(12)
        .with_max_shift(1)
        .with_num_classes(4)
        .with_train_size(48)
        .with_test_size(24)
        .with_noise(0.05)
        .build()
        .unwrap()
}

fn quick_config() -> DpConfig {
    DpConfig::new(
        AlfHyper {
            task_lr: 0.05,
            batch_size: 12,
            lr_schedule: LrSchedule::Constant,
            ..AlfHyper::default()
        },
        9,
    )
    .with_threads(2)
}

fn small_model() -> CnnModel {
    plain20_alf(4, 8, AlfBlockConfig::paper_default(), 3).unwrap()
}

fn state_bits(trainer: &DpTrainer) -> Vec<u32> {
    trainer.state_vector().iter().map(|v| v.to_bits()).collect()
}

/// Runs a `world`-rank collective (threads over loopback TCP) for
/// `epochs` epochs and returns every rank's final state bits.
fn run_collective(
    world: usize,
    epochs: usize,
    model_fn: impl Fn() -> CnnModel + Sync,
    data: &Dataset,
) -> Vec<Vec<u32>> {
    let addr = alf_dist::ephemeral_addr().unwrap();
    let model_fn = &model_fn;
    thread::scope(|s| {
        let workers: Vec<_> = (1..world)
            .map(|rank| {
                s.spawn(move || {
                    let mut dist = DistConfig::new(world, rank, addr);
                    dist.read_timeout = Duration::from_secs(20);
                    dist.connect_timeout = Duration::from_secs(10);
                    run_rank(
                        &dist,
                        model_fn(),
                        quick_config(),
                        data,
                        &RunOptions::new(epochs),
                        None,
                    )
                    .map(|o| state_bits(&o.trainer))
                })
            })
            .collect();
        let mut dist = DistConfig::new(world, 0, addr);
        dist.read_timeout = Duration::from_secs(20);
        dist.connect_timeout = Duration::from_secs(10);
        let master = run_rank(
            &dist,
            model_fn(),
            quick_config(),
            data,
            &RunOptions::new(epochs),
            None,
        )
        .unwrap();
        let mut states = vec![state_bits(&master.trainer)];
        for w in workers {
            states.push(w.join().unwrap().unwrap());
        }
        states
    })
}

#[test]
fn collectives_are_bitwise_identical_to_single_process() {
    let data = small_data(11);
    let mut reference = DpTrainer::new(small_model(), quick_config()).unwrap();
    reference.run(&data, 1).unwrap();
    let want = state_bits(&reference);
    for world in [2usize, 3, 4] {
        let states = run_collective(world, 1, small_model, &data);
        assert_eq!(states.len(), world);
        for (rank, got) in states.iter().enumerate() {
            assert_eq!(
                got, &want,
                "world {world} rank {rank} diverged from single-process reference"
            );
        }
    }
}

#[test]
fn pruned_model_engages_the_sparse_wire_and_stays_bitwise() {
    let data = small_data(13);
    // Wide threshold so a few optimisation steps can't move forced
    // channels across the clip band (same trick as train_bench's sweep).
    let config = AlfBlockConfig {
        threshold: 0.5,
        ..AlfBlockConfig::paper_default()
    };
    let pruned_model = || {
        let mut m = plain20_alf(4, 8, config, 3).unwrap();
        for block in m.alf_blocks_mut() {
            let total = block.total_filters();
            let clip = total / 2;
            for ch in 0..clip.min(total.saturating_sub(1)) {
                block.autoencoder_mut().set_mask_value(ch, 0.05);
            }
        }
        m
    };
    let steps = 4usize;
    let mut reference = DpTrainer::new(pruned_model(), quick_config()).unwrap();
    reference.run_steps(&data, steps).unwrap();

    let addr = alf_dist::ephemeral_addr().unwrap();
    let listener = TcpListener::bind(addr).unwrap();
    let (master_bits, sparse_count, worker_bits) = thread::scope(|s| {
        let worker = s.spawn(|| {
            let dist = DistConfig::new(2, 1, addr);
            let mut trainer = DpTrainer::new(pruned_model(), quick_config()).unwrap();
            let mut red = DistReducer::worker(dist, trainer.model(), None).unwrap();
            for _ in 0..steps {
                trainer.advance_step_with(&data, &mut red).unwrap();
            }
            state_bits(&trainer)
        });
        let dist = DistConfig::new(2, 0, addr);
        let mut trainer = DpTrainer::new(pruned_model(), quick_config()).unwrap();
        let mut red = DistReducer::master(dist, trainer.model(), &listener, None).unwrap();
        for _ in 0..steps {
            trainer.advance_step_with(&data, &mut red).unwrap();
        }
        let sparse = red.metrics().tensors_sparse.get();
        (state_bits(&trainer), sparse, worker.join().unwrap())
    });
    assert_eq!(master_bits, state_bits(&reference));
    assert_eq!(worker_bits, master_bits);
    assert!(
        sparse_count > 0,
        "half-pruned STE model should take the sparse encoding at least once"
    );
}

#[test]
fn dead_worker_is_a_typed_rank_lost() {
    let addr = alf_dist::ephemeral_addr().unwrap();
    let listener = TcpListener::bind(addr).unwrap();
    let data = small_data(17);
    thread::scope(|s| {
        // A worker that completes the handshake, then dies before its
        // first reduce.
        let worker = s.spawn(|| {
            let dist = DistConfig::new(2, 1, addr);
            let model = small_model();
            let red = DistReducer::worker(dist, &model, None).unwrap();
            drop(red);
        });
        let mut dist = DistConfig::new(2, 0, addr);
        dist.read_timeout = Duration::from_secs(5);
        let mut trainer = DpTrainer::new(small_model(), quick_config()).unwrap();
        let mut red = DistReducer::master(dist, trainer.model(), &listener, None).unwrap();
        let err = trainer.advance_step_with(&data, &mut red).unwrap_err();
        let dist_err = DistError::from_reduce(err);
        assert!(
            matches!(dist_err, DistError::RankLost { rank: 1, .. }),
            "{dist_err}"
        );
        worker.join().unwrap();
    });
}

#[test]
fn handshake_rejects_world_and_architecture_mismatch() {
    // World-size mismatch.
    let addr = alf_dist::ephemeral_addr().unwrap();
    let listener = TcpListener::bind(addr).unwrap();
    thread::scope(|s| {
        let worker = s.spawn(|| {
            let model = small_model();
            DistReducer::worker(DistConfig::new(3, 1, addr), &model, None).err()
        });
        let model = small_model();
        let err = DistReducer::master(DistConfig::new(2, 0, addr), &model, &listener, None)
            .err()
            .expect("mismatched world must not handshake");
        assert!(matches!(err, DistError::ProtocolMismatch { .. }), "{err}");
        // The rejected worker fails too (the master hangs up on it).
        assert!(worker.join().unwrap().is_some());
    });

    // Architecture mismatch: same world, different model geometry.
    let addr = alf_dist::ephemeral_addr().unwrap();
    let listener = TcpListener::bind(addr).unwrap();
    thread::scope(|s| {
        let worker = s.spawn(|| {
            let wide = plain20_alf(4, 16, AlfBlockConfig::paper_default(), 3).unwrap();
            DistReducer::worker(DistConfig::new(2, 1, addr), &wide, None).err()
        });
        let model = small_model();
        let err = DistReducer::master(DistConfig::new(2, 0, addr), &model, &listener, None)
            .err()
            .expect("mismatched architecture must not handshake");
        let msg = err.to_string();
        assert!(
            matches!(err, DistError::ProtocolMismatch { .. }) && msg.contains("different run"),
            "{msg}"
        );
        assert!(worker.join().unwrap().is_some());
    });
}
