#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, lints, format.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The serving benchmark gates that the deploy::Pipeline compressed form
# improves serving throughput, that the fused int8 deployment beats the
# f32 compressed path while agreeing with it on >=99% of predictions,
# and that the server neither deadlocks nor panics under open-loop load
# — in process and again end to end over real TCP connections (the
# socket section of BENCH_serve.json); the timeout turns a hang into a
# hard failure.
echo "==> serve_bench --smoke (includes socket-mode + int8 gates)"
timeout 300 cargo run --release -q -p alf-bench --bin serve_bench -- --smoke

# The int8 serving integration test drives Precision::Int8 through the
# public Server API: every request must come back with a valid class and
# the int8 predictions must track the f32 deployment's.
echo "==> int8 serving smoke (release)"
timeout 300 cargo test --release -q --test serving \
  int8_precision_serves_and_tracks_the_f32_deployment

# The socket smoke test drives the network front end over an ephemeral
# port: concurrent keep-alive clients, one hot checkpoint swap over the
# wire, one tenant-over-quota burst. Every request must be answered or
# typed-rejected and the /metrics totals must account exactly for the
# client-side tallies; the timeout turns a poll-loop wedge into a hard
# failure.
echo "==> alf-net socket smoke (release)"
timeout 300 cargo test --release -q -p alf-net --test socket_smoke

# The training benchmark gates that data-parallel training is bitwise
# independent of the worker count, that a killed run resumes from its
# checkpoint bitwise identically (plus a >=1.5x 4-worker speedup gate on
# multi-core hosts), and that per-step JSONL telemetry is read-only
# (bitwise-identical weights) and stays within noise of the
# telemetry-off wall time; the timeout turns a hang into a hard failure.
echo "==> train_bench --smoke (includes telemetry overhead + bitwise gates)"
timeout 300 cargo run --release -q -p alf-bench --bin train_bench -- --smoke

# The GEMM benchmark gates that the blocked kernel beats the seed loops
# and that packed-panel elision pays off monotonically as the zero-row
# fraction rises (the occupancy-sweep gate), while staying bitwise equal
# to the dense kernel; the timeout turns a hang into a hard failure.
echo "==> gemm_bench --smoke (includes occupancy-sweep gate)"
timeout 300 cargo run --release -q -p alf-bench --bin gemm_bench -- --scale smoke

# The kill/resume suite in release mode: checkpoints taken at every
# phase of an epoch must restore the exact trajectory.
echo "==> alf-dp resume tests (release)"
timeout 300 cargo test --release -q -p alf-dp --test resume

# The distributed-training smoke, end to end over real processes: a
# 4-rank socket collective is killed mid-epoch (rank 2 dies after its
# 6th step), which must surface as a typed RankLost and a nonzero exit
# with no final checkpoint; resuming the collective from rank 0's
# periodic checkpoint must then land bitwise on the checkpoint of a
# single-process run of the same schedule.
echo "==> alf dist 4-rank kill/resume smoke (bitwise vs 1 process)"
DIST_OUT=$(mktemp -d)
DIST_ARGS="--train-size 48 --test-size 16 --image-size 12 --batch 12 --width 8"
timeout 300 ./target/release/alf dist --ranks 1 --epochs 2 $DIST_ARGS \
  --out "$DIST_OUT/ref.ckpt" > /dev/null
set +e
timeout 300 ./target/release/alf dist --ranks 4 --epochs 2 $DIST_ARGS \
  --ckpt "$DIST_OUT/live.ckpt" --ckpt-every 4 --die-after 2:6 \
  --out "$DIST_OUT/never.ckpt" > "$DIST_OUT/fail.out" 2>&1
dist_code=$?
set -e
if [ "$dist_code" -eq 0 ]; then
  echo "FAIL: collective with a killed rank exited 0"
  exit 1
fi
if ! grep -q "RankLost: rank 2" "$DIST_OUT/fail.out"; then
  cat "$DIST_OUT/fail.out"
  echo "FAIL: killed rank did not surface as a typed RankLost"
  exit 1
fi
if [ -e "$DIST_OUT/never.ckpt" ]; then
  echo "FAIL: failed collective wrote a final checkpoint"
  exit 1
fi
timeout 300 ./target/release/alf dist --ranks 4 --epochs 1 $DIST_ARGS \
  --resume "$DIST_OUT/live.ckpt" --out "$DIST_OUT/resumed.ckpt" > /dev/null
if ! cmp -s "$DIST_OUT/ref.ckpt" "$DIST_OUT/resumed.ckpt"; then
  echo "FAIL: resumed 4-rank collective is not bitwise-equal to 1 process"
  exit 1
fi
rm -rf "$DIST_OUT"

# The campaign runner gates: a subset campaign (headline + the two
# geometry ablations, plus the baselines the DAG pulls in) is aborted
# after its first completion (exit 70 — the kill simulation), resumed,
# and must then report every declared job in a terminal state with the
# consolidated Pareto pair on disk. This exercises the manifest
# (write/truncate/replay), the scheduler, and the exactly-once training
# assertion end to end.
echo "==> alf-lab kill/resume campaign (smoke subset)"
LAB_OUT=$(mktemp -d)
LAB_ONLY="headline,ablation_dataflow,ablation_fusion"
set +e
timeout 300 cargo run --release -q -p alf-lab --bin alf-lab -- \
  run --smoke --out "$LAB_OUT" --only "$LAB_ONLY" --fresh --abort-after 1 \
  > /dev/null
lab_code=$?
set -e
if [ "$lab_code" -ne 70 ]; then
  echo "FAIL: expected --abort-after to exit 70, got $lab_code"
  exit 1
fi
timeout 300 cargo run --release -q -p alf-lab --bin alf-lab -- \
  run --smoke --out "$LAB_OUT" --only "$LAB_ONLY" > /dev/null
for f in pareto-smoke.txt pareto-smoke.json campaign-smoke.manifest; do
  if [ ! -s "$LAB_OUT/$f" ]; then
    echo "FAIL: resumed campaign left no $f"
    exit 1
  fi
done
if ! grep -q '"all_terminal":true' "$LAB_OUT/pareto-smoke.json"; then
  echo "FAIL: resumed campaign did not reach a terminal state for every job"
  exit 1
fi
if ! grep -q '"status":"cached"' "$LAB_OUT/pareto-smoke.json"; then
  echo "FAIL: resume re-ran jobs the aborted campaign already completed"
  exit 1
fi
rm -rf "$LAB_OUT"

# The experiment CLI surface is defined in exactly one place
# (alf_bench::cli::Scale::from_args). A second `fn from_args` means a
# binary regrew its own argv parsing that can drift from the shared
# --scale/--jobs/--out surface.
echo "==> single Scale::from_args definition"
from_args_defs=$(grep -rn "pub fn from_args" crates src --include='*.rs' | wc -l)
if [ "$from_args_defs" -ne 1 ]; then
  grep -rn "pub fn from_args" crates src --include='*.rs' || true
  echo "FAIL: expected exactly 1 from_args definition, found $from_args_defs"
  exit 1
fi

# JSON formatting/escaping is defined in exactly one place
# (alf_obs::json). A second `fn json_escape` anywhere in the workspace
# means an emitter drifted off the shared writer.
echo "==> single json_escape implementation"
escape_impls=$(grep -rn "fn json_escape" crates src --include='*.rs' | wc -l)
if [ "$escape_impls" -ne 1 ]; then
  grep -rn "fn json_escape" crates src --include='*.rs' || true
  echo "FAIL: expected exactly 1 json_escape implementation, found $escape_impls"
  exit 1
fi

# The sparse-execution descriptor is defined in exactly one place
# (alf_tensor::ops::gemm). A second `ActiveRows` definition means a
# consumer grew its own liveness bookkeeping that can drift from the
# packing-stage elision contract.
echo "==> single ActiveRows definition"
active_rows_defs=$(grep -rn "pub struct ActiveRows" crates src --include='*.rs' | wc -l)
if [ "$active_rows_defs" -ne 1 ]; then
  grep -rn "pub struct ActiveRows" crates src --include='*.rs' || true
  echo "FAIL: expected exactly 1 ActiveRows definition, found $active_rows_defs"
  exit 1
fi

# The fused i8×i8→i32 micro-kernel is defined in exactly one place
# (alf_gemm_kernels::microkernel_i8_into). A second definition means a
# consumer regrew its own quantized inner loop that can drift from the
# exactness contract (f32 accumulation, KC·127² < 2²⁴).
echo "==> single i8 micro-kernel definition"
i8_kernel_defs=$(grep -rn "pub fn microkernel_i8_into" crates src --include='*.rs' | wc -l)
if [ "$i8_kernel_defs" -ne 1 ]; then
  grep -rn "pub fn microkernel_i8_into" crates src --include='*.rs' || true
  echo "FAIL: expected exactly 1 i8 micro-kernel definition, found $i8_kernel_defs"
  exit 1
fi

# Deployment flows through deploy::Pipeline; the deprecated
# deploy::compress wrapper exists only for source compatibility. Any
# direct call site outside its own defining module means a consumer
# bypassed the Pipeline API (and with it fold/quantize provenance).
echo "==> no deploy::compress call sites outside the deprecated wrapper"
# (both greps exit 1 in the passing case — no match at all, or every
# match filtered — so shield the pipeline from `pipefail`.)
compress_calls=$(
  { grep -rn "deploy::compress(" crates src --include='*.rs' || true; } \
    | { grep -v "crates/core/src/deploy.rs" || true; } | wc -l
)
if [ "$compress_calls" -ne 0 ]; then
  grep -rn "deploy::compress(" crates src --include='*.rs' \
    | grep -v "crates/core/src/deploy.rs" || true
  echo "FAIL: expected 0 deploy::compress call sites, found $compress_calls"
  exit 1
fi

# CRC-32 is defined in exactly one place (alf_obs::crc). A second table
# definition means a framing or manifest consumer regrew its own
# checksum that can drift from the shared IEEE 802.3 implementation.
echo "==> single crc32 implementation"
crc_defs=$(grep -rn "fn crc32(" crates src --include='*.rs' | wc -l)
if [ "$crc_defs" -ne 1 ]; then
  grep -rn "fn crc32(" crates src --include='*.rs' || true
  echo "FAIL: expected exactly 1 crc32 implementation, found $crc_defs"
  exit 1
fi

# The observability crate is the workspace's public-facing telemetry
# API; its docs must build clean.
echo "==> cargo doc -p alf-obs (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q -p alf-obs

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: all gates passed"
