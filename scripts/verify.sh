#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, lints, format.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The serving benchmark gates that deploy::compress improves serving
# throughput and that the server neither deadlocks nor panics under
# open-loop load; the timeout turns a hang into a hard failure.
echo "==> serve_bench --smoke"
timeout 300 cargo run --release -q -p alf-bench --bin serve_bench -- --smoke

# The training benchmark gates that data-parallel training is bitwise
# independent of the worker count and that a killed run resumes from its
# checkpoint bitwise identically (plus a >=1.5x 4-worker speedup gate on
# multi-core hosts); the timeout turns a hang into a hard failure.
echo "==> train_bench --smoke"
timeout 300 cargo run --release -q -p alf-bench --bin train_bench -- --smoke

# The kill/resume suite in release mode: checkpoints taken at every
# phase of an epoch must restore the exact trajectory.
echo "==> alf-dp resume tests (release)"
timeout 300 cargo test --release -q -p alf-dp --test resume

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: all gates passed"
