//! `alf` — command-line driver for the ALF reproduction.
//!
//! Subcommands:
//!
//! * `train`  — train a model on a synthetic dataset and save a checkpoint.
//! * `eval`   — evaluate a checkpoint's accuracy.
//! * `deploy` — strip a trained ALF checkpoint and report compression.
//! * `hwmap`  — map a model geometry onto the Eyeriss-like accelerator.
//! * `serve`  — serve a model over HTTP (`alf-net` front end): predict,
//!   hot checkpoint swap, per-tenant quotas, `/metrics`.
//! * `dist`   — multi-process data-parallel training over TCP sockets
//!   (`alf-dist`): spawns `--ranks` local rank processes whose result is
//!   bitwise-identical to single-process training.
//! * `lab`    — run the paper's full results grid as one resumable
//!   campaign (delegates to `alf-lab`; see `alf lab help`).
//!
//! `dist-rank` is the hidden per-rank entry point `dist` spawns; it is
//! not part of the user-facing surface.
//!
//! Run `alf <subcommand> --help` (or no arguments) for the option list.

use std::process::ExitCode;

use alf::core::block::AlfBlockConfig;
use alf::core::models::{geometry, plain20, plain20_alf, resnet20, resnet20_alf};
use alf::core::train::{evaluate, AlfHyper, AlfTrainer};
use alf::core::{checkpoint, deploy, CnnModel, NetworkCost};
use alf::data::{Dataset, Split, SynthVision};
use alf::hwmodel::{Accelerator, ConvWorkload, Dataflow, Mapper, NetworkReport};

/// Minimal `--key value` argument parser.
struct Args {
    items: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut items = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got '{}'", argv[i]))?;
            let value = argv
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            items.push((key.to_string(), value.clone()));
            i += 2;
        }
        Ok(Self { items })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.items
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_string()
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad value '{v}'")),
        }
    }
}

fn usage() -> &'static str {
    "usage: alf <train|eval|deploy|summary|hwmap|serve|dist|lab> [options]\n\
     \n\
     common data options: --data-seed N --classes N --image-size N\n\
     \u{20}                    --train-size N --test-size N\n\
     \n\
     alf train  --model plain20|resnet20|plain20-alf|resnet20-alf --out FILE\n\
     \u{20}          [--width N] [--epochs N] [--seed N] [--task-lr F]\n\
     \u{20}          [--ae-lr F] [--ae-steps N] [--threshold F] [--batch N]\n\
     alf eval   --model M --ckpt FILE [data options]\n\
     alf deploy --model plain20-alf|resnet20-alf --ckpt FILE [--width N]\n\
     alf summary [--model M] [--ckpt FILE] [--width N]\n\
     alf hwmap  [--width N] [--image-size N] [--batch N] [--dataflow rs|ws|os]\n\
     \u{20}          [--remaining F]\n\
     alf serve  [--addr HOST:PORT] [--model M] [--ckpt FILE] [--width N]\n\
     \u{20}          [--name NAME] [--rate REQ_PER_S] [--burst N] [--threads N]\n\
     \u{20}          [--max-conns N] [data options]\n\
     alf dist   [--ranks N] [--epochs N] [--model M] [--width N] [--seed N]\n\
     \u{20}          [--addr HOST:PORT] [--out FILE] [--ckpt FILE] [--ckpt-every N]\n\
     \u{20}          [--resume FILE] [--die-after RANK:STEPS] [--threads N]\n\
     \u{20}          [data options]    socket collective, bitwise = 1 process\n\
     alf lab    <run|list|help> [lab options]   resumable results campaign"
}

fn build_model(
    name: &str,
    classes: usize,
    width: usize,
    threshold: f32,
    seed: u64,
) -> Result<CnnModel, String> {
    let block = AlfBlockConfig {
        threshold,
        ..AlfBlockConfig::paper_default()
    };
    let model = match name {
        "plain20" => plain20(classes, width),
        "resnet20" => resnet20(classes, width),
        "plain20-alf" => plain20_alf(classes, width, block, seed),
        "resnet20-alf" => resnet20_alf(classes, width, block, seed),
        other => return Err(format!("unknown model '{other}'")),
    };
    model.map_err(|e| e.to_string())
}

fn build_data(args: &Args) -> Result<Dataset, String> {
    SynthVision::cifar_like(args.num("data-seed", 7u64)?)
        .with_num_classes(args.num("classes", 4usize)?)
        .with_image_size(args.num("image-size", 16usize)?)
        .with_max_shift(1)
        .with_train_size(args.num("train-size", 256usize)?)
        .with_test_size(args.num("test-size", 96usize)?)
        .build()
        .map_err(|e| e.to_string())
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let model_name = args.get_or("model", "plain20-alf");
    let width = args.num("width", 8usize)?;
    let seed = args.num("seed", 1u64)?;
    let data = build_data(args)?;
    let mut model = build_model(
        &model_name,
        data.num_classes(),
        width,
        args.num("threshold", 2e-2f32)?,
        seed,
    )?;
    let hyper = AlfHyper {
        task_lr: args.num("task-lr", 0.05f32)?,
        batch_size: args.num("batch", 16usize)?,
        ae_lr: args.num("ae-lr", 5e-2f32)?,
        ae_steps_per_batch: args.num("ae-steps", 8usize)?,
        ..AlfHyper::default()
    };
    let epochs = args.num("epochs", 16usize)?;
    let mut trainer = AlfTrainer::new(model, hyper, seed).map_err(|e| e.to_string())?;
    for _ in 0..epochs {
        let s = trainer.run_epoch(&data).map_err(|e| e.to_string())?;
        println!(
            "epoch {:>3}: loss {:.3}  train {:.1}%  test {:.1}%  filters {:.0}%",
            s.epoch,
            s.train_loss,
            100.0 * s.train_accuracy,
            100.0 * s.test_accuracy,
            100.0 * s.remaining_filters
        );
    }
    model = trainer.into_model();
    let out = args.get("out").ok_or("--out FILE is required for train")?;
    let blob = checkpoint::save(&model);
    std::fs::write(out, &blob).map_err(|e| format!("writing {out}: {e}"))?;
    println!("saved checkpoint to {out} ({} bytes)", blob.len());
    Ok(())
}

fn load_ckpt(args: &Args, data: &Dataset) -> Result<CnnModel, String> {
    let model_name = args.get_or("model", "plain20-alf");
    let width = args.num("width", 8usize)?;
    let mut model = build_model(
        &model_name,
        data.num_classes(),
        width,
        args.num("threshold", 2e-2f32)?,
        args.num("seed", 1u64)?,
    )?;
    let path = args.get("ckpt").ok_or("--ckpt FILE is required")?;
    let blob = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    checkpoint::load(&mut model, &blob).map_err(|e| e.to_string())?;
    Ok(model)
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let data = build_data(args)?;
    let model = load_ckpt(args, &data)?;
    let acc = evaluate(&model, &data, Split::Test, 32).map_err(|e| e.to_string())?;
    println!("test accuracy: {:.2}%", 100.0 * acc);
    Ok(())
}

fn cmd_deploy(args: &Args) -> Result<(), String> {
    let data = build_data(args)?;
    let model = load_ckpt(args, &data)?;
    let deployed = deploy::Pipeline::new()
        .run(&model)
        .map_err(|e| e.to_string())?
        .model;
    let [_, h, w] = data.image_dims();
    let dense = NetworkCost::of_layers(&model.conv_shapes(h, w));
    let compressed = deploy::cost(&deployed, h, w);
    let (dp, dm) = compressed.reduction_vs(&dense);
    println!("layer            kept  total");
    for info in deploy::conv_report(&deployed, h, w) {
        if let Some(c) = info.c_code {
            println!("{:<16} {:>4}  {:>5}", info.shape.name, c, info.shape.c_out);
        }
    }
    println!(
        "\ndeployed: {} params ({:+.0}% vs dense), {} MACs ({:+.0}% vs dense)",
        compressed.params, -dp, compressed.macs, -dm
    );
    let acc = evaluate(&deployed, &data, Split::Test, 32).map_err(|e| e.to_string())?;
    println!("deployed test accuracy: {:.2}%", 100.0 * acc);
    Ok(())
}

fn cmd_summary(args: &Args) -> Result<(), String> {
    let data = build_data(args)?;
    let mut model = match args.get("ckpt") {
        Some(_) => load_ckpt(args, &data)?,
        None => build_model(
            &args.get_or("model", "plain20-alf"),
            data.num_classes(),
            args.num("width", 8usize)?,
            args.num("threshold", 2e-2f32)?,
            args.num("seed", 1u64)?,
        )?,
    };
    let [_, h, w] = data.image_dims();
    print!(
        "{}",
        alf::core::summary::summarize(&mut model, h, w).to_text()
    );
    Ok(())
}

fn cmd_hwmap(args: &Args) -> Result<(), String> {
    let width = args.num("width", 16usize)?;
    let side = args.num("image-size", 32usize)?;
    let batch = args.num("batch", 16usize)?;
    let remaining: f32 = args.num("remaining", 1.0f32)?;
    let dataflow = match args.get_or("dataflow", "rs").as_str() {
        "rs" => Dataflow::RowStationary,
        "ws" => Dataflow::WeightStationary,
        "os" => Dataflow::OutputStationary,
        other => return Err(format!("unknown dataflow '{other}'")),
    };
    let mapper = Mapper::new(Accelerator::eyeriss(), dataflow);
    let layers = geometry::plain20_layers_width(side, width);
    let workloads: Vec<ConvWorkload> = if remaining >= 1.0 {
        layers
            .iter()
            .map(|s| ConvWorkload::from_shape(s, batch))
            .collect()
    } else {
        layers
            .iter()
            .flat_map(|s| {
                let c = ((s.c_out as f32 * remaining).round() as usize).clamp(1, s.c_out);
                [
                    ConvWorkload::from_shape(
                        &alf::core::ConvShape::new(
                            format!("{}+code", s.name),
                            s.c_in,
                            c,
                            s.kernel,
                            s.stride,
                            s.h_out,
                            s.w_out,
                        ),
                        batch,
                    ),
                    ConvWorkload::from_shape(
                        &alf::core::ConvShape::new(
                            format!("{}+exp", s.name),
                            c,
                            s.c_out,
                            1,
                            1,
                            s.h_out,
                            s.w_out,
                        ),
                        batch,
                    ),
                ]
            })
            .collect()
    };
    let report = NetworkReport::evaluate(&mapper, &workloads)
        .map_err(|e| e.to_string())?
        .merged();
    println!("layer        RF          buffer      DRAM        latency     util");
    for l in &report.layers {
        println!(
            "{:<12} {:<11.3e} {:<11.3e} {:<11.3e} {:<11.3e} {:.0}%",
            l.name,
            l.energy_rf,
            l.energy_buffer,
            l.energy_dram,
            l.latency_cycles,
            100.0 * l.utilization
        );
    }
    println!(
        "\ntotal energy {:.3e}, total latency {:.3e} ({dataflow}, batch {batch})",
        report.total_energy(),
        report.total_latency()
    );
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    use alf::net::{ModelSpec, NetConfig, NetServer, QuotaConfig};
    use alf::obs::metrics::MetricsRegistry;
    use alf::serve::ServeConfig;

    let data = build_data(args)?;
    let model_name = args.get_or("model", "plain20-alf");
    let model = match args.get("ckpt") {
        Some(_) => load_ckpt(args, &data)?,
        None => build_model(
            &model_name,
            data.num_classes(),
            args.num("width", 8usize)?,
            args.num("threshold", 2e-2f32)?,
            args.num("seed", 1u64)?,
        )?,
    };
    let [c, h, w] = data.image_dims();
    let name = args.get_or("name", &model_name);
    let rate = args.num("rate", f64::INFINITY)?;
    let burst = args.num("burst", 8.0f64)?;
    let spec = ModelSpec {
        name: name.clone(),
        model,
        serve: ServeConfig::new(c, h, w),
    };
    let cfg = NetConfig {
        quota: if rate.is_finite() {
            QuotaConfig::per_tenant(rate, burst)
        } else {
            QuotaConfig::unlimited()
        },
        max_connections: args.num("max-conns", 256usize)?,
        threads: args
            .get("threads")
            .map(|_| args.num("threads", 1))
            .transpose()?,
        ..NetConfig::new(&args.get_or("addr", "127.0.0.1:8080"))
    };
    let server =
        NetServer::start(vec![spec], cfg, MetricsRegistry::new()).map_err(|e| e.to_string())?;
    println!("serving '{name}' on http://{}", server.addr());
    println!("  POST /v1/models/{name}/predict     raw little-endian f32 body ({c}x{h}x{w})");
    println!("  POST /v1/models/{name}/checkpoint  hot-swap weights");
    println!("  GET  /metrics | /healthz | /v1/models");
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

/// Option keys forwarded verbatim from `alf dist` to each spawned
/// `dist-rank` child. Every rank rebuilds the model, dataset and
/// hyper-parameters from these (identical defaults apply on both sides),
/// so only coordinates and deadlines differ between ranks.
const DIST_FORWARDED: &[&str] = &[
    "data-seed",
    "classes",
    "image-size",
    "train-size",
    "test-size",
    "model",
    "width",
    "threshold",
    "seed",
    "task-lr",
    "batch",
    "ae-lr",
    "ae-steps",
    "epochs",
    "threads",
    "read-timeout-s",
    "connect-timeout-s",
    "resume",
];

/// Builds the `DpConfig` every rank of a collective shares.
fn dist_dp_config(args: &Args) -> Result<alf::dp::DpConfig, String> {
    let hyper = AlfHyper {
        task_lr: args.num("task-lr", 0.05f32)?,
        batch_size: args.num("batch", 16usize)?,
        ae_lr: args.num("ae-lr", 5e-2f32)?,
        ae_steps_per_batch: args.num("ae-steps", 8usize)?,
        ..AlfHyper::default()
    };
    let mut dp = alf::dp::DpConfig::new(hyper, args.num("data-seed", 7u64)?);
    if args.get("threads").is_some() {
        dp = dp.with_threads(args.num("threads", 1usize)?);
    }
    Ok(dp)
}

/// Runs one rank of a collective in this process (the body of both
/// `dist-rank` and the in-process rank 0 of `alf dist`).
fn run_dist_rank(
    args: &Args,
    world: usize,
    rank: usize,
    addr: std::net::SocketAddr,
    die_after: Option<u64>,
) -> Result<(), String> {
    use alf::dist::{run_rank, DistConfig, RunOptions};
    use std::time::Duration;

    let data = build_data(args)?;
    let model = build_model(
        &args.get_or("model", "plain20-alf"),
        data.num_classes(),
        args.num("width", 8usize)?,
        args.num("threshold", 2e-2f32)?,
        args.num("seed", 1u64)?,
    )?;
    let dp = dist_dp_config(args)?;
    let mut dist = DistConfig::new(world, rank, addr);
    dist.read_timeout = Duration::from_secs(args.num("read-timeout-s", 60u64)?);
    dist.connect_timeout = Duration::from_secs(args.num("connect-timeout-s", 30u64)?);
    let resume = match args.get("resume") {
        Some(path) => Some(std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?),
        None => None,
    };
    let opts = RunOptions {
        epochs: args.num("epochs", 4usize)?,
        ckpt_every: args
            .get("ckpt-every")
            .map(|_| args.num("ckpt-every", 0u64))
            .transpose()?,
        ckpt_path: args.get("ckpt").map(std::path::PathBuf::from),
        out: args.get("out").map(std::path::PathBuf::from),
        die_after_steps: die_after,
        resume,
    };
    let outcome = run_rank(&dist, model, dp, &data, &opts, None).map_err(|e| e.to_string())?;
    if rank == 0 {
        for s in &outcome.epochs {
            println!(
                "epoch {:>3}: loss {:.3}  train {:.1}%  test {:.1}%  filters {:.0}%",
                s.epoch,
                s.train_loss,
                100.0 * s.train_accuracy,
                100.0 * s.test_accuracy,
                100.0 * s.remaining_filters
            );
        }
        if let Some(out) = args.get("out") {
            println!("rank 0 wrote final checkpoint to {out}");
        }
    }
    Ok(())
}

/// `alf dist`: resolve one address, spawn ranks `1..N` as `dist-rank`
/// child processes of this executable, run rank 0 in-process, join.
fn cmd_dist(args: &Args) -> Result<(), String> {
    use alf::dist::{check_exits, ephemeral_addr, Launcher};

    let world = args.num("ranks", 2usize)?.max(1);
    let addr = match args.get("addr") {
        Some(spec) => spec.parse().map_err(|e| format!("--addr '{spec}': {e}"))?,
        None => ephemeral_addr().map_err(|e| e.to_string())?,
    };
    // --die-after RANK:STEPS — fault injection for the kill/resume smoke.
    let die_after: Option<(usize, u64)> = match args.get("die-after") {
        None => None,
        Some(spec) => {
            let (r, k) = spec
                .split_once(':')
                .ok_or_else(|| format!("--die-after '{spec}': expected RANK:STEPS"))?;
            Some((
                r.parse()
                    .map_err(|_| format!("--die-after: bad rank '{r}'"))?,
                k.parse()
                    .map_err(|_| format!("--die-after: bad steps '{k}'"))?,
            ))
        }
    };
    if world == 1 {
        // Single rank: the LocalReducer reference path, no sockets.
        return run_dist_rank(args, 1, 0, addr, die_after.map(|(_, k)| k));
    }
    let exe = std::env::current_exe().map_err(|e| format!("resolving alf binary: {e}"))?;
    let mut launcher = Launcher::new();
    for rank in 1..world {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("dist-rank")
            .arg("--world")
            .arg(world.to_string())
            .arg("--rank")
            .arg(rank.to_string())
            .arg("--addr")
            .arg(addr.to_string());
        for key in DIST_FORWARDED {
            if let Some(value) = args.get(key) {
                cmd.arg(format!("--{key}")).arg(value);
            }
        }
        if let Some((r, k)) = die_after {
            if r == rank {
                cmd.arg("--die-after-steps").arg(k.to_string());
            }
        }
        launcher
            .spawn_rank(rank, &mut cmd)
            .map_err(|e| e.to_string())?;
    }
    println!("dist: {world} ranks on {addr} (rank 0 in-process)");
    let master = run_dist_rank(
        args,
        world,
        0,
        addr,
        die_after.and_then(|(r, k)| (r == 0).then_some(k)),
    );
    // Join the children regardless of the master's fate so failures
    // report the whole collective (workers unblock via their deadlines).
    let exits = launcher.join().map_err(|e| e.to_string())?;
    master?;
    check_exits(&exits).map_err(|e| e.to_string())?;
    Ok(())
}

/// Hidden per-rank entry point spawned by [`cmd_dist`].
fn cmd_dist_rank(args: &Args) -> Result<(), String> {
    let world = args.num("world", 0usize)?;
    let rank = args.num("rank", usize::MAX)?;
    if world < 2 || rank == usize::MAX || rank >= world {
        return Err("dist-rank needs --world N (>=2) and --rank R (<N)".to_string());
    }
    let addr = args
        .get("addr")
        .ok_or("dist-rank needs --addr HOST:PORT")?
        .parse()
        .map_err(|e| format!("--addr: {e}"))?;
    let die_after = args
        .get("die-after-steps")
        .map(|_| args.num("die-after-steps", 0u64))
        .transpose()?;
    run_dist_rank(args, world, rank, addr, die_after)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    if cmd == "lab" {
        // `lab` owns its argv surface (scale flags, --only, --fresh, …).
        let code = alf::lab::cli_main(&argv[1..]);
        return ExitCode::from(u8::try_from(code).unwrap_or(1));
    }
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "train" => cmd_train(&args),
        "eval" => cmd_eval(&args),
        "deploy" => cmd_deploy(&args),
        "summary" => cmd_summary(&args),
        "hwmap" => cmd_hwmap(&args),
        "serve" => cmd_serve(&args),
        "dist" => cmd_dist(&args),
        "dist-rank" => cmd_dist_rank(&args),
        "--help" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}
