//! Facade crate for the ALF reproduction workspace.
//!
//! Re-exports every sub-crate under one root so that examples and
//! integration tests (and downstream users who want the whole stack) can
//! depend on a single crate:
//!
//! * [`tensor`] — dense `f32` tensors and convolution kernels.
//! * [`nn`] — layers, losses and optimizers with manual backprop.
//! * [`data`] — deterministic synthetic vision datasets.
//! * [`core`] — the ALF technique: blocks, two-player training, deployment.
//! * [`baselines`] — magnitude / FPGM / AMC-style / LCNN compression baselines.
//! * [`hwmodel`] — the Eyeriss-like accelerator model with mapping search.
//! * [`serve`] — batched inference serving for deployed models.
//! * [`net`] — network front end over `serve`: HTTP/1.1, multi-model
//!   routing, per-tenant quotas, `/metrics` exposition.
//! * [`dp`] — deterministic data-parallel training with checkpoint/resume.
//! * [`dist`] — multi-process data-parallel training over TCP sockets,
//!   bitwise-identical to single-process `dp` at any rank count.
//! * [`obs`] — zero-dependency observability: metrics registry, JSONL
//!   event tracing, shared JSON writer.
//!
//! Cross-crate failures unify under the facade [`Error`] (see
//! [`crate::error`]); each sub-crate's own error stays the source of
//! truth.
//!
//! # Quickstart
//!
//! ```no_run
//! use alf::core::models::plain20;
//! use alf::core::train::{AlfHyper, AlfTrainer};
//! use alf::data::SynthVision;
//!
//! # fn main() -> alf::Result<()> {
//! let data = SynthVision::cifar_like(0).with_train_size(512).build()?;
//! let model = plain20(data.num_classes(), 8)?;
//! let mut trainer = AlfTrainer::new(model, AlfHyper::default(), 0)?;
//! let report = trainer.run(&data, 2)?;
//! println!("accuracy {:.1}%", 100.0 * report.final_accuracy());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod error;

pub use alf_baselines as baselines;
pub use alf_core as core;
pub use alf_data as data;
pub use alf_dist as dist;
pub use alf_dp as dp;
pub use alf_hwmodel as hwmodel;
pub use alf_lab as lab;
pub use alf_net as net;
pub use alf_nn as nn;
pub use alf_obs as obs;
pub use alf_serve as serve;
pub use alf_tensor as tensor;

pub use error::{Error, Result};
