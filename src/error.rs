//! Unified error type for the facade crate.
//!
//! Each sub-crate keeps its own error as the source of truth
//! ([`alf_tensor::ShapeError`], [`alf_serve::ServeError`],
//! [`alf_data::DecodeDatasetError`], [`alf_hwmodel::MapperError`]); this
//! module only gives callers that work across crate boundaries — the
//! `examples/` and integration tests here, or a downstream binary — one
//! type to `?` into instead of stringifying or boxing at every seam.

use std::fmt;

/// Any error the ALF stack can produce, by origin.
///
/// `#[non_exhaustive]`: future sub-crates may add variants without a
/// breaking change, so downstream matches need a `_` arm.
///
/// # Example
///
/// ```
/// use alf::tensor::{ops, Tensor};
///
/// fn incompatible() -> alf::Result<Tensor> {
///     let a = Tensor::zeros(&[2, 3]);
///     let b = Tensor::zeros(&[4, 5]);
///     Ok(ops::matmul(&a, &b)?)
/// }
///
/// assert!(matches!(incompatible(), Err(alf::Error::Shape(_))));
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Tensor shapes incompatible with an operation (most training-time
    /// failures surface as this).
    Shape(alf_tensor::ShapeError),
    /// A checkpoint or weight blob failed validation on load. Carried as
    /// the underlying [`ShapeError`](alf_tensor::ShapeError) whose
    /// operation name is `"checkpoint"`; split out so callers can
    /// distinguish "bad saved state" from "bad model arithmetic".
    Checkpoint(alf_tensor::ShapeError),
    /// Quantization failed — bad bit-width, a non-finite tensor value,
    /// an empty calibration batch, or a model form the int8 engine does
    /// not support. Carries the bit-width/tensor context of the origin.
    Quant(alf_core::quant::QuantError),
    /// The serving engine rejected or failed a request.
    Serve(alf_serve::ServeError),
    /// The network front end failed to start or bind.
    Net(alf_net::NetError),
    /// An encoded dataset blob failed to decode.
    DecodeDataset(alf_data::DecodeDatasetError),
    /// The accelerator mapper found no feasible mapping.
    Mapper(alf_hwmodel::MapperError),
    /// An I/O failure around the stack — e.g. creating a telemetry
    /// [`FileSink`](alf_obs::events::FileSink) or writing a checkpoint
    /// to disk.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Shape(e) => e.fmt(f),
            Error::Checkpoint(e) => write!(f, "checkpoint: {}", e.detail()),
            Error::Quant(e) => write!(f, "quantize: {e}"),
            Error::Serve(e) => e.fmt(f),
            Error::Net(e) => e.fmt(f),
            Error::DecodeDataset(e) => e.fmt(f),
            Error::Mapper(e) => e.fmt(f),
            Error::Io(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Shape(e) | Error::Checkpoint(e) => Some(e),
            Error::Quant(e) => Some(e),
            Error::Serve(e) => Some(e),
            Error::Net(e) => Some(e),
            Error::DecodeDataset(e) => Some(e),
            Error::Mapper(e) => Some(e),
            Error::Io(e) => Some(e),
        }
    }
}

impl From<alf_tensor::ShapeError> for Error {
    /// Routes by origin: the checkpoint codecs in `core` and `dp` report
    /// through [`ShapeError`](alf_tensor::ShapeError) with the operation
    /// name `"checkpoint"`, which lands in [`Error::Checkpoint`]; every
    /// other operation lands in [`Error::Shape`].
    fn from(e: alf_tensor::ShapeError) -> Self {
        if e.op() == "checkpoint" {
            Error::Checkpoint(e)
        } else {
            Error::Shape(e)
        }
    }
}

impl From<alf_core::quant::QuantError> for Error {
    fn from(e: alf_core::quant::QuantError) -> Self {
        Error::Quant(e)
    }
}

impl From<alf_core::deploy::DeployError> for Error {
    /// Splits a deployment failure back into its origin: structural
    /// problems land in [`Error::Shape`], quantization problems keep
    /// their context in [`Error::Quant`].
    fn from(e: alf_core::deploy::DeployError) -> Self {
        match e {
            alf_core::deploy::DeployError::Shape(s) => s.into(),
            alf_core::deploy::DeployError::Quant(q) => Error::Quant(q),
        }
    }
}

impl From<alf_serve::ServeError> for Error {
    fn from(e: alf_serve::ServeError) -> Self {
        Error::Serve(e)
    }
}

impl From<alf_net::NetError> for Error {
    fn from(e: alf_net::NetError) -> Self {
        Error::Net(e)
    }
}

impl From<alf_data::DecodeDatasetError> for Error {
    fn from(e: alf_data::DecodeDatasetError) -> Self {
        Error::DecodeDataset(e)
    }
}

impl From<alf_hwmodel::MapperError> for Error {
    fn from(e: alf_hwmodel::MapperError) -> Self {
        Error::Mapper(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenience alias: `Result` with the facade [`Error`].
pub type Result<T, E = Error> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_error_routes_by_op() {
        let plain: Error = alf_tensor::ShapeError::new("matmul", "2x3 vs 4x5").into();
        assert!(matches!(plain, Error::Shape(_)));
        let ckpt: Error = alf_tensor::ShapeError::new("checkpoint", "bad magic").into();
        assert!(matches!(ckpt, Error::Checkpoint(_)));
        assert_eq!(ckpt.to_string(), "checkpoint: bad magic");
    }

    #[test]
    fn serve_error_converts() {
        let e: Error = alf_serve::ServeError::ShuttingDown.into();
        assert!(matches!(
            e,
            Error::Serve(alf_serve::ServeError::ShuttingDown)
        ));
        assert!(e.to_string().contains("shutting down"));
    }

    #[test]
    fn net_error_converts() {
        let e: Error = alf_net::NetError::BadConfig("no models".to_string()).into();
        assert!(matches!(e, Error::Net(_)));
        assert!(e.to_string().contains("no models"));
    }

    #[test]
    fn quant_error_converts_with_context() {
        let e: Error = alf_core::quant::QuantError::BadBits { bits: 1 }.into();
        assert!(matches!(
            e,
            Error::Quant(alf_core::quant::QuantError::BadBits { bits: 1 })
        ));
        assert!(e.to_string().contains("bit-width 1"));
        let d: Error =
            alf_core::deploy::DeployError::Quant(alf_core::quant::QuantError::EmptyCalibration {
                layer: "input".into(),
            })
            .into();
        assert!(matches!(d, Error::Quant(_)));
        let s: Error =
            alf_core::deploy::DeployError::Shape(alf_tensor::ShapeError::new("deploy", "bad"))
                .into();
        assert!(matches!(s, Error::Shape(_)));
    }

    #[test]
    fn source_chains_to_origin() {
        use std::error::Error as _;
        let e: Error = alf_tensor::ShapeError::new("conv2d", "bad kernel").into();
        let src = e.source().expect("has source");
        assert!(src.to_string().contains("conv2d"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
