//! Cross-crate integration: the full ALF pipeline — synthesize data, train
//! the two-player game, prune, deploy, verify equivalence, and evaluate the
//! deployed model on the accelerator model.

use alf::core::block::AlfBlockConfig;
use alf::core::models::{plain20, plain20_alf, resnet20_alf};
use alf::core::train::{evaluate, AlfHyper, AlfTrainer};
use alf::core::{deploy, NetworkCost};
use alf::data::{Split, SynthVision};
use alf::hwmodel::{Accelerator, ConvWorkload, Dataflow, Mapper, NetworkReport};
use alf::nn::{Layer, LrSchedule, RunCtx};
use alf::tensor::init::Init;
use alf::tensor::rng::Rng;
use alf::tensor::Tensor;

fn quick_data(seed: u64) -> alf::data::Dataset {
    SynthVision::cifar_like(seed)
        .with_image_size(12)
        .with_max_shift(1)
        .with_num_classes(4)
        .with_train_size(96)
        .with_test_size(48)
        .with_noise(0.05)
        .build()
        .expect("dataset")
}

fn quick_hyper() -> AlfHyper {
    AlfHyper {
        task_lr: 0.05,
        batch_size: 16,
        ae_lr: 5e-2,
        ae_steps_per_batch: 8,
        lr_schedule: LrSchedule::Constant,
        ..AlfHyper::default()
    }
}

fn aggressive_block() -> AlfBlockConfig {
    AlfBlockConfig {
        threshold: 2e-2,
        ..AlfBlockConfig::paper_default()
    }
}

#[test]
fn full_pipeline_train_prune_deploy_map() {
    let data = quick_data(1);
    let model = plain20_alf(4, 6, aggressive_block(), 2).expect("model");
    let mut trainer = AlfTrainer::new(model, quick_hyper(), 2).expect("trainer");
    let report = trainer.run(&data, 10).expect("training");
    let trained = trainer.into_model();

    // Pruning must have happened by the end of the schedule.
    assert!(
        report.final_remaining_filters() < 0.95,
        "expected pruning, remaining = {}",
        report.final_remaining_filters()
    );

    // Deployment must preserve the function exactly.
    let mut deployed = deploy::Pipeline::new().run(&trained).expect("deploy").model;
    let mut original = trained.clone();
    let probe = Tensor::randn(&[2, 3, 12, 12], Init::Rand, &mut Rng::new(3));
    let a = original
        .forward(&probe, &mut RunCtx::eval())
        .expect("forward");
    let b = deployed
        .forward(&probe, &mut RunCtx::eval())
        .expect("forward");
    assert!(a.allclose(&b, 1e-4), "deployment changed the function");

    // Deployed accuracy equals the training-form accuracy.
    let acc_trained = evaluate(&trained, &data, Split::Test, 16).expect("eval");
    let acc_deployed = evaluate(&deployed, &data, Split::Test, 16).expect("eval");
    assert!((acc_trained - acc_deployed).abs() < 1e-6);

    // The deployed model maps onto the accelerator and costs less energy
    // than the vanilla equivalent when compression is substantial.
    let mapper = Mapper::new(Accelerator::eyeriss(), Dataflow::RowStationary);
    let infos = deploy::conv_report(&deployed, 12, 12);
    let mut workloads = Vec::new();
    for info in &infos {
        let c_code = info.c_code.expect("alf layer");
        workloads.push(ConvWorkload::from_shape(
            &alf::core::ConvShape::new(
                format!("{}+code", info.shape.name),
                info.shape.c_in,
                c_code,
                info.shape.kernel,
                info.shape.stride,
                info.shape.h_out,
                info.shape.w_out,
            ),
            4,
        ));
        workloads.push(ConvWorkload::from_shape(
            &alf::core::ConvShape::new(
                format!("{}+exp", info.shape.name),
                c_code,
                info.shape.c_out,
                1,
                1,
                info.shape.h_out,
                info.shape.w_out,
            ),
            4,
        ));
    }
    let alf_hw = NetworkReport::evaluate(&mapper, &workloads).expect("mapping");
    assert!(alf_hw.total_energy() > 0.0);
    assert_eq!(alf_hw.merged().layers.len(), infos.len());
}

#[test]
fn vanilla_and_alf_share_training_infrastructure() {
    let data = quick_data(4);
    // The same trainer handles models with zero ALF blocks.
    let mut vanilla =
        AlfTrainer::new(plain20(4, 6).expect("model"), quick_hyper(), 5).expect("trainer");
    let r = vanilla.run(&data, 2).expect("training");
    assert_eq!(r.epochs.len(), 2);
    assert_eq!(r.final_remaining_filters(), 1.0);
    assert_eq!(r.epochs[0].mean_l_rec, 0.0);
}

#[test]
fn residual_alf_pipeline_deploys() {
    let data = quick_data(6);
    let model = resnet20_alf(4, 6, aggressive_block(), 7).expect("model");
    let mut trainer = AlfTrainer::new(model, quick_hyper(), 7).expect("trainer");
    trainer.run(&data, 6).expect("training");
    let trained = trainer.into_model();
    let deployed = deploy::Pipeline::new().run(&trained).expect("deploy").model;
    let vanilla_cost = NetworkCost::of_layers(&trained.conv_shapes(12, 12));
    let deployed_cost = deploy::cost(&deployed, 12, 12);
    // Deployed cost is bounded by (and with pruning below) the ALF-block
    // upper bound of code+expansion at full width.
    let upper = NetworkCost::of_alf_layers(
        trained
            .conv_shapes(12, 12)
            .iter()
            .map(|s| (s, s.c_out))
            .collect::<Vec<_>>(),
    );
    assert!(deployed_cost.params <= upper.params);
    // Sanity: vanilla cost is fixed and positive.
    assert!(vanilla_cost.params > 0);
}

#[test]
fn training_is_deterministic_across_runs() {
    let data = quick_data(8);
    let run = || {
        let model = plain20_alf(4, 6, aggressive_block(), 9).expect("model");
        let mut trainer = AlfTrainer::new(model, quick_hyper(), 9).expect("trainer");
        trainer.run(&data, 3).expect("training")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical seeds must give identical training traces");
}
