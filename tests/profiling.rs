//! Integration tests for the `RunCtx` execution path: steady-state
//! allocation behaviour of a whole ALF training step, per-layer profiler
//! coverage, and gradient fidelity with the profiler attached.

use alf::core::block::{AlfBlock, AlfBlockConfig};
use alf::core::model::{CnnModel, ConvKind, ConvUnit, Unit};
use alf::core::models::plain20_alf;
use alf::core::PruneSchedule;
use alf::nn::loss::softmax_cross_entropy;
use alf::nn::pool::GlobalAvgPool;
use alf::nn::{gradcheck, ActivationKind, Layer, Linear, RunCtx};
use alf::tensor::init::Init;
use alf::tensor::rng::Rng;
use alf::tensor::Tensor;

fn batch(rng: &mut Rng, n: usize) -> (Tensor, Vec<usize>) {
    let x = Tensor::randn(&[n, 3, 8, 8], Init::Rand, rng);
    let labels = (0..n).map(|i| i % 10).collect();
    (x, labels)
}

/// One full ALF training step: task player forward + CE loss + backward,
/// then one autoencoder-player step per block, all drawing scratch from
/// the shared arena of `ctx`.
fn alf_step(model: &mut alf::core::CnnModel, x: &Tensor, labels: &[usize], ctx: &mut RunCtx) {
    let logits = model.forward(x, ctx).unwrap();
    let (_, grad) = softmax_cross_entropy(&logits, labels).unwrap();
    model.backward(&grad, ctx).unwrap();
    let schedule = PruneSchedule::paper_default();
    for block in model.alf_blocks_mut() {
        block.autoencoder_step_in(5e-3, &schedule, ctx).unwrap();
    }
}

#[test]
fn plain20_alf_training_step_is_allocation_free_in_steady_state() {
    let mut rng = Rng::new(11);
    let mut model = plain20_alf(10, 4, AlfBlockConfig::paper_default(), 1).unwrap();
    let (x, labels) = batch(&mut rng, 4);
    let mut ctx = RunCtx::train();

    // Warm the arena: the first steps create and size every scratch slot.
    for _ in 0..2 {
        alf_step(&mut model, &x, &labels, &mut ctx);
    }

    // Freeze: further slot creation or growth trips a debug assertion
    // inside the workspace, and we additionally assert the event counter
    // stays put across whole steps.
    let warm_events = ctx.ws.alloc_events();
    ctx.ws.freeze();
    for _ in 0..2 {
        alf_step(&mut model, &x, &labels, &mut ctx);
    }
    ctx.ws.thaw();
    assert_eq!(
        ctx.ws.alloc_events(),
        warm_events,
        "steady-state ALF step grew the shared arena"
    );
    assert!(ctx.ws.high_water_bytes() > 0);
}

#[test]
fn profiler_covers_every_plain20_layer_with_nonzero_flops() {
    let mut rng = Rng::new(12);
    let mut model = plain20_alf(10, 4, AlfBlockConfig::paper_default(), 2).unwrap();
    let (x, labels) = batch(&mut rng, 2);
    let mut ctx = RunCtx::train().with_profiler();
    let logits = model.forward(&x, &mut ctx).unwrap();
    let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
    model.backward(&grad, &mut ctx).unwrap();

    let report = ctx.report().unwrap();
    // Plain-20: the stem, 3 stages × 3 blocks × 2 convs, global pooling
    // and the classifier — every one must show up, with real flops and
    // both passes counted.
    let mut expected = vec!["conv1".to_string()];
    for stage in 0..3 {
        for block in 0..3 {
            for idx in 0..2 {
                expected.push(format!("conv{}{}{}", stage + 2, block + 1, idx + 1));
            }
        }
    }
    expected.push("global_pool".to_string());
    expected.push("fc".to_string());
    for name in &expected {
        let layer = report
            .layer(name)
            .unwrap_or_else(|| panic!("layer {name} missing from profile"));
        assert!(layer.flops > 0, "layer {name} recorded zero flops");
        assert_eq!(layer.fwd_calls, 1, "layer {name} forward not scoped");
        assert_eq!(layer.bwd_calls, 1, "layer {name} backward not scoped");
    }
    assert_eq!(
        report.layers.len(),
        expected.len(),
        "unexpected extra scopes: {:?}",
        report.layers.iter().map(|l| &l.name).collect::<Vec<_>>()
    );
    assert!(report.total_ns() > 0);
    assert!(!report.to_json().is_empty());
}

#[test]
fn gradients_are_identical_with_profiler_on_and_off() {
    let mut rng = Rng::new(13);
    let (x, labels) = batch(&mut rng, 2);
    let run = |profile: bool| {
        let mut model = plain20_alf(10, 4, AlfBlockConfig::paper_default(), 3).unwrap();
        let mut ctx = RunCtx::train();
        if profile {
            ctx.enable_profiler();
        }
        let logits = model.forward(&x, &mut ctx).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        model.backward(&grad, &mut ctx).unwrap();
        let mut grads = Vec::new();
        model.visit_params(&mut |p| grads.extend_from_slice(p.grad.data()));
        grads
    };
    let plain = run(false);
    let profiled = run(true);
    assert_eq!(plain.len(), profiled.len());
    // Bitwise: profiling must observe the computation, never perturb it.
    assert!(
        plain
            .iter()
            .zip(&profiled)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "profiler changed the numerics"
    );
}

#[test]
fn model_input_gradients_pass_gradcheck_through_runctx() {
    // A full Plain-20 is too deep for f32 central differences (the stacked
    // BN+ReLU amplification swamps the numeric estimate on the seed code
    // too), so check a shallow ALF model end-to-end through the CnnModel
    // dispatch: ALF conv unit → BN → ReLU → global pool → classifier.
    let mut rng = Rng::new(14);
    let ae_block = AlfBlock::new(3, 4, 3, 1, 1, AlfBlockConfig::paper_default(), &mut rng);
    let units = vec![
        Unit::Conv(ConvUnit::new(
            "c1",
            ConvKind::Alf(ae_block),
            Some(ActivationKind::Relu),
        )),
        Unit::GlobalPool(GlobalAvgPool::new()),
        Unit::Classifier(Linear::new(4, 10, Init::Xavier, &mut rng)),
    ];
    let base = CnnModel::from_units("tiny-alf", units, 10).unwrap();
    let x = Tensor::randn(&[2, 3, 8, 8], Init::Rand, &mut rng);
    let labels = [3usize, 1];
    let (a, n) = gradcheck::input_gradients(
        &x,
        |x| {
            let mut model = base.clone();
            let mut ctx = RunCtx::train();
            let logits = model.forward(x, &mut ctx)?;
            Ok(softmax_cross_entropy(&logits, &labels)?.0)
        },
        |x| {
            let mut model = base.clone();
            let mut ctx = RunCtx::train();
            let logits = model.forward(x, &mut ctx)?;
            let (_, grad) = softmax_cross_entropy(&logits, &labels)?;
            model.backward(&grad, &mut ctx)
        },
    )
    .unwrap();
    // Looser than the per-layer unit gradchecks: this asserts the
    // composed dispatch is wired correctly, not kernel-level precision.
    gradcheck::assert_close(&a, &n, 5e-2);
}
