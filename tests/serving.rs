//! Integration tests for the `alf-serve` subsystem: the deployment
//! round-trip (`deploy::Pipeline` → `checkpoint::save` → `load` → serve) must be
//! bitwise-faithful to the training-form network, and the server must
//! survive concurrent load with a hot swap and a graceful shutdown
//! without losing requests or allocating in steady state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use alf::core::block::AlfBlockConfig;
use alf::core::model::CnnModel;
use alf::core::models::plain20_alf;
use alf::core::{checkpoint, deploy};
use alf::nn::{Layer, RunCtx};
use alf::serve::{Pending, ServeConfig, ServeError, Server};
use alf::tensor::init::Init;
use alf::tensor::rng::Rng;
use alf::tensor::Tensor;

const CLASSES: usize = 4;
const IMAGE: usize = 12;

/// A Plain-20 ALF model with 60% of every block's code filters clipped to
/// exact zero, so the deployment pipeline has structure to strip.
fn pruned_model(seed: u64) -> CnnModel {
    let mut model =
        plain20_alf(CLASSES, 4, AlfBlockConfig::paper_default(), seed).expect("build model");
    for block in model.alf_blocks_mut() {
        let co = block.autoencoder().mask().len();
        let keep = (co * 2 / 5).max(1);
        for j in keep..co {
            block.autoencoder_mut().set_mask_value(j, 0.0);
        }
    }
    model
}

fn image(rng: &mut Rng) -> Tensor {
    Tensor::randn(&[3, IMAGE, IMAGE], Init::Rand, rng)
}

fn serve_config(workers: usize, max_batch: usize, queue_depth: usize) -> ServeConfig {
    ServeConfig {
        workers,
        max_batch,
        max_wait: Duration::from_millis(1),
        queue_depth,
        ..ServeConfig::new(3, IMAGE, IMAGE)
    }
}

/// `compress` → `checkpoint::save` → `load` into a fresh deployed model →
/// serve: the logits coming back from the server are bitwise-identical to
/// the training-form network's eval-mode `forward`.
#[test]
fn deployment_roundtrip_serves_bitwise_identical_logits() {
    let mut train_form = pruned_model(17);
    let deployed = deploy::Pipeline::new()
        .run(&train_form)
        .expect("compress")
        .model;
    let blob = checkpoint::save(&deployed);

    // A *fresh* deployed model, deliberately perturbed so the test can
    // only pass if `checkpoint::load` actually restores the weights.
    let mut fresh = deploy::Pipeline::new()
        .run(&train_form)
        .expect("compress fresh")
        .model;
    fresh.visit_params(&mut |p| {
        for v in p.value.data_mut() {
            *v += 0.25;
        }
    });
    checkpoint::load(&mut fresh, &blob).expect("load checkpoint");

    // max_batch = 1 keeps every request in its own batch so the serving
    // path sees exactly the `[1, C, H, W]` geometry of the reference.
    let server = Server::start(&fresh, serve_config(1, 1, 8)).expect("start server");
    let mut ctx = RunCtx::eval();
    let mut rng = Rng::new(5);
    for _ in 0..6 {
        let x = image(&mut rng);
        let batched = Tensor::from_vec(x.data().to_vec(), &[1, 3, IMAGE, IMAGE]).unwrap();
        let reference = train_form.forward(&batched, &mut ctx).expect("reference");
        assert_eq!(reference.dims(), &[1, CLASSES]);

        let prediction = server.submit(x).expect("submit").wait().expect("answer");
        assert_eq!(prediction.logits.dims(), &[CLASSES]);
        let bits = |s: &[f32]| s.iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
        assert_eq!(
            bits(prediction.logits.data()),
            bits(reference.data()),
            "served logits differ from training-form eval forward"
        );
        let expected_class = reference
            .data()
            .iter()
            .enumerate()
            .fold((0, f32::NEG_INFINITY), |(bi, bv), (j, &v)| {
                if v > bv {
                    (j, v)
                } else {
                    (bi, bv)
                }
            })
            .0;
        assert_eq!(prediction.class, expected_class);
    }
    server.shutdown();
}

/// Concurrent producers + one hot swap + one graceful shutdown: every
/// submitted request is either answered or explicitly rejected, and the
/// steady-state serving path performs zero arena allocations per batch
/// under a frozen arena (same assertion style as tests/profiling.rs).
#[test]
fn serving_under_load_loses_nothing_and_stays_allocation_free() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 60;

    let model = pruned_model(23);
    let mut swapped = model.clone();
    swapped.visit_params(&mut |p| {
        for v in p.value.data_mut() {
            *v += 0.1;
        }
    });

    let server = Server::start(&model, serve_config(2, 4, 64)).expect("start server");
    let mut rng = Rng::new(9);
    let pool: Vec<Tensor> = (0..16).map(|_| image(&mut rng)).collect();

    // Warm both workers across every batch size, then freeze: any further
    // arena growth trips a debug assertion inside the workspace, and we
    // additionally assert the summed event counter stays put.
    for wave in 0..3 {
        let pendings: Vec<Pending> = (0..16)
            .map(|i| {
                server
                    .submit(pool[(wave + i) % pool.len()].clone())
                    .unwrap()
            })
            .collect();
        for p in pendings {
            p.wait().expect("warm request");
        }
    }
    server.freeze_arenas(true);
    let settle: Vec<Pending> = (0..16)
        .map(|i| server.submit(pool[i % pool.len()].clone()).unwrap())
        .collect();
    for p in settle {
        p.wait().expect("settle request");
    }
    let warm_completed: u64 = 4 * 16;
    let events_frozen = server.arena_alloc_events();

    let answered = AtomicU64::new(0);
    let overloaded = AtomicU64::new(0);
    let shut_out = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..PRODUCERS {
            let server = &server;
            let pool = &pool;
            let (answered, overloaded, shut_out) = (&answered, &overloaded, &shut_out);
            scope.spawn(move || {
                let mut pendings = Vec::new();
                for i in 0..PER_PRODUCER {
                    match server.submit(pool[(t * 31 + i) % pool.len()].clone()) {
                        Ok(pending) => pendings.push(pending),
                        Err(ServeError::Overloaded { .. }) => {
                            overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::ShuttingDown) => {
                            shut_out.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected rejection: {e}"),
                    }
                    std::thread::sleep(Duration::from_micros(300));
                }
                for pending in pendings {
                    pending.wait().expect("accepted request must be answered");
                    answered.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // While the producers run: one hot swap, then a graceful shutdown
        // that drains whatever is still queued.
        std::thread::sleep(Duration::from_millis(5));
        server.swap_model(&swapped).expect("hot swap");
        std::thread::sleep(Duration::from_millis(5));
        server.shutdown();
    });

    // Nothing lost: every submission was answered or explicitly rejected.
    let answered = answered.load(Ordering::Relaxed);
    let overloaded = overloaded.load(Ordering::Relaxed);
    let shut_out = shut_out.load(Ordering::Relaxed);
    assert_eq!(
        answered + overloaded + shut_out,
        (PRODUCERS * PER_PRODUCER) as u64,
        "request accounting does not add up"
    );
    assert!(answered > 0, "no request was served under load");

    let stats = server.stats();
    assert_eq!(stats.submitted, warm_completed + answered);
    assert_eq!(stats.completed, warm_completed + answered);
    assert_eq!(stats.rejected_overloaded, overloaded);
    assert_eq!(stats.rejected_shutdown, shut_out);
    assert_eq!(stats.swaps, 1);

    // Zero allocations per batch across the whole frozen window — warm-up
    // settle, concurrent load, hot swap, and drain included.
    assert_eq!(
        server.arena_alloc_events(),
        events_frozen,
        "steady-state serving grew a worker arena"
    );

    // Post-shutdown submissions are typed rejections, not hangs.
    let mut rng = Rng::new(11);
    match server.submit(image(&mut rng)) {
        Err(ServeError::ShuttingDown) => {}
        Err(e) => panic!("expected ShuttingDown after shutdown, got {e}"),
        Ok(_) => panic!("server accepted a request after shutdown"),
    }
}

/// `Precision::Int8` through the public server: the int8-lowered replica
/// answers every request with a valid class, and its predictions track
/// the f32 deployment's on the overwhelming majority of inputs.
#[test]
fn int8_precision_serves_and_tracks_the_f32_deployment() {
    let train_form = pruned_model(23);
    let deployed = deploy::Pipeline::new()
        .run(&train_form)
        .expect("deploy")
        .model;
    let mut rng = Rng::new(11);
    let calib = Tensor::randn(&[8, 3, IMAGE, IMAGE], Init::Rand, &mut rng);
    let cfg = ServeConfig {
        precision: alf::serve::Precision::Int8(calib),
        ..serve_config(2, 4, 32)
    };
    let server = Server::start(&deployed, cfg).expect("start int8 server");

    let mut f32_model = deployed.clone();
    let mut ctx = RunCtx::eval();
    let (mut agree, total) = (0usize, 32usize);
    for _ in 0..total {
        let img = image(&mut rng);
        let batched = img.reshape(&[1, 3, IMAGE, IMAGE]).expect("batch of one");
        let logits = f32_model.forward(&batched, &mut ctx).expect("f32 forward");
        let f32_class = logits
            .data()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let prediction = server.submit(img).expect("submit").wait().expect("answer");
        assert!(prediction.class < CLASSES);
        agree += usize::from(prediction.class == f32_class);
    }
    server.shutdown();
    assert!(
        agree * 10 >= total * 9,
        "int8 agreed with f32 on only {agree}/{total} predictions"
    );
}
