//! Quantitative checks against numbers stated in the paper that are exact
//! architecture arithmetic (not training outcomes): Table II/III model
//! costs, the `Ccode,max` bound of Eq. 2, and the Eyeriss model
//! configuration of §IV-B.

use alf::core::models::geometry;
use alf::core::{ConvShape, NetworkCost};
use alf::hwmodel::Accelerator;

#[test]
fn table2_vanilla_row_exact_params() {
    // Conv-only parameter count of Plain-20/ResNet-20:
    // 432 + 6·2304 + 4608 + 5·9216 + 18432 + 5·36864 = 267,696.
    let layers = geometry::plain20_layers(32, 3);
    let cost = NetworkCost::of_layers(&layers);
    assert_eq!(cost.params, 267_696);
}

#[test]
fn table2_vanilla_row_matches_paper_tolerances() {
    let layers = geometry::plain20_layers(32, 3);
    let cost = NetworkCost::of_layers(&layers);
    let params_m = cost.params as f64 / 1e6;
    let mops = cost.ops() as f64 / 1e6;
    assert!(
        (params_m - 0.27).abs() < 0.005,
        "params {params_m} M vs 0.27 M"
    );
    assert!((mops - 81.1).abs() < 0.5, "{mops} MOPs vs 81.1 MOPs");
}

#[test]
fn table3_static_rows_match_paper_within_five_percent() {
    // (ours vs paper): SqueezeNet 1.23M/1722, GoogleNet 6.80M/3004,
    // ResNet-18 11.83M/3743 — architecture arithmetic conventions differ
    // slightly between papers, so allow 7%.
    let checks = [
        (geometry::squeezenet_layers(), 1.23e6, 1722e6),
        (geometry::googlenet_layers(), 6.80e6, 3004e6),
        (geometry::resnet18_layers(), 11.83e6, 3743e6),
    ];
    for (arch, paper_params, paper_ops) in checks {
        let dp = (arch.params() as f64 - paper_params).abs() / paper_params;
        let dops = (arch.ops() as f64 - paper_ops).abs() / paper_ops;
        assert!(dp < 0.07, "{}: params off by {:.1}%", arch.name, 100.0 * dp);
        assert!(
            dops < 0.07,
            "{}: OPs off by {:.1}%",
            arch.name,
            100.0 * dops
        );
    }
}

#[test]
fn eq2_bound_for_the_paper_example_layers() {
    // Stage-1 CIFAR layer (16→16, 3×3): the ALF block must save whenever
    // fewer than Ccode,max = 14 filters remain.
    let l = ConvShape::new("conv2x", 16, 16, 3, 1, 32, 32);
    assert_eq!(l.c_code_max(), 14);
    // Stage-3 layer (64→64, 3×3): 64·64·9/(64·9 + 64) = 57.6 → 57.
    let l = ConvShape::new("conv4x", 64, 64, 3, 1, 8, 8);
    assert_eq!(l.c_code_max(), 57);
    for c in 1..=l.c_code_max() {
        assert!(l.alf_ops(c) <= l.ops());
    }
    assert!(l.alf_ops(l.c_code_max() + 1) > l.ops());
}

#[test]
fn eyeriss_model_matches_section_4b() {
    // "16×16 array of PEs … combined RFs add up to 220 words … global
    // buffer 128 KB … word-width 16 bits".
    let acc = Accelerator::eyeriss();
    assert_eq!(acc.pe_count(), 256);
    assert_eq!(acc.rf_words_per_pe, 220);
    assert_eq!(acc.global_buffer_words * acc.word_bytes, 128 * 1024);
    assert_eq!(acc.word_bytes, 2);
}

#[test]
fn alf_headline_is_reachable_at_paper_remaining_ratio() {
    // Fig. 2c: ~38.6% filters remain at (lr=1e-3, t=1e-4). At that ratio
    // the theoretical Params/OPs reductions bracket the paper's −70%/−61%.
    let layers = geometry::plain20_layers(32, 3);
    let baseline = NetworkCost::of_layers(&layers);
    let ratio = 0.386f32;
    let alf = NetworkCost::of_alf_layers(
        layers
            .iter()
            .map(|s| (s, ((s.c_out as f32 * ratio).round() as usize).max(1)))
            .collect::<Vec<_>>(),
    );
    let (dp, dm) = alf.reduction_vs(&baseline);
    assert!(
        (55.0..80.0).contains(&dp),
        "params reduction {dp:.0}% should bracket the paper's 70%"
    );
    assert!(
        (45.0..75.0).contains(&dm),
        "ops reduction {dm:.0}% should bracket the paper's 61%"
    );
}
