//! Cross-crate behavioural checks of the compression methods: the
//! qualitative properties Table I / §II ascribe to each family.

use alf::baselines::api::{apply_keep_ratios, chained_cost, Policy};
use alf::baselines::{fpgm, lcnn, magnitude, AmcAgent, AmcConfig};
use alf::core::block::AlfBlockConfig;
use alf::core::models::{plain20, plain20_alf};
use alf::core::train::{evaluate, AlfHyper, AlfTrainer};
use alf::core::{deploy, NetworkCost, PruneSchedule};
use alf::data::{Split, SynthVision};
use alf::nn::LrSchedule;
use alf::tensor::rng::Rng;
use alf::tensor::Tensor;

fn data(seed: u64) -> alf::data::Dataset {
    SynthVision::cifar_like(seed)
        .with_image_size(12)
        .with_max_shift(1)
        .with_num_classes(4)
        .with_train_size(96)
        .with_test_size(48)
        .with_noise(0.05)
        .build()
        .expect("dataset")
}

fn trained_reference(seed: u64) -> alf::core::CnnModel {
    let hyper = AlfHyper {
        task_lr: 0.05,
        batch_size: 16,
        lr_schedule: LrSchedule::Constant,
        ..AlfHyper::default()
    };
    let mut trainer = AlfTrainer::new(plain20(4, 6).expect("model"), hyper, seed).expect("trainer");
    trainer.run(&data(seed), 8).expect("training");
    trainer.into_model()
}

#[test]
fn magnitude_and_fpgm_choose_different_filters_on_trained_weights() {
    let model = trained_reference(1);
    let mut by_mag = model.clone();
    let mut by_gm = model.clone();
    magnitude::prune_filters(&mut by_mag, 0.5);
    fpgm::prune_filters(&mut by_gm, 0.5);
    // The two criteria are different heuristics; across 19 layers they
    // should disagree somewhere — compare silenced weight patterns.
    let collect = |m: &mut alf::core::CnnModel| {
        let mut sums = Vec::new();
        use alf::nn::Layer;
        m.visit_params(&mut |p| sums.push(p.value.sq_norm()));
        sums
    };
    assert_ne!(
        collect(&mut by_mag),
        collect(&mut by_gm),
        "magnitude and FPGM should select different filters"
    );
}

#[test]
fn amc_reward_beats_uniform_policy_of_equal_cost() {
    let model = trained_reference(2);
    let d = data(2);
    let cfg = AmcConfig {
        population: 6,
        elites: 2,
        iterations: 3,
        ops_target: 0.5,
        eval_batch: 24,
        ..AmcConfig::default()
    };
    let out = AmcAgent::new(cfg, 3).search(&model, &d).expect("amc");
    // A uniform policy hitting the same OPs budget:
    let shapes = model.conv_shapes(12, 12);
    let baseline_ops = NetworkCost::of_layers(&shapes).ops() as f64;
    let amc_ops_frac = out.cost.ops() as f64 / baseline_ops;
    // chained ops scale ≈ ratio² for uniform keep.
    let uniform_ratio = (amc_ops_frac.sqrt() as f32).clamp(0.2, 1.0);
    let mut uniform_model = model.clone();
    apply_keep_ratios(&mut uniform_model, &vec![uniform_ratio; shapes.len()]);
    let uniform_acc = evaluate(&uniform_model, &d, Split::Test, 24).expect("eval");
    // The learned policy must not be (meaningfully) worse than uniform at
    // matched cost — that is its whole reason to exist.
    assert!(
        out.accuracy >= uniform_acc - 0.1,
        "amc {:.2} vs uniform {:.2} at ops fraction {:.2}",
        out.accuracy,
        uniform_acc,
        amc_ops_frac
    );
}

#[test]
fn lcnn_full_dictionary_preserves_model_function() {
    let model = trained_reference(3);
    let d = data(3);
    let before = evaluate(&model, &d, Split::Test, 24).expect("eval");
    let mut compressed = model.clone();
    // dict_ratio 1.0 ⇒ every filter its own dictionary entry ⇒ lossless.
    lcnn::compress_model(&mut compressed, 1.0, 12, 12, 4).expect("lcnn");
    let after = evaluate(&compressed, &d, Split::Test, 24).expect("eval");
    assert_eq!(before, after, "full dictionary must be lossless");
}

#[test]
fn alf_needs_no_pretrained_model_unlike_the_baselines() {
    // Table I's distinguishing property: ALF trains from scratch. Verify
    // the whole flow works starting from random init and ends deployed.
    // The known-good smoke recipe (cf. alf_core::train's own tests): mild
    // paper-default pruning pressure so compression noise cannot mask the
    // learning signal on this tiny dataset.
    let d = SynthVision::cifar_like(2)
        .with_image_size(12)
        .with_max_shift(1)
        .with_num_classes(4)
        .with_train_size(128)
        .with_test_size(64)
        .with_noise(0.05)
        .build()
        .expect("dataset");
    let hyper = AlfHyper {
        task_lr: 0.05,
        batch_size: 16,
        lr_schedule: LrSchedule::Constant,
        ..AlfHyper::default()
    };
    let model = plain20_alf(4, 8, AlfBlockConfig::paper_default(), 3).expect("model");
    let mut trainer = AlfTrainer::new(model, hyper, 3).expect("trainer");
    let report = trainer.run(&d, 10).expect("training");
    assert!(report.final_accuracy() > 0.3, "{}", report.final_accuracy());
    let deployed = deploy::Pipeline::new()
        .run(trainer.model())
        .expect("deploy")
        .model;
    assert!(deploy::cost(&deployed, 12, 12).params > 0);
}

#[test]
fn policy_taxonomy_matches_table1() {
    // The classes the paper's Table I assigns.
    assert_eq!(Policy::Handcrafted.label(), "Handcrafted"); // magnitude, FPGM
    assert_eq!(Policy::RlAgent.label(), "RL-Agent"); // AMC
    assert_eq!(Policy::Automatic.label(), "Automatic"); // LCNN, ALF
}

#[test]
fn chained_cost_reflects_cross_layer_coupling() {
    // The paper's §II point: removing filters "directly impacts the input
    // channels of the subsequent layer". Halving layer 1's filters must
    // shrink layer 2's cost even when layer 2 keeps everything.
    let model = plain20(4, 8).expect("model");
    let shapes = model.conv_shapes(16, 16);
    let mut keeps: Vec<usize> = shapes.iter().map(|s| s.c_out).collect();
    let full = chained_cost(&shapes, &keeps);
    keeps[0] /= 2;
    let pruned = chained_cost(&shapes, &keeps);
    let layer0_only = shapes[0].params() / 2;
    assert!(
        full.params - pruned.params > layer0_only,
        "coupling must save more than layer 0's own params"
    );
}

#[test]
fn deployment_is_idempotent() {
    let mut model = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 7).expect("model");
    for block in model.alf_blocks_mut() {
        for _ in 0..200 {
            block
                .autoencoder_step(5e-3, &PruneSchedule::new(8.0, 0.9))
                .expect("ae step");
        }
    }
    let once = deploy::Pipeline::new().run(&model).expect("deploy").model;
    let mut twice = deploy::Pipeline::new().run(&once).expect("deploy").model;
    let mut once_m = once.clone();
    use alf::nn::{Layer, RunCtx};
    let x = Tensor::randn(
        &[1, 3, 12, 12],
        alf::tensor::init::Init::Rand,
        &mut Rng::new(8),
    );
    assert_eq!(
        once_m.forward(&x, &mut RunCtx::eval()).expect("fwd"),
        twice.forward(&x, &mut RunCtx::eval()).expect("fwd")
    );
    assert_eq!(deploy::cost(&once, 12, 12), deploy::cost(&twice, 12, 12));
}
