//! Property-based cross-crate invariants (proptest).

use alf::baselines::api::chained_cost;
use alf::core::autoencoder::WeightAutoencoder;
use alf::core::{ConvShape, NetworkCost, PruneSchedule};
use alf::data::{decode_dataset, encode_dataset, SynthVision};
use alf::hwmodel::{Accelerator, ConvWorkload, Dataflow, Mapper};
use alf::nn::activation::ActivationKind;
use alf::nn::ste;
use alf::tensor::init::Init;
use alf::tensor::ops::{
    col2im, conv2d, gemm_into, im2col, matmul, matmul_at, matmul_bt, reference, Conv2dSpec,
    Workspace,
};
use alf::tensor::rng::Rng;
use alf::tensor::Tensor;
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..5, 1usize..5, 1usize..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---- tensor algebra ---------------------------------------------------

    #[test]
    fn matmul_is_linear_in_first_argument((m, k, n) in small_dims(), seed in 0u64..1000, alpha in -2.0f32..2.0) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[m, k], Init::Rand, &mut rng);
        let b = Tensor::randn(&[k, n], Init::Rand, &mut rng);
        let lhs = matmul(&a.scale(alpha), &b).unwrap();
        let rhs = matmul(&a, &b).unwrap().scale(alpha);
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    #[test]
    fn matmul_transpose_variants_agree((m, k, n) in small_dims(), seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[k, m], Init::Rand, &mut rng);
        let b = Tensor::randn(&[k, n], Init::Rand, &mut rng);
        let via_at = matmul_at(&a, &b).unwrap();
        let via_explicit = matmul(&a.transpose2().unwrap(), &b).unwrap();
        prop_assert!(via_at.allclose(&via_explicit, 1e-4));
        let c = Tensor::randn(&[m, k], Init::Rand, &mut rng);
        let d = Tensor::randn(&[n, k], Init::Rand, &mut rng);
        let via_bt = matmul_bt(&c, &d).unwrap();
        let via_explicit = matmul(&c, &d.transpose2().unwrap()).unwrap();
        prop_assert!(via_bt.allclose(&via_explicit, 1e-4));
    }

    #[test]
    fn conv2d_is_linear(seed in 0u64..1000, alpha in -2.0f32..2.0,
                        n in 1usize..3, ci in 1usize..4, co in 1usize..4,
                        k in 1usize..4, side in 4usize..8) {
        let spec = Conv2dSpec::new(k, 1, k / 2);
        let mut rng = Rng::new(seed);
        let x = Tensor::randn(&[n, ci, side, side], Init::Rand, &mut rng);
        let w = Tensor::randn(&[co, ci, k, k], Init::Rand, &mut rng);
        let lhs = conv2d(&x.scale(alpha), &w, None, spec).unwrap();
        let rhs = conv2d(&x, &w, None, spec).unwrap().scale(alpha);
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn col2im_is_adjoint_of_im2col(seed in 0u64..1000, ci in 1usize..4,
                                   k in 1usize..4, stride in 1usize..3, side in 5usize..9) {
        let spec = Conv2dSpec::new(k, stride, k / 2);
        let mut rng = Rng::new(seed);
        let x = Tensor::randn(&[1, ci, side, side], Init::Rand, &mut rng);
        let cols = im2col(&x, spec).unwrap();
        let y = Tensor::randn(cols.dims(), Init::Rand, &mut rng);
        let lhs = cols.dot(&y).unwrap();
        let back = col2im(&y, 1, ci, side, side, spec).unwrap();
        let rhs = x.dot(&back).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    // ---- ALF mechanics ----------------------------------------------------

    #[test]
    fn clip_zeroes_exactly_the_dead_zone(m in proptest::collection::vec(-1.0f32..1.0, 1..16),
                                         t in 0.0f32..0.5) {
        let tensor = Tensor::from_vec(m.clone(), &[m.len()]).unwrap();
        let clipped = ste::clip_tensor(&tensor, t);
        for (orig, out) in m.iter().zip(clipped.data()) {
            if orig.abs() > t {
                prop_assert_eq!(*out, *orig);
            } else {
                prop_assert_eq!(*out, 0.0);
            }
        }
        let zf = ste::zero_fraction(&tensor, t);
        let expected = m.iter().filter(|v| v.abs() <= t).count() as f32 / m.len() as f32;
        prop_assert_eq!(zf, expected);
    }

    #[test]
    fn masked_code_channels_are_zero_under_any_mask(seed in 0u64..500,
                                                    mask_bits in 1u32..15) {
        let mut rng = Rng::new(seed);
        let mut ae = WeightAutoencoder::new(2, 4, 3, Init::Xavier, ActivationKind::Tanh, 0.5, &mut rng);
        // Drive mask entries inside/outside the dead zone per the bit mask.
        for j in 0..4 {
            let alive = (mask_bits >> j) & 1 == 1;
            ae.set_mask_value(j, if alive { 1.0 } else { 0.1 });
        }
        let w = Tensor::randn(&[4, 2, 3, 3], Init::He, &mut rng);
        let code = ae.code(&w).unwrap();
        let fan = 18;
        for j in 0..4 {
            let alive = (mask_bits >> j) & 1 == 1;
            let row_zero = code.data()[j * fan..(j + 1) * fan].iter().all(|&v| v == 0.0);
            prop_assert_eq!(!alive, row_zero, "channel {} alive={}", j, alive);
        }
    }

    #[test]
    fn nu_prune_is_bounded_and_decreasing(slope in 1.0f32..10.0, pr in 0.0f32..1.0,
                                          theta in 0.0f32..1.0) {
        let s = PruneSchedule::new(slope, pr);
        let nu = s.nu(theta);
        prop_assert!((0.0..=1.0).contains(&nu));
        prop_assert!(s.nu((theta + 0.05).min(1.0)) <= nu + 1e-6);
    }

    #[test]
    fn eq2_bound_is_the_break_even_point(ci in 1usize..64, co in 1usize..64, k in 1usize..6) {
        let shape = ConvShape::new("l", ci, co, k, 1, 8, 8);
        let bound = shape.c_code_max();
        if bound >= 1 {
            prop_assert!(shape.alf_ops(bound) <= shape.ops());
        }
        prop_assert!(shape.alf_ops(bound + 1) > shape.ops());
    }

    // ---- baselines ----------------------------------------------------------

    #[test]
    fn chained_cost_never_exceeds_full_cost(keeps in proptest::collection::vec(1usize..8, 3)) {
        let shapes = vec![
            ConvShape::new("a", 3, 8, 3, 1, 8, 8),
            ConvShape::new("b", 8, 8, 3, 1, 8, 8),
            ConvShape::new("c", 8, 8, 3, 2, 4, 4),
        ];
        let cost = chained_cost(&shapes, &keeps);
        let full = NetworkCost::of_layers(&shapes);
        prop_assert!(cost.params <= full.params);
        prop_assert!(cost.macs <= full.macs);
        // Monotone: keeping more filters never reduces cost.
        let mut more = keeps.clone();
        more[1] = (more[1] + 1).min(8);
        let cost_more = chained_cost(&shapes, &more);
        prop_assert!(cost_more.params >= cost.params);
    }

    // ---- accelerator model ----------------------------------------------------

    #[test]
    fn mapper_results_are_sane_for_random_layers(ci in 1usize..32, co in 1usize..32,
                                                 k in 1usize..4, side in 4usize..17) {
        let mapper = Mapper::new(Accelerator::eyeriss(), Dataflow::RowStationary);
        let w = ConvWorkload::from_shape(&ConvShape::new("l", ci, co, k, 1, side, side), 4);
        let r = mapper.search(&w).unwrap();
        prop_assert!(r.cost.total_energy() > 0.0);
        prop_assert!(r.cost.latency_cycles > 0.0);
        prop_assert!(r.cost.utilization > 0.0 && r.cost.utilization <= 1.0);
        // RF accesses follow the dataflow's per-MAC constant exactly.
        prop_assert_eq!(r.cost.rf_accesses, w.macs() as f64 * 3.0);
        // Fundamental lower bound: every input/weight/output word must cross
        // DRAM at least once.
        let min_dram = (w.input_words() + w.weight_words() + w.output_words()) as f64;
        prop_assert!(r.cost.dram_accesses >= min_dram - 1.0);
    }

    // ---- extensions -----------------------------------------------------------

    #[test]
    fn quantizer_error_bounded_by_half_step(values in proptest::collection::vec(-10.0f32..10.0, 1..64),
                                            bits in 2u8..12) {
        use alf::core::quant::Quantizer;
        let t = Tensor::from_vec(values.clone(), &[values.len()]).unwrap();
        let q = Quantizer::fit(&t, bits).unwrap();
        for &v in t.data() {
            let err = (q.round_trip(v) - v).abs();
            prop_assert!(err <= q.scale / 2.0 + 1e-5, "err {} step {}", err, q.scale);
        }
    }

    #[test]
    fn checkpoint_round_trips_for_any_width(width in 2usize..6, seed in 0u64..100) {
        use alf::core::checkpoint;
        use alf::core::models::plain20;
        use alf::nn::{Layer, RunCtx};
        let mut a = plain20(3, width).unwrap();
        let blob = checkpoint::save(&a);
        let mut b = plain20(3, width).unwrap();
        checkpoint::load(&mut b, &blob).unwrap();
        let x = Tensor::randn(&[1, 3, 8, 8], Init::Rand, &mut Rng::new(seed));
        prop_assert_eq!(
            a.forward(&x, &mut RunCtx::eval()).unwrap(),
            b.forward(&x, &mut RunCtx::eval()).unwrap()
        );
    }

    #[test]
    fn augment_preserves_shape_and_determinism(seed in 0u64..200, hflip in 0.0f32..1.0,
                                               shift in 0usize..3) {
        use alf::data::Augment;
        let policy = Augment { hflip_prob: hflip, max_shift: shift, noise: 0.01 };
        let run = || {
            let mut b = Tensor::from_fn(&[2, 3, 8, 8], |i| (i % 13) as f32);
            policy.apply(&mut b, &mut Rng::new(seed)).unwrap();
            b
        };
        let a = run();
        prop_assert_eq!(a.dims(), &[2, 3, 8, 8]);
        prop_assert_eq!(a, run());
    }

    #[test]
    fn geometric_median_stays_in_bounding_box(points in proptest::collection::vec(
        proptest::collection::vec(-5.0f32..5.0, 3), 1..10)) {
        let m = alf::baselines::geometric_median(&points, 100, 1e-5);
        for d in 0..3 {
            let lo = points.iter().map(|p| p[d]).fold(f32::INFINITY, f32::min);
            let hi = points.iter().map(|p| p[d]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(m[d] >= lo - 1e-3 && m[d] <= hi + 1e-3,
                         "dim {}: {} outside [{}, {}]", d, m[d], lo, hi);
        }
    }

    // ---- data ---------------------------------------------------------------

    #[test]
    fn dataset_encode_decode_round_trips(seed in 0u64..500, train in 1usize..12,
                                         test in 1usize..8, classes in 1usize..5) {
        let d = SynthVision::cifar_like(seed)
            .with_image_size(8)
            .with_max_shift(1)
            .with_num_classes(classes)
            .with_train_size(train)
            .with_test_size(test)
            .build()
            .unwrap();
        let decoded = decode_dataset(encode_dataset(&d)).unwrap();
        prop_assert_eq!(d, decoded);
    }
}

// ---- blocked GEMM vs the seed loops ----------------------------------------
//
// The blocked kernel must agree with `reference::matmul` (the preserved
// seed implementation) on arbitrary shapes — including dimensions of 1 and
// sizes straddling the MR/NR/KC block boundaries — and must produce
// *bitwise identical* results for every worker-thread count, since each
// `C` element is accumulated by exactly one worker in a fixed order.

/// Relative Frobenius error between two buffers.
fn rel_err(got: &[f32], want: &[f32]) -> f64 {
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&g, &w) in got.iter().zip(want.iter()) {
        num += f64::from(g - w) * f64::from(g - w);
        den += f64::from(w) * f64::from(w);
    }
    (num / den.max(1e-30)).sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn blocked_gemm_matches_reference_across_shapes(
        m in 1usize..40, k in 1usize..70, n in 1usize..40, seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[m, k], Init::Rand, &mut rng);
        let b = Tensor::randn(&[k, n], Init::Rand, &mut rng);
        let want = reference::matmul(&a, &b).unwrap();
        let mut ws = Workspace::new();
        let mut c = vec![0.0f32; m * n];
        gemm_into(&mut c, a.data(), false, b.data(), false, m, k, n, &mut ws, 1);
        prop_assert!(rel_err(&c, want.data()) < 1e-4,
                     "blocked vs reference diverge at {}x{}x{}", m, k, n);
    }

    #[test]
    fn blocked_gemm_transpose_flags_match_reference(
        m in 1usize..20, k in 1usize..40, n in 1usize..20,
        flags in 0u32..4, seed in 0u64..1000) {
        let (ta, tb) = (flags & 1 != 0, flags & 2 != 0);
        let mut rng = Rng::new(seed);
        // Stored layout honours the transpose flag; the product is always [m,n].
        let adims = if ta { [k, m] } else { [m, k] };
        let bdims = if tb { [n, k] } else { [k, n] };
        let a = Tensor::randn(&adims, Init::Rand, &mut rng);
        let b = Tensor::randn(&bdims, Init::Rand, &mut rng);
        let a_eff = if ta { a.transpose2().unwrap() } else { a.clone() };
        let b_eff = if tb { b.transpose2().unwrap() } else { b.clone() };
        let want = reference::matmul(&a_eff, &b_eff).unwrap();
        let mut ws = Workspace::new();
        let mut c = vec![0.0f32; m * n];
        gemm_into(&mut c, a.data(), ta, b.data(), tb, m, k, n, &mut ws, 1);
        prop_assert!(rel_err(&c, want.data()) < 1e-4,
                     "ta={} tb={} diverges at {}x{}x{}", ta, tb, m, k, n);
    }

    #[test]
    fn blocked_gemm_is_bitwise_deterministic_across_thread_counts(
        // m spans two MC=128 row blocks so multi-worker splits actually engage.
        m in 129usize..200, k in 1usize..48, n in 1usize..24, seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[m, k], Init::Rand, &mut rng);
        let b = Tensor::randn(&[k, n], Init::Rand, &mut rng);
        let mut ws = Workspace::new();
        let mut base = vec![0.0f32; m * n];
        gemm_into(&mut base, a.data(), false, b.data(), false, m, k, n, &mut ws, 1);
        for threads in [2usize, 3, 8] {
            let mut c = vec![0.0f32; m * n];
            gemm_into(&mut c, a.data(), false, b.data(), false, m, k, n, &mut ws, threads);
            let bitwise_equal = base
                .iter()
                .zip(c.iter())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            prop_assert!(bitwise_equal,
                         "threads={} changes bits at {}x{}x{}", threads, m, k, n);
        }
    }
}

/// Degenerate dimensions: a zero-sized operand must yield an all-zero
/// (possibly empty) `C` without panicking, for every flag combination.
#[test]
fn blocked_gemm_handles_empty_dims() {
    let mut ws = Workspace::new();
    for (m, k, n) in [(0, 3, 4), (3, 0, 4), (3, 4, 0), (0, 0, 0), (1, 1, 1)] {
        for flags in 0..4u32 {
            let (ta, tb) = (flags & 1 != 0, flags & 2 != 0);
            let a = vec![0.5f32; m * k];
            let b = vec![0.5f32; k * n];
            let mut c = vec![f32::NAN; m * n];
            gemm_into(&mut c, &a, ta, &b, tb, m, k, n, &mut ws, 1);
            let want = if k == 0 { 0.0 } else { 0.25 * k as f32 };
            assert!(
                c.iter().all(|&v| (v - want).abs() < 1e-5),
                "({m},{k},{n}) ta={ta} tb={tb}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ---- deployment: BN folding ------------------------------------------

    /// Folding batch-norm into conv weights at deploy time must be
    /// numerically equivalent to running the BN layers in f32, for any
    /// random conv→BN→ReLU stack — depth, widths, input size and all
    /// parameters drawn at random, with running statistics populated by
    /// genuine train-mode forwards.
    #[test]
    fn bn_folding_matches_unfolded_pipeline(seed in 0u64..500, depth in 1usize..4,
                                            widths in proptest::collection::vec(2usize..6, 3),
                                            side in 6usize..10) {
        use alf::core::deploy::Pipeline;
        use alf::core::model::{CnnModel, ConvKind, ConvUnit, Unit};
        use alf::nn::conv::Conv2d;
        use alf::nn::linear::Linear;
        use alf::nn::pool::GlobalAvgPool;
        use alf::nn::{Layer, RunCtx};

        let mut rng = Rng::new(seed);
        let mut units = Vec::new();
        let mut c_in = 3usize;
        for d in 0..depth {
            let c_out = widths[d % widths.len()];
            units.push(Unit::Conv(ConvUnit::new(
                format!("conv{d}"),
                ConvKind::Standard(Conv2d::new(c_in, c_out, 3, 1, 1, true, Init::Rand, &mut rng)),
                Some(ActivationKind::Relu),
            )));
            c_in = c_out;
        }
        units.push(Unit::GlobalPool(GlobalAvgPool::new()));
        units.push(Unit::Classifier(Linear::new(c_in, 4, Init::Rand, &mut rng)));
        let mut model = CnnModel::from_units("prop-bn", units, 4).unwrap();

        // Move γ/β off their identity init and populate running stats
        // with train-mode batches, so folding has real work to do.
        for cu in model.conv_units_mut() {
            if let Some(bn) = cu.bn_mut() {
                let c = bn.channels();
                *bn.scale_mut() = Tensor::randn(&[c], Init::Rand, &mut rng).map(|v| 1.0 + 0.3 * v);
                *bn.shift_mut() = Tensor::randn(&[c], Init::Rand, &mut rng).scale(0.2);
            }
        }
        let mut train_ctx = RunCtx::train();
        for _ in 0..3 {
            let batch = Tensor::randn(&[4, 3, side, side], Init::Rand, &mut rng);
            model.forward(&batch, &mut train_ctx).unwrap();
        }

        let mut unfolded = Pipeline::new().run(&model).unwrap().model;
        let mut folded = Pipeline::new().fold_bn(true).run(&model).unwrap().model;
        prop_assert!(folded.conv_units().iter().all(|u| u.bn().is_none()));

        let x = Tensor::randn(&[2, 3, side, side], Init::Rand, &mut rng);
        let y_bn = unfolded.forward(&x, &mut RunCtx::eval()).unwrap();
        let y_fold = folded.forward(&x, &mut RunCtx::eval()).unwrap();
        prop_assert!(y_bn.allclose(&y_fold, 1e-4),
                     "folded output diverges (depth {depth}, side {side})");
    }
}
