//! Integration test for the `alf-dp` subsystem through the facade: a
//! data-parallel ALF run must be bitwise independent of the worker
//! count, survive a kill/resume round-trip through a v2 checkpoint, and
//! hand `deploy::compress` a deployable model at the end — the full
//! train → checkpoint → resume → deploy pipeline.

use alf::core::block::AlfBlockConfig;
use alf::core::models::plain20_alf;
use alf::core::{deploy, AlfHyper};
use alf::data::{Dataset, SynthVision};
use alf::dp::{DpConfig, DpTrainer};
use alf::nn::{Layer, LrSchedule, Mode, RunCtx};

fn small_data(seed: u64) -> Dataset {
    SynthVision::cifar_like(seed)
        .with_image_size(12)
        .with_max_shift(1)
        .with_num_classes(4)
        .with_train_size(48)
        .with_test_size(16)
        .with_noise(0.05)
        .build()
        .unwrap()
}

fn config(threads: usize) -> DpConfig {
    DpConfig::new(
        AlfHyper {
            task_lr: 0.05,
            batch_size: 8,
            lr_schedule: LrSchedule::Constant,
            ..AlfHyper::default()
        },
        31,
    )
    .with_threads(threads)
}

/// Train in parallel, kill mid-run, resume at a different worker count,
/// finish, and deploy: the resumed trajectory must match a 1-worker
/// uninterrupted run bitwise, and the deployed model must agree with
/// the trained training-form model on eval logits.
#[test]
fn dp_train_checkpoint_resume_deploy_round_trip() {
    let data = small_data(17);
    let model = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 8).unwrap();

    // Reference: uninterrupted 1-worker run, 9 steps (6 per epoch).
    let mut reference = DpTrainer::new(model.clone(), config(1)).unwrap();
    reference.run_steps(&data, 9).unwrap();

    // Interrupted: 3 workers, killed after 4 steps, resumed at 2.
    let mut victim = DpTrainer::new(model, config(3)).unwrap();
    victim.run_steps(&data, 4).unwrap();
    let blob = victim.checkpoint();
    drop(victim);

    let fresh = plain20_alf(4, 4, AlfBlockConfig::paper_default(), 400).unwrap();
    let mut resumed = DpTrainer::resume(fresh, config(2), &blob).unwrap();
    resumed.run_steps(&data, 5).unwrap();
    assert_eq!(resumed.state_vector(), reference.state_vector());

    // The trained model deploys, and the compressed form is faithful.
    let mut trained = resumed.into_model();
    for block in trained.alf_blocks_mut() {
        let co = block.autoencoder().mask().len();
        for j in (co * 2 / 5).max(1)..co {
            block.autoencoder_mut().set_mask_value(j, 0.0);
        }
    }
    let mut deployed = deploy::Pipeline::new().run(&trained).unwrap().model;
    let (x, _) = data.gather(alf::data::Split::Test, &[0, 1, 2, 3]).unwrap();
    let mut ctx = RunCtx::new(Mode::Eval);
    let full = trained.forward(&x, &mut ctx).unwrap();
    let compact = deployed.forward(&x, &mut ctx).unwrap();
    assert_eq!(full.data(), compact.data());
}
