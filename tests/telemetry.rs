//! End-to-end telemetry behaviour across the facade:
//!
//! * a `DpTrainer` JSONL stream carries task loss, per-block mask
//!   occupancy and the νprune schedule position for **every** step;
//! * enabling telemetry is read-only — trained weights stay bitwise
//!   identical to a sink-less run;
//! * one profiled `AlfTrainer` step produces a `train.step` record whose
//!   shape matches a golden skeleton, and the profiler exports through
//!   the `MetricsRegistry`.

use alf::core::block::AlfBlockConfig;
use alf::core::models::plain20_alf;
use alf::core::{AlfHyper, CnnModel};
use alf::data::{Dataset, SynthVision};
use alf::dp::{DpConfig, DpTrainer};
use alf::obs::events::MemorySink;
use alf::obs::metrics::MetricsRegistry;

const DATA_SEED: u64 = 11;
const MODEL_SEED: u64 = 5;
const BATCH: usize = 16;
const STEPS: usize = 4;

fn data() -> alf::Result<Dataset> {
    Ok(SynthVision::cifar_like(DATA_SEED)
        .with_image_size(12)
        .with_num_classes(3)
        .with_train_size(BATCH * STEPS)
        .with_test_size(24)
        .build()?)
}

fn model() -> alf::Result<CnnModel> {
    Ok(plain20_alf(
        3,
        4,
        AlfBlockConfig::paper_default(),
        MODEL_SEED,
    )?)
}

fn hyper() -> AlfHyper {
    AlfHyper {
        task_lr: 0.05,
        batch_size: BATCH,
        ..AlfHyper::default()
    }
}

/// Pulls `"key":<array>` out of a JSONL record and returns the array's
/// element count (this file asserts shape, not values).
fn array_len(line: &str, key: &str) -> usize {
    let pat = format!("\"{key}\":[");
    let start = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        + pat.len();
    let end = start + line[start..].find(']').expect("unterminated array");
    let body = &line[start..end];
    if body.is_empty() {
        0
    } else {
        body.split(',').count()
    }
}

#[test]
fn dp_stream_has_per_step_signals_and_telemetry_is_read_only() -> alf::Result<()> {
    let d = data()?;

    // Plain run: no sink attached at all.
    let mut plain = DpTrainer::new(model()?, DpConfig::new(hyper(), DATA_SEED))?;
    plain.run_steps(&d, STEPS)?;

    // Telemetered run of the same trajectory.
    let (sink, handle) = MemorySink::bounded(64);
    let mut traced = DpTrainer::new(model()?, DpConfig::new(hyper(), DATA_SEED))?;
    traced.set_telemetry_sink(Box::new(sink));
    let n_blocks = traced.model().alf_blocks().len();
    assert!(n_blocks > 0, "plain20_alf must have ALF blocks");
    traced.run_steps(&d, STEPS)?;

    // Read-only: bitwise-identical trained state.
    assert_eq!(
        plain.state_vector(),
        traced.state_vector(),
        "telemetry changed training arithmetic"
    );

    // Every step is on the stream with the paper's training signals.
    let lines = handle.lines();
    let steps: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"event\":\"train.step\""))
        .collect();
    assert_eq!(steps.len(), STEPS, "one train.step record per step");
    for (i, line) in steps.iter().enumerate() {
        assert!(
            line.contains(&format!("\"step\":{i}")),
            "step index missing in {line}"
        );
        assert!(line.contains("\"task_loss\":"), "task loss in {line}");
        assert!(line.contains("\"grad_norm\":"), "grad norm in {line}");
        for key in ["mask_occupancy", "nu_prune", "l_rec", "l_prune"] {
            assert_eq!(
                array_len(line, key),
                n_blocks,
                "{key} must have one entry per ALF block in {line}"
            );
        }
    }
    let epochs = lines
        .iter()
        .filter(|l| l.contains("\"event\":\"train.epoch\""))
        .count();
    assert_eq!(epochs, 1, "the {STEPS} steps close exactly one epoch");
    Ok(())
}

#[test]
fn golden_jsonl_shape_for_one_profiled_training_step() -> alf::Result<()> {
    // One-batch dataset: run_epoch performs exactly one training step.
    let d = SynthVision::cifar_like(DATA_SEED)
        .with_image_size(12)
        .with_num_classes(3)
        .with_train_size(BATCH)
        .with_test_size(12)
        .build()?;
    let (sink, handle) = MemorySink::bounded(16);
    let mut trainer = alf::core::train::AlfTrainer::new(model()?, hyper(), MODEL_SEED)?;
    let n_blocks = trainer.model().alf_blocks().len();
    trainer.set_telemetry_sink(Box::new(sink));
    trainer.set_profile(true);
    trainer.run_epoch(&d)?;

    // Mask every number so the golden string pins structure — the full
    // key set, order, and per-block array arity — not float values.
    let mask = |line: &str| -> String {
        let mut out = String::new();
        let mut in_string = false;
        let mut chars = line.chars().peekable();
        while let Some(c) = chars.next() {
            if in_string {
                out.push(c);
                if c == '\\' {
                    if let Some(n) = chars.next() {
                        out.push(n);
                    }
                } else if c == '"' {
                    in_string = false;
                }
            } else if c == '"' {
                in_string = true;
                out.push(c);
            } else if c == '-' || c.is_ascii_digit() {
                while chars
                    .peek()
                    .is_some_and(|n| n.is_ascii_digit() || matches!(n, '.' | '-' | 'e' | '+'))
                {
                    chars.next();
                }
                out.push('#');
            } else {
                out.push(c);
            }
        }
        out
    };

    let per_block = vec!["#"; n_blocks].join(",");
    let golden_step = format!(
        "{{\"event\":\"train.step\",\"seq\":#,\"t_ms\":#,\"epoch\":#,\"step\":#,\
         \"task_loss\":#,\"lr\":#,\"l_rec\":[{per_block}],\"l_prune\":[{per_block}],\
         \"nu_prune\":[{per_block}],\"mask_occupancy\":[{per_block}]}}"
    );
    let golden_epoch = "{\"event\":\"train.epoch\",\"seq\":#,\"t_ms\":#,\"epoch\":#,\
                        \"train_loss\":#,\"train_accuracy\":#,\"test_accuracy\":#,\
                        \"remaining_filters\":#,\"mean_l_rec\":#}";

    let lines = handle.lines();
    assert_eq!(lines.len(), 2, "one step + one epoch record: {lines:?}");
    assert_eq!(mask(&lines[0]), golden_step);
    assert_eq!(mask(&lines[1]), golden_epoch);

    // The same step's profile exports through the metrics registry.
    let report = trainer.profile_report().expect("profiler was on");
    let registry = MetricsRegistry::new();
    report.export_into(&registry);
    let snap = registry.snapshot();
    assert!(
        snap.gauge("profile.ws_high_water_bytes").is_some(),
        "workspace high-water gauge exported"
    );
    let json = snap.to_json();
    assert!(
        json.contains(".fwd_ns\""),
        "per-layer forward time gauges in {json}"
    );
    Ok(())
}
